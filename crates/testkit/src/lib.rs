//! Test-only instrumentation for the workspace's runtime contracts.
//!
//! The headline export is [`CountingAlloc`], a `#[global_allocator]`
//! wrapper around the system allocator that counts every allocation on a
//! **per-thread** ledger. `tests/alloc_guard.rs` at the workspace root
//! installs it and asserts that steady-state `ForwardPlan::run` and
//! `Optimizer::step_with` calls perform **zero** heap allocations — the
//! zero-alloc claim from the planned-forward PR, turned into a regression
//! test instead of a code-review convention.
//!
//! Counters are thread-local so concurrently running `#[test]` functions
//! can't pollute each other's measurements. The flip side: allocations a
//! measured region performs on *other* threads (e.g. scoped-parallel
//! workers) are invisible to [`count_allocs`] — guards must pin
//! `TENSOR_NUM_THREADS=1` first, which is also what makes "spawn a thread"
//! (itself several allocations on the spawning thread) show up rather than
//! hide.
//!
//! This crate needs `unsafe` for the one thing that cannot be expressed
//! without it — implementing [`GlobalAlloc`] — so unlike the rest of the
//! workspace it carries `deny(unsafe_code)` with a single audited
//! exemption instead of `forbid`.
#![deny(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Allocation counters for the current thread since it started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `alloc`/`alloc_zeroed`/growing-`realloc` calls.
    pub allocs: u64,
    /// Number of `dealloc` calls.
    pub deallocs: u64,
    /// Total bytes requested by counted allocation calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Counter deltas `self - earlier` (counters are monotonic).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Snapshot the current thread's allocation counters.
pub fn current_thread_stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.with(Cell::get),
        deallocs: DEALLOCS.with(Cell::get),
        bytes: ALLOC_BYTES.with(Cell::get),
    }
}

/// Run `f` and report how many heap allocations it performed **on this
/// thread** (see the module docs for the threading caveat).
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (AllocStats, R) {
    let before = current_thread_stats();
    let result = f();
    let after = current_thread_stats();
    (after.since(&before), result)
}

/// Assert that `f` performs zero heap allocations on this thread.
///
/// `what` names the contract in the failure message. Returns `f`'s result
/// so guards can keep using (and thus keep alive) the measured values.
///
/// # Panics
/// Panics when `f` allocated.
#[track_caller]
pub fn assert_no_alloc<R>(what: &str, f: impl FnOnce() -> R) -> R {
    let (stats, result) = count_allocs(f);
    assert_eq!(
        stats.allocs, 0,
        "{what}: expected zero heap allocations, got {} ({} bytes)",
        stats.allocs, stats.bytes
    );
    result
}

/// A `#[global_allocator]` that counts per-thread allocations and defers
/// the actual memory management to [`System`].
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: testkit::CountingAlloc = testkit::CountingAlloc::new();
/// ```
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A counting allocator (const, so it can initialize a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

fn record_alloc(bytes: usize) {
    // `try_with` because allocation can happen during TLS teardown, when
    // the counters are already destroyed — those events go uncounted
    // rather than aborting the process.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

fn record_dealloc() {
    let _ = DEALLOCS.try_with(|c| c.set(c.get() + 1));
}

// The one unsafe surface of the workspace: forwarding the GlobalAlloc
// contract to `System`. Safety rests entirely on passing the caller's
// layout/pointer through unchanged, which is audited to be all this does.
#[allow(unsafe_code)]
mod forward {
    use super::*;

    // SAFETY: every method forwards the caller's layout/pointer unchanged to
    // `System` (itself a conforming GlobalAlloc); counting touches only
    // thread-local integers and never the allocation itself.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record_alloc(layout.size());
            // SAFETY: same `layout` the caller handed us.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record_alloc(layout.size());
            // SAFETY: same `layout` the caller handed us.
            unsafe { System.alloc_zeroed(layout) }
        }

        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            record_dealloc();
            // SAFETY: same `ptr`/`layout` pair the caller handed us, which
            // the contract says came from this allocator.
            unsafe { System.dealloc(ptr, layout) }
        }

        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc is a fresh allocation from the contract's point of
            // view: growing a Vec in a "zero-alloc" region is a violation.
            record_alloc(new_size);
            // SAFETY: same `ptr`/`layout`/`new_size` the caller handed us.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installing the allocator here exercises the counting path for this
    // test binary; the workspace-level guard installs its own.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::new();

    #[test]
    fn counts_vec_allocation() {
        let (stats, v) = count_allocs(|| vec![1u8; 4096]);
        assert!(stats.allocs >= 1, "vec! must allocate");
        assert!(stats.bytes >= 4096);
        drop(v);
    }

    #[test]
    fn pure_arithmetic_is_alloc_free() {
        let mut acc = 0u64;
        let (stats, ()) = count_allocs(|| {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
        });
        assert_eq!(stats.allocs, 0, "arithmetic must not allocate");
        assert!(acc != 0);
    }

    #[test]
    fn assert_no_alloc_passes_through_result() {
        let x = assert_no_alloc("sum", || (0..100u32).sum::<u32>());
        assert_eq!(x, 4950);
    }

    #[test]
    #[should_panic(expected = "expected zero heap allocations")]
    fn assert_no_alloc_catches_allocation() {
        let _ = assert_no_alloc("boxing", || Box::new(17u64));
    }

    #[test]
    fn in_place_mutation_of_preallocated_buffer_is_free() {
        let mut buf = vec![0.0f32; 1024];
        let (stats, ()) = count_allocs(|| {
            for (i, v) in buf.iter_mut().enumerate() {
                *v = i as f32;
            }
        });
        assert_eq!(stats.allocs, 0);
        assert_eq!(stats.deallocs, 0);
    }
}
