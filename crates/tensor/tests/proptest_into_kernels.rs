//! Property tests pinning every `_into` kernel to its allocating (or naive
//! serial) counterpart **bit-for-bit**, over random shapes and values.
//!
//! The planned forward executor in the `nn` crate relies on these kernels
//! being exact drop-in replacements; any divergence — including one caused by
//! the multi-threaded `tensor::parallel` split (these tests run with
//! whatever `TENSOR_NUM_THREADS` the host provides, against single-threaded
//! references computed inline) — fails here before it can skew a simulator.

use proptest::prelude::*;
use tensor::conv::{
    conv2d_batch_into, conv2d_scratch_floats, im2col, maxpool2_batch_into, Conv2dGeom,
};
use tensor::matmul::{
    matmul_at_into, matmul_bt_bias_into, matmul_bt_into, matmul_into, matvec_into,
};
use tensor::ops::{
    relu_into, sigmoid_into, softmax_rows_into, softmax_slice, tanh_into, unary_map_into,
};
use tensor::random::rng_from_seed;
use tensor::Tensor;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[len.max(1)], -2.0, 2.0, &mut rng).into_vec()[..len].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv2d_batch_matches_per_sample_reference(
        batch in 1usize..9,
        in_channels in 1usize..3,
        side in 4usize..9,
        k in 1usize..4,
        pad in 0usize..2,
        out_channels in 1usize..4,
        seed in 0u64..1000,
    ) {
        let g = Conv2dGeom {
            in_channels,
            in_h: side,
            in_w: side,
            k_h: k,
            k_w: k,
            stride: 1,
            pad,
        };
        prop_assume!(g.validate().is_ok());
        let in_f = in_channels * side * side;
        let (p, kc) = (g.patch_rows(), g.patch_cols());
        let out_f = out_channels * p;
        let input = rand_vec(batch * in_f, seed);
        let weights = rand_vec(out_channels * kc, seed ^ 1);
        let bias = rand_vec(out_channels, seed ^ 2);

        // Batched kernel (parallel across samples on multi-core hosts).
        let mut out = vec![0.0f32; batch * out_f];
        let mut scratch = vec![0.0f32; conv2d_scratch_floats(&g, batch)];
        conv2d_batch_into(&input, &weights, &bias, &g, out_channels, batch, &mut out, &mut scratch);

        // Serial single-sample reference: im2col + matmul_bt + bias, exactly
        // the allocating layer's op order.
        let mut patches = vec![0.0f32; p * kc];
        for s in 0..batch {
            im2col(&input[s * in_f..(s + 1) * in_f], &g, &mut patches);
            let mut orow = vec![0.0f32; out_f];
            matmul_bt_into(&weights, &patches, &mut orow, out_channels, kc, p);
            for (ch, seg) in orow.chunks_exact_mut(p).enumerate() {
                for v in seg.iter_mut() {
                    *v += bias[ch];
                }
            }
            prop_assert_eq!(&out[s * out_f..(s + 1) * out_f], &orow[..],
                "conv sample {} diverged", s);
        }
    }

    #[test]
    fn maxpool2_batch_matches_reference(
        batch in 1usize..6,
        channels in 1usize..4,
        in_h in 2usize..9,
        in_w in 2usize..9,
        window in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(window <= in_h && window <= in_w);
        let (oh, ow) = (in_h / window, in_w / window);
        let in_f = channels * in_h * in_w;
        let out_f = channels * oh * ow;
        let input = rand_vec(batch * in_f, seed);

        let mut out = vec![0.0f32; batch * out_f];
        let mut argmax = vec![0u32; batch * out_f];
        maxpool2_batch_into(&input, &mut out, Some(&mut argmax), channels, in_h, in_w, window, batch);

        // Plain reference loop.
        for s in 0..batch {
            let x = &input[s * in_f..(s + 1) * in_f];
            for c in 0..channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for ky in 0..window {
                            for kx in 0..window {
                                let i = c * in_h * in_w + (oy * window + ky) * in_w + ox * window + kx;
                                if x[i] > best {
                                    best = x[i];
                                    best_i = i;
                                }
                            }
                        }
                        let o = s * out_f + c * oh * ow + oy * ow + ox;
                        prop_assert_eq!(out[o], best);
                        prop_assert_eq!(argmax[o] as usize, best_i);
                    }
                }
            }
        }

        // The argmax-free inference variant produces the same maxima.
        let mut out2 = vec![0.0f32; batch * out_f];
        maxpool2_batch_into(&input, &mut out2, None, channels, in_h, in_w, window, batch);
        prop_assert_eq!(out, out2);
    }

    #[test]
    fn softmax_rows_into_matches_serial(
        rows in 1usize..600,
        cols in 1usize..80,
        seed in 0u64..1000,
    ) {
        // Large row counts push past the parallel threshold, so both the
        // serial and the threaded row-chunked paths get exercised.
        let input = rand_vec(rows * cols, seed);
        let mut out = vec![0.0f32; rows * cols];
        softmax_rows_into(&input, &mut out, cols);
        let mut expect = vec![0.0f32; cols];
        for r in 0..rows {
            softmax_slice(&input[r * cols..(r + 1) * cols], &mut expect);
            prop_assert_eq!(&out[r * cols..(r + 1) * cols], &expect[..], "row {} diverged", r);
        }
    }

    #[test]
    fn elementwise_into_kernels_match_map(
        len in 1usize..100_000,
        seed in 0u64..1000,
    ) {
        // Spans the elementwise parallel threshold (32 Ki elements).
        let input = rand_vec(len, seed);
        let t = Tensor::from_vec(input.clone(), &[len]);
        let mut out = vec![0.0f32; len];

        relu_into(&input, &mut out);
        prop_assert_eq!(&out[..], t.map(|v| v.max(0.0)).data());

        sigmoid_into(&input, &mut out);
        prop_assert_eq!(&out[..], t.map(|v| 1.0 / (1.0 + (-v).exp())).data());

        tanh_into(&input, &mut out);
        prop_assert_eq!(&out[..], t.map(f32::tanh).data());
    }

    #[test]
    fn matmul_bt_bias_matches_bt_plus_broadcast(
        m in 1usize..80,
        k in 1usize..40,
        n in 1usize..80,
        with_bias in 0u8..2,
        seed in 0u64..1000,
    ) {
        // The planned dense kernel (resident j-outer schedule, fused bias)
        // against the layer kernel it must be bit-identical to.
        let with_bias = with_bias == 1;
        let a = rand_vec(m * k, seed);
        let b = rand_vec(n * k, seed ^ 3);
        let bias = rand_vec(n, seed ^ 5);
        let mut base = vec![0.0f32; m * n];
        matmul_bt_into(&a, &b, &mut base, m, k, n);
        if with_bias {
            for row in base.chunks_exact_mut(n) {
                for (x, &bv) in row.iter_mut().zip(&bias) {
                    *x += bv;
                }
            }
        }
        let mut fused = vec![0.0f32; m * n];
        let bias_arg = if with_bias { Some(&bias[..]) } else { None };
        matmul_bt_bias_into(&a, &b, bias_arg, &mut fused, m, k, n);
        prop_assert_eq!(base, fused);
    }

    #[test]
    fn matmul_at_matches_transposed_matmul(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // For every output element both kernels accumulate products in
        // increasing-p order, so C = Aᵀ·B must equal matmul_into on an
        // explicitly transposed A exactly.
        let a = rand_vec(k * m, seed);
        let b = rand_vec(k * n, seed ^ 9);
        let mut c = vec![0.0f32; m * n];
        matmul_at_into(&a, &b, &mut c, m, k, n);
        let mut a_t = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a_t[i * k + p] = a[p * m + i];
            }
        }
        let mut expect = vec![0.0f32; m * n];
        matmul_into(&a_t, &b, &mut expect, m, k, n);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn matvec_matches_single_column_matmul_bt(
        m in 1usize..120,
        n in 1usize..120,
        seed in 0u64..1000,
    ) {
        // matvec is the n=1 column case of the Bᵀ kernel: both compute one
        // dot() per output element, so the results are bit-identical.
        let a = rand_vec(m * n, seed);
        let x = rand_vec(n, seed ^ 11);
        let mut y = vec![0.0f32; m];
        matvec_into(&a, &x, &mut y, m, n);
        let mut expect = vec![0.0f32; m];
        matmul_bt_into(&a, &x, &mut expect, m, n, 1);
        prop_assert_eq!(y, expect);
    }

    #[test]
    fn unary_map_into_matches_serial_map(
        len in 1usize..100_000,
        seed in 0u64..1000,
    ) {
        // Spans the elementwise parallel threshold, pinning the threaded
        // chunk split to the plain serial loop for an arbitrary closure.
        let input = rand_vec(len, seed);
        let mut out = vec![0.0f32; len];
        unary_map_into(&input, &mut out, |v| v.mul_add(0.5, -1.25).abs());
        let expect: Vec<f32> = input.iter().map(|v| v.mul_add(0.5, -1.25).abs()).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn matmul_row_aligned_parallel_matches_serial(
        m in 1usize..150,
        k in 1usize..20,
        n in 1usize..150,
        seed in 0u64..1000,
    ) {
        // m·n regularly crosses PAR_THRESHOLD (64·64), including shapes
        // where the thread count does not divide the row count — the case
        // the row-aligned splitter exists for.
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 7);
        let mut c = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        // Serial reference with the kernel's own row loop (same fp order).
        let mut expect = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut expect[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                for (cv, &bv) in c_row.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                    *cv += a_ip * bv;
                }
            }
        }
        prop_assert_eq!(c, expect);
    }
}
