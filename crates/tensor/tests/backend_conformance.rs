//! Kernel-level conformance between the scalar and SIMD compute backends.
//!
//! Two classes of guarantee, both stated in the `tensor::backend` docs:
//!
//! * **Bit-identical** kernels — `matmul_into`, `matmul_at_into`,
//!   `conv2d_batch_into` wiring (same operation order in both backends; the
//!   SIMD variants use separate multiply/add, no FMA) and the elementwise
//!   family (`relu_into` up to the sign of zero; sigmoid/tanh/softmax/
//!   unary_map delegate to the shared scalar kernels). Pinned with
//!   `assert_eq!` on the raw bits over ragged proptest shapes that exercise
//!   every masked-tail lane count.
//! * **Documented-reduction-order** kernels — `dot`, `matmul_bt_into`,
//!   `matmul_bt_bias_into`, `matvec_into` use 8-lane FMA accumulation on
//!   SIMD versus the scalar 4-lane separate-multiply/add contract, so the
//!   backends agree only to a relative tolerance. The tolerance is
//!   *principled*: each backend's exact accumulation order is modelled here
//!   in safe code (`f32::mul_add` matches FMA's single rounding) and pinned
//!   **bitwise**, so the cross-backend tolerance covers reduction-order
//!   divergence only — never an implementation bug.
//!
//! On hosts without AVX2+FMA, `Backend::simd()` is `None` and the SIMD side
//! degrades to the scalar kernels, making every check trivially exact — the
//! suite stays green (graceful-fallback acceptance criterion).

use proptest::prelude::*;
use tensor::backend::Backend;
use tensor::random::rng_from_seed;
use tensor::Tensor;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[len.max(1)], -2.0, 2.0, &mut rng).into_vec()[..len].to_vec()
}

/// The SIMD backend handle when the CPU has AVX2+FMA, else scalar — mirrors
/// what `Backend::auto()` hands a plan, and keeps every test meaningful
/// (exact) on non-AVX2 hosts.
fn simd_or_scalar() -> Backend {
    Backend::simd().unwrap_or_else(Backend::scalar)
}

/// Relative-or-absolute agreement bound for dot-family kernels. The two
/// reduction orders differ in rounding sequence, not magnitude: for the
/// ≤ 1k-element reductions generated here, a handful of ULPs scaled by the
/// accumulated magnitude is ample headroom while still catching any indexing
/// or masking bug (those produce O(1) errors, not O(ε)).
fn close(a: f32, b: f32) -> bool {
    let diff = (a - b).abs();
    diff <= 1e-4 + 1e-4 * a.abs().max(b.abs())
}

/// Safe scalar model of the **scalar** backend's documented `dot` contract:
/// 4 round-robin lanes of separate multiply-then-add, combined
/// `((l0+l1)+l2)+l3`, then sequential tail adds.
fn model_scalar_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        for l in 0..4 {
            acc[l] += a[i * 4 + l] * b[i * 4 + l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + acc[2]) + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Safe scalar model of the **SIMD** backend's documented `dot` contract:
/// 8 round-robin FMA lanes (`f32::mul_add` = one rounding, exactly the
/// `vfmadd` lane semantics), a masked-tail `mul_add(0, 0, lane)` step when
/// `len % 8 != 0`, and the fixed combine tree
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
fn model_simd_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        lanes[i % 8] = x.mul_add(y, lanes[i % 8]);
    }
    if !a.len().is_multiple_of(8) {
        for lane in lanes.iter_mut() {
            *lane = 0.0f32.mul_add(0.0, *lane);
        }
    }
    ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
}

// ---------------------------------------------------------------------------
// Reduction-order contracts, pinned bitwise (the "small fix" satellite: the
// cross-backend tolerance is derived from these exact orders, not ad hoc).
// ---------------------------------------------------------------------------

#[test]
fn scalar_dot_contract_is_bitwise_exact() {
    for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 23, 100, 783, 784] {
        let a = rand_vec(len, 0x5ca1a + len as u64);
        let b = rand_vec(len, 0xb0b + len as u64);
        let got = Backend::scalar().dot(&a, &b);
        assert_eq!(
            got.to_bits(),
            model_scalar_dot(&a, &b).to_bits(),
            "scalar dot reduction order drifted at len {len}"
        );
    }
}

#[test]
fn simd_dot_contract_is_bitwise_exact() {
    let Some(simd) = Backend::simd() else {
        return; // no AVX2+FMA: nothing to pin, fallback covered elsewhere
    };
    for len in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 64, 100, 783, 784] {
        let a = rand_vec(len, 0xd07 + len as u64);
        let b = rand_vec(len, 0xfee + len as u64);
        let got = simd.dot(&a, &b);
        assert_eq!(
            got.to_bits(),
            model_simd_dot(&a, &b).to_bits(),
            "SIMD dot reduction order drifted at len {len}"
        );
    }
}

// ---------------------------------------------------------------------------
// Ragged-shape proptests. Dimension ranges deliberately straddle multiples
// of 8 (and 4, the register-block width) so the masked tail paths and the
// block-remainder loops are both exercised.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dot_family_agrees_to_documented_tolerance(
        m in 1usize..18,
        k in 1usize..70,
        n in 1usize..18,
        seed in 0u64..1000,
    ) {
        let simd = simd_or_scalar();
        let scalar = Backend::scalar();
        let a = rand_vec(m * k, seed);
        let b = rand_vec(n * k, seed ^ 1);
        let bias = rand_vec(n, seed ^ 2);

        // dot: both backends against their own bitwise model, and each other.
        let (ar, br) = (&a[..k], &b[..k]);
        prop_assert_eq!(scalar.dot(ar, br).to_bits(), model_scalar_dot(ar, br).to_bits());
        prop_assert_eq!(simd.dot(ar, br).to_bits(),
            if Backend::simd().is_some() { model_simd_dot(ar, br) } else { model_scalar_dot(ar, br) }.to_bits());
        prop_assert!(close(scalar.dot(ar, br), simd.dot(ar, br)));

        // matmul_bt_into + matmul_bt_bias_into: per-element tolerance.
        let mut cs = vec![0.0f32; m * n];
        let mut cv = vec![0.0f32; m * n];
        scalar.matmul_bt_into(&a, &b, &mut cs, m, k, n);
        simd.matmul_bt_into(&a, &b, &mut cv, m, k, n);
        for (i, (&x, &y)) in cs.iter().zip(&cv).enumerate() {
            prop_assert!(close(x, y), "bt[{}]: {} vs {}", i, x, y);
        }
        scalar.matmul_bt_bias_into(&a, &b, Some(&bias), &mut cs, m, k, n);
        simd.matmul_bt_bias_into(&a, &b, Some(&bias), &mut cv, m, k, n);
        for (i, (&x, &y)) in cs.iter().zip(&cv).enumerate() {
            prop_assert!(close(x, y), "bt_bias[{}]: {} vs {}", i, x, y);
        }

        // matvec_into: y = A·x with A = b (n×k), x = first row of a.
        let mut ys = vec![0.0f32; n];
        let mut yv = vec![0.0f32; n];
        scalar.matvec_into(&b, &a[..k], &mut ys, n, k);
        simd.matvec_into(&b, &a[..k], &mut yv, n, k);
        for (i, (&x, &y)) in ys.iter().zip(&yv).enumerate() {
            prop_assert!(close(x, y), "matvec[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn same_order_kernels_are_bit_identical(
        m in 1usize..14,
        k in 1usize..34,
        n in 1usize..34,
        seed in 0u64..1000,
    ) {
        let simd = simd_or_scalar();
        let scalar = Backend::scalar();
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 3);

        // matmul_into: separate multiply/add in both backends, zero-skip
        // preserved → identical bits.
        let mut cs = vec![0.0f32; m * n];
        let mut cv = vec![0.0f32; m * n];
        scalar.matmul_into(&a, &b, &mut cs, m, k, n);
        simd.matmul_into(&a, &b, &mut cv, m, k, n);
        prop_assert_eq!(&cs, &cv);

        // matmul_at_into: rank-1 update sweeps, same order. A is (k×m) here.
        let mut ds = vec![0.0f32; m * n];
        let mut dv = vec![0.0f32; m * n];
        scalar.matmul_at_into(&a, &b, &mut ds, m, k, n);
        simd.matmul_at_into(&a, &b, &mut dv, m, k, n);
        prop_assert_eq!(&ds, &dv);
    }

    #[test]
    fn elementwise_family_is_bit_identical(
        len in 1usize..600,
        cols in 1usize..20,
        seed in 0u64..1000,
    ) {
        let simd = simd_or_scalar();
        let scalar = Backend::scalar();
        let mut x = rand_vec(len, seed);
        // Plant exact zeros and a -0.0 to exercise the relu sign-of-zero
        // caveat and the zero-skip interplay.
        x[0] = 0.0;
        if len > 1 {
            x[1] = -0.0;
        }

        let mut os = vec![0.0f32; len];
        let mut ov = vec![0.0f32; len];
        scalar.relu_into(&x, &mut os);
        simd.relu_into(&x, &mut ov);
        for (i, (&a, &b)) in os.iter().zip(&ov).enumerate() {
            // Documented caveat: SIMD maps -0.0 → +0.0; otherwise exact bits.
            let same = a.to_bits() == b.to_bits() || (a == 0.0 && b == 0.0);
            prop_assert!(same, "relu[{}]: {:?} vs {:?}", i, a, b);
        }

        scalar.sigmoid_into(&x, &mut os);
        simd.sigmoid_into(&x, &mut ov);
        prop_assert_eq!(&os, &ov);

        scalar.tanh_into(&x, &mut os);
        simd.tanh_into(&x, &mut ov);
        prop_assert_eq!(&os, &ov);

        let rows = len / cols;
        if rows > 0 {
            let flat = rows * cols;
            scalar.softmax_rows_into(&x[..flat], &mut os[..flat], cols);
            simd.softmax_rows_into(&x[..flat], &mut ov[..flat], cols);
            prop_assert_eq!(&os[..flat], &ov[..flat]);
        }

        let f = |v: f32| v * 0.5 + 1.0;
        scalar.unary_map_into(&x, &mut os, &f);
        simd.unary_map_into(&x, &mut ov, &f);
        prop_assert_eq!(&os, &ov);
    }

    #[test]
    fn conv2d_agrees_to_documented_tolerance(
        batch in 1usize..5,
        in_channels in 1usize..3,
        side in 4usize..9,
        kk in 1usize..4,
        out_channels in 1usize..4,
        seed in 0u64..1000,
    ) {
        use tensor::conv::{conv2d_scratch_floats, Conv2dGeom};
        let g = Conv2dGeom {
            in_channels,
            in_h: side,
            in_w: side,
            k_h: kk,
            k_w: kk,
            stride: 1,
            pad: 0,
        };
        prop_assume!(g.validate().is_ok());
        let simd = simd_or_scalar();
        let scalar = Backend::scalar();
        let in_f = in_channels * side * side;
        let out_f = out_channels * g.patch_rows();
        let input = rand_vec(batch * in_f, seed);
        let weights = rand_vec(out_channels * g.patch_cols(), seed ^ 1);
        let bias = rand_vec(out_channels, seed ^ 2);
        let mut scratch = vec![0.0f32; conv2d_scratch_floats(&g, batch)];

        let mut os = vec![0.0f32; batch * out_f];
        let mut ov = vec![0.0f32; batch * out_f];
        scalar.conv2d_batch_into(&input, &weights, &bias, &g, out_channels, batch, &mut os, &mut scratch);
        simd.conv2d_batch_into(&input, &weights, &bias, &g, out_channels, batch, &mut ov, &mut scratch);
        // The im2col product is a bt (dot-family) kernel → tolerance.
        for (i, (&x, &y)) in os.iter().zip(&ov).enumerate() {
            prop_assert!(close(x, y), "conv[{}]: {} vs {}", i, x, y);
        }
    }
}
