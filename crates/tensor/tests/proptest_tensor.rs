//! Property-based tests for the tensor substrate.
//!
//! These pin down the algebraic identities the `nn` crate silently relies on:
//! matmul bilinearity and associativity with the identity, transpose
//! involution, im2col/col2im adjointness, softmax simplex membership, and
//! serialisation roundtrips — over randomly generated shapes and contents.

use proptest::prelude::*;
use tensor::conv::{col2im, im2col, Conv2dGeom};
use tensor::ops::{entropy, softmax_slice};
use tensor::Tensor;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Keep magnitudes moderate so accumulated FP error stays analysable.
    (-100.0f32..100.0).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn tensor_with_len(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(finite_f32(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_roundtrip(dims in proptest::collection::vec(1usize..6, 0..4)) {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 3.0).collect();
        let t = Tensor::from_vec(data, &dims);
        let rt = Tensor::from_bytes(t.to_bytes()).unwrap();
        prop_assert_eq!(rt, t);
    }

    #[test]
    fn transpose_involution(r in 1usize..40, c in 1usize..40) {
        let t = Tensor::from_vec((0..r * c).map(|i| i as f32).collect(), &[r, c]);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_identity_left_right(n in 1usize..12, data in proptest::collection::vec(finite_f32(), 144)) {
        let a = Tensor::from_vec(data[..n * n].to_vec(), &[n, n]);
        let i = Tensor::eye(n);
        prop_assert!(a.matmul(&i).allclose(&a, 1e-4));
        prop_assert!(i.matmul(&a).allclose(&a, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
    ) {
        let mut rng = tensor::random::rng_from_seed(seed);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b1 = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let b2 = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b1.add(&b2));
        let rhs = a.matmul(&b1).add(&a.matmul(&b2));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
    ) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = tensor::random::rng_from_seed(seed);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn axpy_equals_scale_add(len in 1usize..64, alpha in finite_f32(), seed in 0u64..1000) {
        let mut rng = tensor::random::rng_from_seed(seed);
        let a = Tensor::rand_uniform(&[len], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[len], -1.0, 1.0, &mut rng);
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = a.add(&b.scale(alpha));
        prop_assert!(via_axpy.allclose(&via_ops, 1e-3));
    }

    #[test]
    fn softmax_is_on_simplex(logits in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let mut out = vec![0.0; logits.len()];
        softmax_slice(&logits, &mut out);
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(out.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn softmax_entropy_bounded(logits in proptest::collection::vec(-10.0f32..10.0, 2..16)) {
        let mut out = vec![0.0; logits.len()];
        softmax_slice(&logits, &mut out);
        let h = entropy(&out);
        prop_assert!(h >= -1e-6, "entropy must be non-negative, got {h}");
        let hmax = (logits.len() as f32).ln();
        prop_assert!(h <= hmax + 1e-4, "entropy {h} exceeds ln(n) {hmax}");
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000
    ) {
        let g = Conv2dGeom { in_channels: c, in_h: h, in_w: w, k_h: k, k_w: k, stride, pad };
        prop_assume!(g.validate().is_ok());
        let mut rng = tensor::random::rng_from_seed(seed);
        let n_in = c * h * w;
        let n_cols = g.patch_rows() * g.patch_cols();
        let x = Tensor::rand_uniform(&[n_in], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform(&[n_cols], -1.0, 1.0, &mut rng);

        let mut ax = vec![0.0; n_cols];
        im2col(x.data(), &g, &mut ax);
        let lhs: f32 = ax.iter().zip(y.data()).map(|(a, b)| a * b).sum();

        let mut aty = vec![0.0; n_in];
        col2im(y.data(), &g, &mut aty);
        let rhs: f32 = x.data().iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn sum_rows_matches_total(r in 1usize..10, c in 1usize..10, data in tensor_with_len(100)) {
        let t = Tensor::from_vec(data[..r * c].to_vec(), &[r, c]);
        let per_col = t.sum_rows();
        prop_assert!((per_col.sum() - t.sum()).abs() < 1e-2);
    }

    #[test]
    fn gather_rows_picks_correct_rows(r in 1usize..8, c in 1usize..8) {
        let t = Tensor::from_vec((0..r * c).map(|i| i as f32).collect(), &[r, c]);
        let idx: Vec<usize> = (0..r).rev().collect();
        let g = t.gather_rows(&idx);
        for (out_row, &src_row) in idx.iter().enumerate() {
            prop_assert_eq!(g.row_slice(out_row), t.row_slice(src_row));
        }
    }
}
