//! Compact binary serialisation for tensors.
//!
//! Format (little-endian throughout):
//!
//! ```text
//! magic  : 4 bytes  = b"TSR1"
//! rank   : u32
//! dims   : rank × u64
//! data   : len × f32
//! ```
//!
//! Built over the `bytes` crate rather than serde so model checkpoints stay a
//! few megabytes of raw floats with no text-format overhead, and so the
//! on-disk format is fully specified in one screen of code.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Tensor, TensorError};

/// Magic prefix identifying a serialized tensor.
pub const MAGIC: &[u8; 4] = b"TSR1";

impl Tensor {
    /// Serialize into a byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + 4 + 8 * self.rank() + 4 * self.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.data() {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserialize from a byte buffer produced by [`Tensor::to_bytes`].
    pub fn from_bytes(mut buf: impl Buf) -> Result<Tensor, TensorError> {
        let err = |m: &str| TensorError::Deserialize(m.to_string());
        if buf.remaining() < 8 {
            return Err(err("buffer too short for header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("bad magic"));
        }
        let rank = buf.get_u32_le() as usize;
        if rank > 16 {
            return Err(err("implausible rank"));
        }
        if buf.remaining() < rank * 8 {
            return Err(err("buffer too short for dims"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = buf.get_u64_le();
            if d > u64::from(u32::MAX) {
                return Err(err("implausible dimension"));
            }
            dims.push(d as usize);
        }
        let len: usize = dims.iter().product();
        if buf.remaining() < len * 4 {
            return Err(err("buffer too short for data"));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        Tensor::try_from_vec(data, &dims)
    }
}

/// Write a length-prefixed tensor into an existing buffer (for multi-tensor
/// checkpoint files).
pub fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    let b = t.to_bytes();
    buf.put_u64_le(b.len() as u64);
    buf.put_slice(&b);
}

/// Read a length-prefixed tensor written by [`put_tensor`].
pub fn get_tensor(buf: &mut impl Buf) -> Result<Tensor, TensorError> {
    if buf.remaining() < 8 {
        return Err(TensorError::Deserialize(
            "buffer too short for length prefix".into(),
        ));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len {
        return Err(TensorError::Deserialize(
            "buffer too short for tensor body".into(),
        ));
    }
    let body = buf.copy_to_bytes(len);
    Tensor::from_bytes(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_shapes() {
        for dims in [vec![], vec![5], vec![2, 3], vec![2, 3, 4], vec![1, 1, 1, 1]] {
            let n: usize = dims.iter().product();
            let t = Tensor::from_vec((0..n.max(1)).map(|i| i as f32 * 0.5).collect(), &dims);
            let rt = Tensor::from_bytes(t.to_bytes()).unwrap();
            assert_eq!(rt, t, "roundtrip failed for {dims:?}");
        }
    }

    #[test]
    fn roundtrip_preserves_special_values() {
        let t = Tensor::from_slice(&[0.0, -0.0, 1.5e-30, f32::MAX, f32::MIN_POSITIVE]);
        let rt = Tensor::from_bytes(t.to_bytes()).unwrap();
        assert_eq!(rt.data(), t.data());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = BytesMut::new();
        b.put_slice(b"NOPE");
        b.put_u32_le(0);
        assert!(Tensor::from_bytes(b.freeze()).is_err());
    }

    #[test]
    fn rejects_truncated_buffers() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let full = t.to_bytes();
        for cut in [0, 3, 7, full.len() - 1] {
            let sliced = full.slice(..cut);
            assert!(
                Tensor::from_bytes(sliced).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_implausible_rank() {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u32_le(999);
        assert!(Tensor::from_bytes(b.freeze()).is_err());
    }

    #[test]
    fn length_prefixed_stream_roundtrip() {
        let t1 = Tensor::from_slice(&[1.0, 2.0]);
        let t2 = Tensor::eye(3);
        let mut buf = BytesMut::new();
        put_tensor(&mut buf, &t1);
        put_tensor(&mut buf, &t2);
        let mut stream = buf.freeze();
        assert_eq!(get_tensor(&mut stream).unwrap(), t1);
        assert_eq!(get_tensor(&mut stream).unwrap(), t2);
        assert!(get_tensor(&mut stream).is_err(), "stream exhausted");
    }
}
