//! Shape and stride bookkeeping for dense row-major tensors.

use crate::TensorError;

/// A tensor shape: the extent of each axis, row-major (C order).
///
/// `Shape` is deliberately a thin wrapper over `Vec<usize>` — tensors in this
/// workspace are rank ≤ 4 (NCHW activations), so a small-vec optimisation is
/// not worth the complexity. All derived quantities (element count, strides)
/// are computed on demand; they are O(rank) and never appear in hot loops.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape contains zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of one axis.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    ///
    /// `strides()[i]` is the distance between consecutive indices along axis
    /// `i`. The last axis always has stride 1 (contiguous).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    /// Panics (debug) if `index` rank mismatches or any coordinate is out of
    /// bounds.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        let mut off = 0;
        for (i, (&ix, &st)) in index.iter().zip(strides.iter()).enumerate() {
            debug_assert!(ix < self.0[i], "index {ix} out of bounds on axis {i}");
            off += ix * st;
        }
        off
    }

    /// Validate that `len` elements fill this shape exactly.
    pub fn check_len(&self, len: usize) -> Result<(), TensorError> {
        if self.len() == len {
            Ok(())
        } else {
            Err(TensorError::ElementCountMismatch {
                expected: self.len(),
                actual: len,
            })
        }
    }

    /// Shape with one axis removed (used by axis reductions).
    pub fn without_axis(&self, axis: usize) -> Result<Shape, TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut d = self.0.clone();
        d.remove(axis);
        Ok(Shape(d))
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(d: Vec<usize>) -> Self {
        Shape(d)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn zero_extent_axis_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_row_major_layout() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn check_len_accepts_exact() {
        assert!(Shape::new(&[2, 3]).check_len(6).is_ok());
    }

    #[test]
    fn check_len_rejects_mismatch() {
        let err = Shape::new(&[2, 3]).check_len(5).unwrap_err();
        assert_eq!(
            err,
            TensorError::ElementCountMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn without_axis_removes_dim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.without_axis(1).unwrap(), Shape::new(&[2, 4]));
        assert!(s.without_axis(3).is_err());
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2×3)");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s.dims(), &[3, 4]);
    }
}
