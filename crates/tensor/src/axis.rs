//! Axis-wise reductions and statistics for rank-2 batch tensors.
//!
//! Batch-normalisation and per-feature standardisation need column
//! statistics over `(batch, features)` tensors; these kernels keep the
//! column loops unit-stride by accumulating row-wise.

use crate::Tensor;

impl Tensor {
    /// Per-column mean of a rank-2 tensor → 1-D tensor of length `cols`.
    ///
    /// # Panics
    /// Panics if rank ≠ 2 or the tensor has zero rows.
    pub fn mean_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "mean_cols requires rank-2 tensor");
        let rows = self.dims()[0];
        assert!(rows > 0, "mean over zero rows is undefined");
        let mut m = self.sum_rows();
        m.scale_in_place(1.0 / rows as f32);
        m
    }

    /// Per-column (biased) variance of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if rank ≠ 2 or the tensor has zero rows.
    pub fn var_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "var_cols requires rank-2 tensor");
        let rows = self.dims()[0];
        assert!(rows > 0, "variance over zero rows is undefined");
        let cols = self.dims()[1];
        let mean = self.mean_cols();
        let mut acc = vec![0.0f64; cols];
        for row in self.data().chunks_exact(cols) {
            for ((a, &v), &m) in acc.iter_mut().zip(row).zip(mean.data()) {
                let d = (v - m) as f64;
                *a += d * d;
            }
        }
        let inv = 1.0 / rows as f64;
        Tensor::from_vec(acc.into_iter().map(|v| (v * inv) as f32).collect(), &[cols])
    }

    /// Per-column maximum of a rank-2 tensor.
    pub fn max_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "max_cols requires rank-2 tensor");
        let cols = self.dims()[1];
        let mut out = vec![f32::NEG_INFINITY; cols];
        for row in self.data().chunks_exact(cols) {
            for (o, &v) in out.iter_mut().zip(row) {
                if v > *o {
                    *o = v;
                }
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Per-row sum of a rank-2 tensor → 1-D tensor of length `rows`.
    pub fn sum_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_cols requires rank-2 tensor");
        let cols = self.dims()[1];
        let out: Vec<f32> = self
            .data()
            .chunks_exact(cols)
            .map(|row| row.iter().map(|&v| v as f64).sum::<f64>() as f32)
            .collect();
        Tensor::from_vec(out, &[self.dims()[0]])
    }

    /// Standardise columns in place: `x ← (x − μ) / sqrt(σ² + eps)` with the
    /// given per-column statistics.
    ///
    /// # Panics
    /// Debug-panics on width mismatch.
    pub fn standardize_cols_in_place(&mut self, mean: &Tensor, var: &Tensor, eps: f32) {
        debug_assert_eq!(self.rank(), 2);
        let cols = self.dims()[1];
        debug_assert_eq!(mean.len(), cols);
        debug_assert_eq!(var.len(), cols);
        let inv_std: Vec<f32> = var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        for row in self.data_mut().chunks_exact_mut(cols) {
            for ((x, &m), &is) in row.iter_mut().zip(mean.data()).zip(&inv_std) {
                *x = (*x - m) * is;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2])
    }

    #[test]
    fn mean_cols_matches_manual() {
        assert_eq!(m().mean_cols().data(), &[3.0, 4.0]);
    }

    #[test]
    fn var_cols_matches_manual() {
        // Column 0: {1,3,5} mean 3, var (4+0+4)/3.
        let v = m().var_cols();
        assert!((v.data()[0] - 8.0 / 3.0).abs() < 1e-6);
        assert!((v.data()[1] - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_and_sum_cols() {
        assert_eq!(m().max_cols().data(), &[5.0, 6.0]);
        assert_eq!(m().sum_cols().data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn standardize_yields_zero_mean_unit_var() {
        let mut t = m();
        let mean = t.mean_cols();
        let var = t.var_cols();
        t.standardize_cols_in_place(&mean, &var, 1e-8);
        let new_mean = t.mean_cols();
        let new_var = t.var_cols();
        assert!(new_mean.data().iter().all(|v| v.abs() < 1e-5));
        assert!(new_var.data().iter().all(|v| (v - 1.0).abs() < 1e-4));
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn mean_rejects_empty() {
        let _ = Tensor::zeros(&[0, 3]).mean_cols();
    }
}
