//! Pluggable compute backends for the hot `_into` kernel set.
//!
//! Every FLOP in the planned forward path flows through a handful of slice
//! kernels (`matmul_bt_bias_into`, `conv2d_batch_into`, the elementwise
//! family, …). This module makes that choke point pluggable: the
//! [`ComputeBackend`] trait covers the kernel surface, [`ScalarBackend`]
//! is the existing portable implementation (the reference the conformance
//! suites pin against), and [`SimdBackend`] swaps the dense kernels for
//! explicit AVX2+FMA microkernels (see [`simd`]). Future backends (int8,
//! GPU offload) slot in behind the same trait: add a unit struct, a
//! [`BackendKind`] variant, and an arm in the private `Backend::imp`
//! dispatch table.
//!
//! # Selection
//!
//! [`Backend::resolve`] picks the backend once, in priority order:
//!
//! 1. A process-wide programmatic override ([`set_override`]) — used by
//!    tests and the bench sweep, immune to env-var races between threads.
//! 2. The `CBNET_BACKEND` environment variable (read once per process):
//!    `scalar`, `simd`, or `auto` (anything else falls back to `auto`).
//! 3. `auto` — SIMD when the CPU supports AVX2+FMA, scalar otherwise.
//!
//! Requesting `simd` on a CPU without AVX2+FMA degrades gracefully: the
//! handle still reports [`BackendKind::Simd`] but every wrapper in [`simd`]
//! detects the missing features and takes the scalar path, so results stay
//! correct everywhere.
//!
//! `nn::ForwardPlan` resolves its backend at construction and holds the
//! [`Backend`] handle by value — dispatch is a two-variant enum match onto
//! `&'static` unit structs, so the per-call path allocates nothing and boxes
//! nothing. `Network::predict_planned` rebuilds its cached plan when the
//! resolved backend changes, which is how `CBNET_BACKEND` reaches the five
//! comparator adapters and the serving/fleet empirical profiles without any
//! adapter code knowing backends exist.
//!
//! # Unsafe policy
//!
//! The workspace is `forbid(unsafe_code)` except this crate, which is
//! `deny(unsafe_code)` with a scoped `allow` on [`simd`] only. Every
//! `unsafe` block there carries a `// SAFETY:` comment; the `unsafe-audit`
//! cbnet-lint rule fails the build otherwise. The unsafety is confined to
//! executing AVX2/FMA instructions behind a runtime feature check — no raw
//! pointers cross a function boundary.
//!
//! # Reduction-order contracts
//!
//! Scalar `dot` (see [`crate::matmul::dot`]): 4 round-robin lanes of
//! separate multiply-then-add, combined `((l0+l1)+l2)+l3`, sequential tail.
//! SIMD `dot` (see [`simd`]): 8 round-robin FMA lanes, masked-tail
//! `fma(0,0,lane)`, combined `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
//! Both are pinned bitwise by `crates/tensor/tests/backend_conformance.rs`;
//! the difference is why dot-family kernels agree across backends only to a
//! documented ULP-scale tolerance, while `matmul_into`/`matmul_at_into`/
//! `relu_into` (same operation order in both backends) are bit-identical.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::conv::Conv2dGeom;

#[cfg(target_arch = "x86_64")]
pub mod simd;

/// The kernel surface a compute backend must provide.
///
/// Object-safe on purpose: [`Backend`] dispatches through a `&'static dyn
/// ComputeBackend` resolved from a two-variant enum, and future backends
/// (int8, GPU) implement this same trait. All `_into` methods follow the
/// workspace buffer contract — the output slice is caller-owned and fully
/// overwritten, scratch is caller-owned, nothing allocates.
pub trait ComputeBackend: Sync {
    /// Short stable identifier (`"scalar"`, `"simd"`) used in bench output
    /// and reports.
    fn name(&self) -> &'static str;

    /// Dot product of two equal-length slices (this backend's documented
    /// reduction order — see the module docs).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// `C = A·B`; `c` is the caller-owned output, fully overwritten.
    fn matmul_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `C = A·Bᵀ`; `c` is the caller-owned output, fully overwritten.
    fn matmul_bt_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `C = A·Bᵀ (+ bias broadcast)`; `c` is the caller-owned output, fully
    /// overwritten. The planned dense-layer kernel.
    #[allow(clippy::too_many_arguments)]
    fn matmul_bt_bias_into(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    );

    /// `C = Aᵀ·B`; `c` is the caller-owned output, fully overwritten.
    fn matmul_at_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// `y = A·x`; `y` is the caller-owned output, fully overwritten.
    fn matvec_into(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize);

    /// Batched im2col convolution; `out` is the caller-owned output, fully
    /// overwritten, `scratch` holds per-worker patch matrices (size from
    /// [`crate::conv::conv2d_scratch_floats`]).
    #[allow(clippy::too_many_arguments)]
    fn conv2d_batch_into(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        g: &Conv2dGeom,
        out_channels: usize,
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
    );

    /// `out = max(input, 0)` elementwise into the caller-owned `out`.
    fn relu_into(&self, input: &[f32], out: &mut [f32]);

    /// `out = sigmoid(input)` elementwise into the caller-owned `out`.
    fn sigmoid_into(&self, input: &[f32], out: &mut [f32]);

    /// `out = tanh(input)` elementwise into the caller-owned `out`.
    fn tanh_into(&self, input: &[f32], out: &mut [f32]);

    /// Row-wise softmax over a `(rows, cols)` matrix into the caller-owned
    /// `out`.
    fn softmax_rows_into(&self, input: &[f32], out: &mut [f32], cols: usize);

    /// Apply `f` elementwise from `input` into the caller-owned `out`.
    fn unary_map_into(&self, input: &[f32], out: &mut [f32], f: &(dyn Fn(f32) -> f32 + Sync));
}

/// The portable reference backend: delegates to the existing scalar kernels
/// in [`crate::matmul`], [`crate::ops`] and [`crate::conv`]. This is the
/// implementation every conformance suite pins against.
pub struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        crate::matmul::dot(a, b)
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::matmul::matmul_into(a, b, c, m, k, n);
    }

    fn matmul_bt_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::matmul::matmul_bt_into(a, b, c, m, k, n);
    }

    fn matmul_bt_bias_into(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        crate::matmul::matmul_bt_bias_into(a, b, bias, c, m, k, n);
    }

    fn matmul_at_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        crate::matmul::matmul_at_into(a, b, c, m, k, n);
    }

    fn matvec_into(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
        crate::matmul::matvec_into(a, x, y, m, n);
    }

    fn conv2d_batch_into(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        g: &Conv2dGeom,
        out_channels: usize,
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
    ) {
        crate::conv::conv2d_batch_into(input, weights, bias, g, out_channels, batch, out, scratch);
    }

    fn relu_into(&self, input: &[f32], out: &mut [f32]) {
        crate::ops::relu_into(input, out);
    }

    fn sigmoid_into(&self, input: &[f32], out: &mut [f32]) {
        crate::ops::sigmoid_into(input, out);
    }

    fn tanh_into(&self, input: &[f32], out: &mut [f32]) {
        crate::ops::tanh_into(input, out);
    }

    fn softmax_rows_into(&self, input: &[f32], out: &mut [f32], cols: usize) {
        crate::ops::softmax_rows_into(input, out, cols);
    }

    fn unary_map_into(&self, input: &[f32], out: &mut [f32], f: &(dyn Fn(f32) -> f32 + Sync)) {
        crate::ops::unary_map_into(input, out, f);
    }
}

/// The explicit AVX2+FMA backend: dense and relu kernels route to the
/// [`simd`] microkernels (which themselves fall back to scalar when the CPU
/// lacks the features); transcendental elementwise kernels and softmax stay
/// scalar — they are `exp`/`tanh`-bound, not load-bound, and keeping them
/// shared keeps those outputs bit-identical across backends.
#[cfg(target_arch = "x86_64")]
pub struct SimdBackend;

#[cfg(target_arch = "x86_64")]
impl ComputeBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd::dot(a, b)
    }

    fn matmul_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        simd::matmul_into(a, b, c, m, k, n);
    }

    fn matmul_bt_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        simd::matmul_bt_into(a, b, c, m, k, n);
    }

    fn matmul_bt_bias_into(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        simd::matmul_bt_bias_into(a, b, bias, c, m, k, n);
    }

    fn matmul_at_into(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        simd::matmul_at_into(a, b, c, m, k, n);
    }

    fn matvec_into(&self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
        simd::matvec_into(a, x, y, m, n);
    }

    fn conv2d_batch_into(
        &self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        g: &Conv2dGeom,
        out_channels: usize,
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
    ) {
        // Same batching/threading shell as scalar; only the inner im2col
        // product changes kernel.
        crate::conv::conv2d_batch_into_with(
            input,
            weights,
            bias,
            g,
            out_channels,
            batch,
            out,
            scratch,
            simd::matmul_bt_into,
        );
    }

    fn relu_into(&self, input: &[f32], out: &mut [f32]) {
        simd::relu_into(input, out);
    }

    fn sigmoid_into(&self, input: &[f32], out: &mut [f32]) {
        crate::ops::sigmoid_into(input, out);
    }

    fn tanh_into(&self, input: &[f32], out: &mut [f32]) {
        crate::ops::tanh_into(input, out);
    }

    fn softmax_rows_into(&self, input: &[f32], out: &mut [f32], cols: usize) {
        crate::ops::softmax_rows_into(input, out, cols);
    }

    fn unary_map_into(&self, input: &[f32], out: &mut [f32], f: &(dyn Fn(f32) -> f32 + Sync)) {
        crate::ops::unary_map_into(input, out, f);
    }
}

/// Which kernel set a [`Backend`] handle dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Portable scalar kernels (the conformance reference).
    Scalar,
    /// Explicit AVX2+FMA kernels; falls back to scalar per-call on CPUs
    /// without those features.
    Simd,
}

static SCALAR: ScalarBackend = ScalarBackend;
#[cfg(target_arch = "x86_64")]
static SIMD: SimdBackend = SimdBackend;

/// Programmatic backend override state: 0 = none, 1 = scalar, 2 = simd.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force every subsequent [`Backend::resolve`] in this process to return
/// `kind`, regardless of `CBNET_BACKEND`. Tests and the bench sweep use this
/// instead of mutating the environment, which would race between threads.
pub fn set_override(kind: BackendKind) {
    OVERRIDE.store(
        match kind {
            BackendKind::Scalar => 1,
            BackendKind::Simd => 2,
        },
        Ordering::SeqCst,
    );
}

/// Clear a [`set_override`], returning [`Backend::resolve`] to env/auto
/// selection.
pub fn clear_override() {
    OVERRIDE.store(0, Ordering::SeqCst);
}

/// `CBNET_BACKEND` parsed once per process: `Some(kind)` for an explicit
/// `scalar`/`simd`, `None` for `auto`, unset, or unrecognised values.
fn env_choice() -> Option<BackendKind> {
    static CHOICE: OnceLock<Option<BackendKind>> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var("CBNET_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Some(BackendKind::Scalar),
        Ok(v) if v.eq_ignore_ascii_case("simd") => Some(BackendKind::Simd),
        _ => None,
    })
}

/// A resolved, `Copy` compute-backend handle.
///
/// This is what `nn::ForwardPlan` stores: selection happens once (at plan
/// construction), after which every kernel call is an enum match onto a
/// `&'static` unit struct — no allocation, no boxed vtable on the per-call
/// path. The inherent methods mirror the [`ComputeBackend`] surface so
/// callers never touch the trait object directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    kind: BackendKind,
}

impl Backend {
    /// The portable scalar backend (always available).
    pub fn scalar() -> Backend {
        Backend {
            kind: BackendKind::Scalar,
        }
    }

    /// The SIMD backend, or `None` when the CPU (or target arch) lacks
    /// AVX2+FMA. Use [`Backend::auto`] for pick-best-available.
    pub fn simd() -> Option<Backend> {
        #[cfg(target_arch = "x86_64")]
        {
            if simd::available() {
                return Some(Backend {
                    kind: BackendKind::Simd,
                });
            }
        }
        None
    }

    /// Best available backend: SIMD when the CPU supports AVX2+FMA, scalar
    /// otherwise.
    pub fn auto() -> Backend {
        Backend::simd().unwrap_or_else(Backend::scalar)
    }

    /// Resolve the process-wide backend selection (override, then
    /// `CBNET_BACKEND`, then auto-detection — see the module docs).
    pub fn resolve() -> Backend {
        match OVERRIDE.load(Ordering::SeqCst) {
            1 => return Backend::scalar(),
            2 => {
                return Backend {
                    kind: BackendKind::Simd,
                }
            }
            _ => {}
        }
        match env_choice() {
            Some(BackendKind::Scalar) => Backend::scalar(),
            // Explicit `simd` keeps the kind even without AVX2 — the simd
            // wrappers degrade to scalar per-call, so this stays correct.
            Some(BackendKind::Simd) => Backend {
                kind: BackendKind::Simd,
            },
            None => Backend::auto(),
        }
    }

    /// Which kernel set this handle dispatches to.
    pub fn kind(self) -> BackendKind {
        self.kind
    }

    /// Short stable identifier (`"scalar"` / `"simd"`).
    pub fn name(self) -> &'static str {
        self.imp().name()
    }

    /// The static implementation behind this handle. On non-x86-64 targets
    /// the Simd kind resolves to the scalar implementation.
    fn imp(self) -> &'static dyn ComputeBackend {
        match self.kind {
            BackendKind::Scalar => &SCALAR,
            #[cfg(target_arch = "x86_64")]
            BackendKind::Simd => &SIMD,
            #[cfg(not(target_arch = "x86_64"))]
            BackendKind::Simd => &SCALAR,
        }
    }

    /// Dot product in this backend's documented reduction order.
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        self.imp().dot(a, b)
    }

    /// `C = A·B`; `c` is the caller-owned output, fully overwritten.
    pub fn matmul_into(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        self.imp().matmul_into(a, b, c, m, k, n);
    }

    /// `C = A·Bᵀ`; `c` is the caller-owned output, fully overwritten.
    pub fn matmul_bt_into(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        self.imp().matmul_bt_into(a, b, c, m, k, n);
    }

    /// `C = A·Bᵀ (+ bias)`; `c` is the caller-owned output, fully
    /// overwritten.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bt_bias_into(
        self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.imp().matmul_bt_bias_into(a, b, bias, c, m, k, n);
    }

    /// `C = Aᵀ·B`; `c` is the caller-owned output, fully overwritten.
    pub fn matmul_at_into(self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        self.imp().matmul_at_into(a, b, c, m, k, n);
    }

    /// `y = A·x`; `y` is the caller-owned output, fully overwritten.
    pub fn matvec_into(self, a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
        self.imp().matvec_into(a, x, y, m, n);
    }

    /// Batched im2col convolution; `out` is fully overwritten, `scratch`
    /// holds the per-worker patch matrices.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_batch_into(
        self,
        input: &[f32],
        weights: &[f32],
        bias: &[f32],
        g: &Conv2dGeom,
        out_channels: usize,
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
    ) {
        self.imp()
            .conv2d_batch_into(input, weights, bias, g, out_channels, batch, out, scratch);
    }

    /// `out = max(input, 0)` into the caller-owned `out`.
    pub fn relu_into(self, input: &[f32], out: &mut [f32]) {
        self.imp().relu_into(input, out);
    }

    /// `out = sigmoid(input)` into the caller-owned `out`.
    pub fn sigmoid_into(self, input: &[f32], out: &mut [f32]) {
        self.imp().sigmoid_into(input, out);
    }

    /// `out = tanh(input)` into the caller-owned `out`.
    pub fn tanh_into(self, input: &[f32], out: &mut [f32]) {
        self.imp().tanh_into(input, out);
    }

    /// Row-wise softmax into the caller-owned `out`.
    pub fn softmax_rows_into(self, input: &[f32], out: &mut [f32], cols: usize) {
        self.imp().softmax_rows_into(input, out, cols);
    }

    /// Apply `f` elementwise from `input` into the caller-owned `out`.
    pub fn unary_map_into(self, input: &[f32], out: &mut [f32], f: &(dyn Fn(f32) -> f32 + Sync)) {
        self.imp().unary_map_into(input, out, f);
    }
}

impl Default for Backend {
    /// The default handle is [`Backend::resolve`] — what a `ForwardPlan`
    /// gets when the caller expresses no preference.
    fn default() -> Backend {
        Backend::resolve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_backend_matches_free_kernels() {
        let be = Backend::scalar();
        assert_eq!(be.name(), "scalar");
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5f32, -1.0, 2.0, 0.25, 3.0];
        assert_eq!(be.dot(&a, &b), crate::matmul::dot(&a, &b));
        let mut out = [0.0f32; 5];
        be.relu_into(&[-1.0, 2.0, -3.0, 4.0, 0.0], &mut out);
        assert_eq!(out, [0.0, 2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn auto_is_simd_when_available() {
        match Backend::simd() {
            Some(s) => {
                assert_eq!(Backend::auto(), s);
                assert_eq!(s.name(), "simd");
            }
            None => assert_eq!(Backend::auto(), Backend::scalar()),
        }
    }

    #[test]
    fn override_beats_env_and_auto() {
        set_override(BackendKind::Scalar);
        assert_eq!(Backend::resolve().kind(), BackendKind::Scalar);
        set_override(BackendKind::Simd);
        assert_eq!(Backend::resolve().kind(), BackendKind::Simd);
        clear_override();
    }

    #[test]
    fn handle_is_copy_and_comparable() {
        let a = Backend::scalar();
        let b = a;
        assert_eq!(a, b);
        if let Some(s) = Backend::simd() {
            assert_ne!(a, s);
        }
    }
}
