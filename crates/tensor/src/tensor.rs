//! The [`Tensor`] type: contiguous row-major `f32` storage plus a [`Shape`].

use crate::{Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the single numeric container used by the whole workspace. It is
/// intentionally simple: owning `Vec<f32>` storage, no views or lazy
/// broadcasting. Networks at LeNet scale spend their time inside `matmul` /
/// `im2col`, so structural cleverness buys nothing; simplicity keeps every
/// kernel auditable.
///
/// Cloning a `Tensor` deep-copies its buffer; training code reuses buffers
/// explicitly where it matters.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the shape's element count. Use
    /// [`Tensor::try_from_vec`] for a fallible version.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_from_vec is the non-panicking form")
        Self::try_from_vec(data, dims).expect("element count must match shape")
    }

    /// Fallible [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        shape.check_len(data.len())?;
        Ok(Tensor { data, shape })
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            data: vec![v],
            shape: Shape::new(&[]),
        }
    }

    /// A 1-D tensor from a slice.
    pub fn from_slice(v: &[f32]) -> Self {
        Tensor {
            data: v.to_vec(),
            shape: Shape::new(&[v.len()]),
        }
    }

    /// Linearly spaced values in `[start, end)` with `n` points (1-D).
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        if n == 0 {
            return Tensor::zeros(&[0]);
        }
        let step = if n > 1 {
            (end - start) / (n as f32)
        } else {
            0.0
        };
        let data: Vec<f32> = (0..n).map(|i| start + step * i as f32).collect();
        Tensor::from_vec(data, &[n])
    }

    // ------------------------------------------------------------ accessors

    /// The underlying buffer, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis extents as a slice (shorthand for `shape().dims()`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of axes).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    /// Debug-panics on rank/bounds violation.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set the element at a multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], v: f32) {
        let off = self.shape.offset(index);
        self.data[off] = v;
    }

    // --------------------------------------------------------- reshaping

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        shape.check_len(self.data.len())?;
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// In-place reshape (no copy).
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims);
        shape.check_len(self.data.len())?;
        self.shape = shape;
        Ok(())
    }

    /// Flatten to 1-D (copy).
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.data.len()]),
        }
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if rank ≠ 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        // Blocked transpose: better locality than the naive loop for the
        // matrices that show up in dense-layer backward passes.
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            for j0 in (0..c).step_by(B) {
                let imax = (i0 + B).min(r);
                let jmax = (j0 + B).min(c);
                for i in i0..imax {
                    let row = i * c;
                    for j in j0..jmax {
                        out.data[j * r + i] = self.data[row + j];
                    }
                }
            }
        }
        out
    }

    /// Extract row `i` of a rank-2 tensor as a 1-D tensor.
    ///
    /// # Panics
    /// Panics if rank ≠ 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires rank-2 tensor");
        let c = self.shape.dim(1);
        assert!(i < self.shape.dim(0), "row index out of bounds");
        Tensor::from_vec(self.data[i * c..(i + 1) * c].to_vec(), &[c])
    }

    /// Borrow row `i` of a rank-2 tensor as a slice (no copy).
    #[inline]
    pub fn row_slice(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.rank(), 2);
        let c = self.shape.dim(1);
        &self.data[i * c..(i + 1) * c]
    }

    /// Stack 1-D tensors of equal length into a rank-2 tensor (rows).
    ///
    /// # Panics
    /// Panics if the slice is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for r in rows {
            assert_eq!(r.len(), c, "stack_rows: all rows must have equal length");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), c])
    }

    /// Select a batch of rows by index from a rank-2 tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.rank(), 2, "gather_rows requires rank-2 tensor");
        let c = self.shape.dim(1);
        let mut data = Vec::with_capacity(indices.len() * c);
        for &i in indices {
            data.extend_from_slice(self.row_slice(i));
        }
        Tensor::from_vec(data, &[indices.len(), c])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2], 3.5);
        assert_eq!(f.data(), &[3.5, 3.5]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn from_vec_panics_on_mismatch() {
        let _ = Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn scalar_and_slice() {
        let s = Tensor::scalar(2.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.data(), &[2.5]);
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(v.dims(), &[2]);
    }

    #[test]
    fn linspace_endpoints() {
        let l = Tensor::linspace(0.0, 1.0, 4);
        assert_eq!(l.data(), &[0.0, 0.25, 0.5, 0.75]);
        assert_eq!(Tensor::linspace(0.0, 1.0, 0).len(), 0);
        assert_eq!(Tensor::linspace(5.0, 9.0, 1).data(), &[5.0]);
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.0);
        assert_eq!(t.at(&[1, 0]), 7.0);
        assert_eq!(t.data(), &[0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn reshape_in_place_no_copy() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.reshape_in_place(&[3, 2]).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert!(t.reshape_in_place(&[7]).is_err());
    }

    #[test]
    fn transpose_small() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_is_involution_on_larger_matrix() {
        let n = 67; // deliberately not a multiple of the block size
        let m = 45;
        let t = Tensor::from_vec((0..n * m).map(|i| i as f32).collect(), &[n, m]);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn rows_and_gather() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(t.row(1).data(), &[3.0, 4.0]);
        assert_eq!(t.row_slice(2), &[5.0, 6.0]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0]);
        assert_eq!(g.dims(), &[2, 2]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![
            Tensor::from_slice(&[1.0, 2.0]),
            Tensor::from_slice(&[3.0, 4.0]),
        ];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[16]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn flatten_copies() {
        let t = Tensor::zeros(&[2, 2]);
        assert_eq!(t.flatten().dims(), &[4]);
    }
}
