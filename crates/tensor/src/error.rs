//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
///
/// Most hot-path kernels (`matmul`, elementwise ops) assert shape agreement
/// with `debug_assert!` and document their requirements instead of returning
/// `Result`, because a shape mismatch there is a programming bug, not a
/// recoverable condition. `TensorError` is used on API boundaries where the
/// input originates outside the library (deserialisation, reshape requests,
/// user-provided buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the requested shape does not match
    /// the length of the provided buffer.
    ElementCountMismatch {
        /// Elements expected from the shape product.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree (e.g. elementwise operands) differ.
    ShapeMismatch {
        /// Left-hand side shape.
        lhs: Vec<usize>,
        /// Right-hand side shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A serialized byte stream was malformed.
    Deserialize(String),
    /// Generic invalid-argument error with context.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCountMismatch { expected, actual } => write!(
                f,
                "element count mismatch: shape requires {expected} elements, got {actual}"
            ),
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::Deserialize(msg) => write!(f, "deserialize error: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ElementCountMismatch {
            expected: 6,
            actual: 4,
        };
        assert!(e.to_string().contains("6"));
        assert!(e.to_string().contains("4"));

        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![3, 2],
        };
        assert!(e.to_string().contains("[2, 3]"));

        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        assert!(e.to_string().contains("axis 5"));

        let e = TensorError::Deserialize("truncated".into());
        assert!(e.to_string().contains("truncated"));

        let e = TensorError::InvalidArgument("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&TensorError::InvalidArgument("x".into()));
    }
}
