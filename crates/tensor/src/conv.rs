//! `im2col` / `col2im` lowering for 2-D convolutions, plus pooling index
//! helpers.
//!
//! Convolutions in the `nn` crate are computed as a matrix product over the
//! im2col patch matrix — the same lowering Caffe/Chainer (the paper's
//! BranchyNet substrate) used. Layout is NCHW throughout.

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height after convolution.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width after convolution.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Rows of the im2col patch matrix (= output spatial positions).
    #[inline]
    pub fn patch_rows(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Columns of the im2col patch matrix (= kernel volume).
    #[inline]
    pub fn patch_cols(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Validate that the geometry produces a non-degenerate output.
    pub fn validate(&self) -> Result<(), crate::TensorError> {
        if self.k_h == 0 || self.k_w == 0 || self.stride == 0 {
            return Err(crate::TensorError::InvalidArgument(
                "kernel and stride must be nonzero".into(),
            ));
        }
        if self.in_h + 2 * self.pad < self.k_h || self.in_w + 2 * self.pad < self.k_w {
            return Err(crate::TensorError::InvalidArgument(format!(
                "kernel {}×{} larger than padded input {}×{}",
                self.k_h,
                self.k_w,
                self.in_h + 2 * self.pad,
                self.in_w + 2 * self.pad
            )));
        }
        Ok(())
    }
}

/// Lower one image (CHW, contiguous) into the im2col patch matrix.
///
/// `out` must have length `patch_rows() * patch_cols()` and is laid out so
/// row `r` holds the flattened receptive field of output position `r`
/// (channel-major within the row). Padding positions contribute zeros.
pub fn im2col(input: &[f32], g: &Conv2dGeom, out: &mut [f32]) {
    debug_assert_eq!(input.len(), g.in_channels * g.in_h * g.in_w);
    debug_assert_eq!(out.len(), g.patch_rows() * g.patch_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = g.patch_cols();
    out.fill(0.0);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let row_base = row * cols;
            let iy0 = (oy * g.stride) as isize - g.pad as isize;
            let ix0 = (ox * g.stride) as isize - g.pad as isize;
            for c in 0..g.in_channels {
                let chan_base = c * g.in_h * g.in_w;
                let col_base = row_base + c * g.k_h * g.k_w;
                for ky in 0..g.k_h {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue; // zero padding, already filled
                    }
                    let in_row = chan_base + iy as usize * g.in_w;
                    let out_row = col_base + ky * g.k_w;
                    for kx in 0..g.k_w {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        out[out_row + kx] = input[in_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatter-accumulate an im2col patch matrix back into image space (CHW).
///
/// This is the adjoint of [`im2col`]; it is the convolution backward pass
/// with respect to the input. `grad_input` is accumulated into (callers zero
/// it first when appropriate).
pub fn col2im(cols_mat: &[f32], g: &Conv2dGeom, grad_input: &mut [f32]) {
    debug_assert_eq!(grad_input.len(), g.in_channels * g.in_h * g.in_w);
    debug_assert_eq!(cols_mat.len(), g.patch_rows() * g.patch_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = g.patch_cols();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let row_base = row * cols;
            let iy0 = (oy * g.stride) as isize - g.pad as isize;
            let ix0 = (ox * g.stride) as isize - g.pad as isize;
            for c in 0..g.in_channels {
                let chan_base = c * g.in_h * g.in_w;
                let col_base = row_base + c * g.k_h * g.k_w;
                for ky in 0..g.k_h {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let in_row = chan_base + iy as usize * g.in_w;
                    let src_row = col_base + ky * g.k_w;
                    for kx in 0..g.k_w {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        grad_input[in_row + ix as usize] += cols_mat[src_row + kx];
                    }
                }
            }
        }
    }
}

/// Scratch floats [`conv2d_batch_into`] needs for a batch of `batch` images:
/// one im2col patch matrix per worker thread.
pub fn conv2d_scratch_floats(g: &Conv2dGeom, batch: usize) -> usize {
    let workers = crate::parallel::max_threads().min(batch.max(1)).max(1);
    workers * g.patch_rows() * g.patch_cols()
}

/// Batched 2-D convolution into a caller-owned output buffer.
///
/// * `input` — `batch` contiguous CHW volumes matching `g`.
/// * `weights` — `(out_channels, patch_cols)` row-major.
/// * `bias` — `out_channels` values, added per channel.
/// * `out` — `batch · out_channels · patch_rows` floats, fully overwritten,
///   each sample row laid out channel-major `(O × P)`.
/// * `scratch` — at least [`conv2d_scratch_floats`] floats; holds the
///   per-worker im2col patch matrices so the hot path allocates nothing.
///
/// Samples are split across threads in whole-image chunks, each worker owning
/// a disjoint slice of `out` and its own patch buffer. Every sample is
/// lowered and multiplied with exactly the same operations regardless of the
/// split, so the output is bit-identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_into(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: &Conv2dGeom,
    out_channels: usize,
    batch: usize,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    conv2d_batch_into_with(
        input,
        weights,
        bias,
        g,
        out_channels,
        batch,
        out,
        scratch,
        crate::matmul::matmul_bt_into,
    );
}

/// The `A · Bᵀ` kernel signature [`conv2d_batch_into_with`] is parameterised
/// over: `(a, b, c, m, k, n)` with `c` fully overwritten. Both
/// `matmul::matmul_bt_into` and the SIMD backend's variant satisfy it, which
/// is how [`crate::backend::Backend`] routes the im2col product through
/// whichever kernel set is active without duplicating the batching/threading
/// shell.
pub type MatmulBtKernel = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// [`conv2d_batch_into`] with the inner im2col matrix product supplied by the
/// caller. Same buffer contract: `out` is fully overwritten, `scratch` holds
/// the per-worker patch matrices, nothing allocates.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_into_with(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: &Conv2dGeom,
    out_channels: usize,
    batch: usize,
    out: &mut [f32],
    scratch: &mut [f32],
    bt_kernel: MatmulBtKernel,
) {
    let in_f = g.in_channels * g.in_h * g.in_w;
    let p = g.patch_rows();
    let k = g.patch_cols();
    let out_f = out_channels * p;
    debug_assert_eq!(input.len(), batch * in_f, "conv input size mismatch");
    debug_assert_eq!(weights.len(), out_channels * k);
    debug_assert_eq!(bias.len(), out_channels);
    debug_assert_eq!(out.len(), batch * out_f, "conv output size mismatch");
    debug_assert!(scratch.len() >= conv2d_scratch_floats(g, batch));
    if batch == 0 {
        return;
    }

    let run_rows = |s0: usize, chunk: &mut [f32], patches: &mut [f32]| {
        for (si, orow) in chunk.chunks_exact_mut(out_f).enumerate() {
            let s = s0 + si;
            im2col(&input[s * in_f..(s + 1) * in_f], g, patches);
            // orow as (O × P) = W (O×K) · patchesᵀ (K×P)
            bt_kernel(weights, patches, orow, out_channels, k, p);
            for (ch, seg) in orow.chunks_exact_mut(p).enumerate() {
                let b = bias[ch];
                for v in seg {
                    *v += b;
                }
            }
        }
    };

    let workers = crate::parallel::max_threads().min(batch).max(1);
    if workers == 1 {
        run_rows(0, out, &mut scratch[..p * k]);
        return;
    }
    let rows_per = batch.div_ceil(workers);
    crossbeam::scope(|scope| {
        let mut out_rest = out;
        let mut scratch_rest = &mut scratch[..];
        let mut s0 = 0;
        while !out_rest.is_empty() {
            let take = (rows_per * out_f).min(out_rest.len());
            let (out_head, out_tail) = out_rest.split_at_mut(take);
            let (patch_head, patch_tail) = scratch_rest.split_at_mut(p * k);
            let f = &run_rows;
            scope.spawn(move |_| f(s0, out_head, patch_head));
            s0 += take / out_f;
            out_rest = out_tail;
            scratch_rest = patch_tail;
        }
    })
    // lint:allow(panic-in-lib, reason = "scope errors only propagate a worker panic; swallowing them would corrupt results silently")
    .expect("conv2d_batch_into worker panicked");
}

/// Batched square non-overlapping max pooling into a caller-owned buffer.
///
/// `input` holds `batch` CHW volumes; `out` receives the pooled volumes
/// (spatial dims floor-divided by `window`). When `argmax` is provided it is
/// filled with the flat within-sample input index of every pooled maximum
/// (ties resolve to the first occurrence, matching the training-path layer).
#[allow(clippy::too_many_arguments)]
pub fn maxpool2_batch_into(
    input: &[f32],
    out: &mut [f32],
    mut argmax: Option<&mut [u32]>,
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    batch: usize,
) {
    let (oh, ow) = (in_h / window, in_w / window);
    let in_f = channels * in_h * in_w;
    let out_f = channels * oh * ow;
    debug_assert_eq!(input.len(), batch * in_f, "pool input size mismatch");
    debug_assert_eq!(out.len(), batch * out_f, "pool output size mismatch");
    if let Some(am) = &argmax {
        debug_assert_eq!(am.len(), batch * out_f);
    }
    for s in 0..batch {
        let x = &input[s * in_f..(s + 1) * in_f];
        let o = &mut out[s * out_f..(s + 1) * out_f];
        let mut am = argmax.as_mut().map(|a| &mut a[s * out_f..(s + 1) * out_f]);
        for c in 0..channels {
            let chan = c * in_h * in_w;
            let ochan = c * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..window {
                        let iy = oy * window + ky;
                        let row = chan + iy * in_w + ox * window;
                        for kx in 0..window {
                            let v = x[row + kx];
                            if v > best {
                                best = v;
                                best_i = row + kx;
                            }
                        }
                    }
                    o[ochan + oy * ow + ox] = best;
                    if let Some(am) = am.as_mut() {
                        am[ochan + oy * ow + ox] = best_i as u32;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(1, 28, 28, 5, 1, 0);
        assert_eq!(g.out_h(), 24);
        assert_eq!(g.out_w(), 24);
        let g = geom(1, 28, 28, 5, 1, 2);
        assert_eq!(g.out_h(), 28);
        let g = geom(1, 28, 28, 2, 2, 0);
        assert_eq!(g.out_h(), 14);
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(geom(1, 4, 4, 0, 1, 0).validate().is_err());
        assert!(geom(1, 4, 4, 3, 0, 0).validate().is_err());
        assert!(geom(1, 2, 2, 5, 1, 0).validate().is_err());
        assert!(geom(1, 2, 2, 5, 1, 2).validate().is_ok());
        assert!(geom(1, 28, 28, 5, 1, 0).validate().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: patch matrix is the image itself, one pixel
        // per row.
        let g = geom(1, 2, 3, 1, 1, 0);
        let img: Vec<f32> = (1..=6).map(|v| v as f32).collect();
        let mut out = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&img, &g, &mut out);
        assert_eq!(out, img);
    }

    #[test]
    fn im2col_known_3x3() {
        // 3×3 image, 2×2 kernel, stride 1: four patches.
        let g = Conv2dGeom {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 2,
            k_w: 2,
            stride: 1,
            pad: 0,
        };
        let img: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut out = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&img, &g, &mut out);
        assert_eq!(
            out,
            vec![
                1.0, 2.0, 4.0, 5.0, // patch at (0,0)
                2.0, 3.0, 5.0, 6.0, // (0,1)
                4.0, 5.0, 7.0, 8.0, // (1,0)
                5.0, 6.0, 8.0, 9.0, // (1,1)
            ]
        );
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let g = Conv2dGeom {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let img = vec![1.0, 2.0, 3.0, 4.0];
        let mut out = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&img, &g, &mut out);
        // First patch is the 3×3 window centred at (0,0): top row and left
        // column are padding.
        assert_eq!(&out[..9], &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_multichannel_layout() {
        // 2 channels, 2×2 image, 2×2 kernel: single patch, channel-major.
        let g = Conv2dGeom {
            in_channels: 2,
            in_h: 2,
            in_w: 2,
            k_h: 2,
            k_w: 2,
            stride: 1,
            pad: 0,
        };
        let img: Vec<f32> = (1..=8).map(|v| v as f32).collect();
        let mut out = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&img, &g, &mut out);
        assert_eq!(out, img); // channel 0 patch then channel 1 patch
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // verified on a non-trivial geometry with padding and stride.
        let g = Conv2dGeom {
            in_channels: 2,
            in_h: 5,
            in_w: 4,
            k_h: 3,
            k_w: 3,
            stride: 2,
            pad: 1,
        };
        let n_in = g.in_channels * g.in_h * g.in_w;
        let n_cols = g.patch_rows() * g.patch_cols();
        let x: Vec<f32> = (0..n_in).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..n_cols).map(|i| (i as f32 * 0.11).cos()).collect();

        let mut ax = vec![0.0; n_cols];
        im2col(&x, &g, &mut ax);
        let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();

        let mut aty = vec![0.0; n_in];
        col2im(&y, &g, &mut aty);
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates() {
        let g = geom(1, 2, 2, 1, 1, 0);
        let cols_m = vec![1.0, 2.0, 3.0, 4.0];
        let mut grad = vec![10.0; 4];
        col2im(&cols_m, &g, &mut grad);
        assert_eq!(grad, vec![11.0, 12.0, 13.0, 14.0]);
    }
}
