//! Seeded random tensor construction.
//!
//! All stochastic behaviour in the workspace flows through explicitly seeded
//! [`rand::rngs::StdRng`] instances so that every experiment, test and bench
//! is reproducible bit-for-bit on one machine.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// Construct a `StdRng` from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let shape = crate::Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Gaussian samples with the given mean and standard deviation.
    ///
    /// Uses Box–Muller directly so we do not depend on `rand_distr`.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = crate::Shape::new(dims);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(rng);
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Bernoulli 0/1 mask with probability `p` of a 1.
    pub fn rand_bernoulli(dims: &[usize], p: f32, rng: &mut impl Rng) -> Tensor {
        let shape = crate::Shape::new(dims);
        let data = (0..shape.len())
            .map(|_| if rng.gen::<f32>() < p { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dims)
    }
}

/// One Box–Muller draw: two independent standard normals.
#[inline]
pub fn box_muller(rng: &mut impl Rng) -> (f32, f32) {
    // Guard against u1 == 0, which would take ln(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Sample `k` distinct indices from `[0, n)` without replacement
/// (partial Fisher–Yates).
pub fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Shuffle a slice in place (Fisher–Yates).
pub fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A categorical sampler over explicit (unnormalised) weights.
///
/// Used by dataset generation to pick glyph classes and hardness transforms
/// with configured frequencies.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f32>,
}

impl Categorical {
    /// Build from non-negative weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "Categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Categorical { cumulative }
    }

    /// Draw one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        // lint:allow(panic-in-lib, reason = "the constructor rejects empty or all-zero weights, so cumulative is non-empty")
        let total = *self.cumulative.last().unwrap();
        let u = rng.gen_range(0.0..total);
        // Binary search for the first cumulative weight > u.
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

impl Distribution<usize> for Categorical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // lint:allow(panic-in-lib, reason = "the constructor rejects empty or all-zero weights, so cumulative is non-empty")
        let total = *self.cumulative.last().unwrap();
        let u = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        let ta = Tensor::rand_uniform(&[16], 0.0, 1.0, &mut a);
        let tb = Tensor::rand_uniform(&[16], 0.0, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rng_from_seed(1);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(2);
        let t = Tensor::rand_normal(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = rng_from_seed(3);
        let t = Tensor::rand_normal(&[7], 0.0, 1.0, &mut rng);
        assert_eq!(t.len(), 7);
        assert!(t.all_finite());
    }

    #[test]
    fn bernoulli_density() {
        let mut rng = rng_from_seed(4);
        let t = Tensor::rand_bernoulli(&[10_000], 0.3, &mut rng);
        let frac = t.sum() / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "frac {frac}");
        assert!(t.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = rng_from_seed(5);
        let idx = sample_indices(100, 30, &mut rng);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_all_indices_is_permutation() {
        let mut rng = rng_from_seed(6);
        let mut idx = sample_indices(10, 10, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = rng_from_seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn categorical_frequencies_track_weights() {
        let mut rng = rng_from_seed(9);
        let c = Categorical::new(&[1.0, 3.0]);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        let frac1 = counts[1] as f32 / 10_000.0;
        assert!((frac1 - 0.75).abs() < 0.03, "frac {frac1}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }
}
