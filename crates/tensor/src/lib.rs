//! # tensor — dense n-dimensional tensor substrate
//!
//! A small, fast, dependency-light tensor library built for the CBNet
//! reproduction. It provides exactly what a LeNet/BranchyNet-scale training
//! stack needs:
//!
//! * contiguous `f32` storage with shape/stride bookkeeping ([`Tensor`]),
//! * elementwise and reduction kernels ([`ops`]),
//! * cache-blocked, optionally multi-threaded matrix multiplication
//!   ([`matmul`]) using `crossbeam` scoped threads,
//! * `im2col`/`col2im` lowering for convolutions ([`conv`]),
//! * pluggable compute backends ([`backend`]): the portable scalar kernels
//!   plus an explicit AVX2+FMA SIMD set, selected at runtime,
//! * seeded random initialisation ([`random`]),
//! * a compact binary serialisation format ([`serialize`]).
//!
//! The design follows the Rust performance-book guidance used throughout this
//! workspace: no allocation inside hot loops, flat `Vec<f32>` storage, index
//! arithmetic hoisted out of inner loops, and data-parallel outer loops via
//! scoped threads (data-race freedom by construction — each thread gets a
//! disjoint `&mut` chunk).
//!
//! ```
//! use tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the explicit-SIMD
// module (`backend::simd`), which opts back in with a scoped
// `#![allow(unsafe_code)]` and carries a `// SAFETY:` justification on every
// unsafe block — both policed by the `unsafe-audit` cbnet-lint rule. All
// other modules remain unsafe-free.
#![deny(unsafe_code)]

pub mod axis;
pub mod backend;
pub mod conv;
pub mod error;
pub mod matmul;
pub mod ops;
pub mod parallel;
pub mod random;
pub mod serialize;
pub mod shape;
#[allow(clippy::module_inception)]
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
