//! Scoped-thread data parallelism helpers.
//!
//! We deliberately do not depend on `rayon` (it is not in the approved
//! dependency set for this reproduction); instead, the two parallel patterns
//! the workspace actually needs — "split a `&mut [T]` into disjoint chunks and
//! process each on its own thread" and "map an index range in parallel and
//! collect" — are implemented directly over `crossbeam::scope`. Each worker
//! receives a disjoint chunk, so data-race freedom is enforced by the borrow
//! checker, exactly as the Rust Atomics & Locks guidance prescribes.
//!
//! Threading is governed by [`max_threads`], which honours the
//! `TENSOR_NUM_THREADS` environment variable and otherwise uses available
//! parallelism. Single-threaded fallbacks avoid the scope overhead entirely,
//! which matters on the 1-core CI hosts this reproduction targets.

use std::sync::OnceLock;

/// The number of worker threads parallel helpers may use.
///
/// Resolution order: `TENSOR_NUM_THREADS` env var (if parseable and ≥ 1),
/// then [`std::thread::available_parallelism`], then 1. Cached after first
/// call.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(s) = std::env::var("TENSOR_NUM_THREADS") {
            if let Ok(n) = s.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Process disjoint chunks of `data` in parallel.
///
/// Splits `data` into at most [`max_threads`] chunks of at least
/// `min_chunk_len` elements and calls `f(chunk_start_index, chunk)` on each,
/// possibly on different threads. Falls back to a single in-thread call when
/// only one chunk is warranted.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let threads = max_threads().min(len.div_ceil(min_chunk_len.max(1))).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fr = &f;
            s.spawn(move |_| fr(start, head));
            start += take;
            rest = tail;
        }
    })
    // lint:allow(panic-in-lib, reason = "scope errors only propagate a worker panic; swallowing them would corrupt results silently")
    .expect("parallel worker panicked");
}

/// Process disjoint *row-aligned* chunks of `data` in parallel.
///
/// Like [`par_chunks_mut`], but every chunk is guaranteed to be a whole
/// number of rows of `row_len` elements, and `f` receives the index of the
/// chunk's **first row** (not its first element). This is the right splitter
/// for kernels that must never see a partial row — batched softmax, per-image
/// convolution, pooling — where [`par_chunks_mut`]'s element-granular split
/// could hand a worker half a row.
pub fn par_row_chunks_mut<T: Send, F>(data: &mut [T], row_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let row_len = row_len.max(1);
    let rows = data.len() / row_len;
    if rows == 0 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    debug_assert_eq!(data.len() % row_len, 0, "data must be whole rows");
    let threads = max_threads().min(rows).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut row0 = 0;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fr = &f;
            s.spawn(move |_| fr(row0, head));
            row0 += take / row_len;
            rest = tail;
        }
    })
    // lint:allow(panic-in-lib, reason = "scope errors only propagate a worker panic; swallowing them would corrupt results silently")
    .expect("parallel worker panicked");
}

/// Parallel map over an index range, collecting results in order.
///
/// `f(i)` is invoked once for every `i ∈ [0, n)`. Results land in a `Vec`
/// ordered by index regardless of which thread computed them.
pub fn par_map_indexed<T, F>(n: usize, min_chunk_len: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    par_chunks_mut(&mut out, min_chunk_len, |start, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + k);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 10_000];
        par_chunks_mut(&mut data, 64, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (start + k) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_empty_slice_is_noop() {
        let mut data: Vec<u8> = vec![];
        par_chunks_mut(&mut data, 1, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_small_input_single_call() {
        let calls = AtomicUsize::new(0);
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 100, |_, chunk| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(chunk.len(), 3);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn par_map_indexed_is_ordered() {
        let out = par_map_indexed(1000, 16, |i| i * 2);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn par_map_indexed_zero_len() {
        let out: Vec<usize> = par_map_indexed(0, 1, |i| i);
        assert!(out.is_empty());
    }
}
