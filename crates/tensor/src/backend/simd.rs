//! Explicit AVX2+FMA kernels — the workspace's one sanctioned `unsafe`
//! island (see `crates/tensor/src/lib.rs` for the demotion from
//! `forbid(unsafe_code)` and the `unsafe-audit` lint rule that polices it).
//!
//! Every function here is either a safe wrapper (feature-detects, falls back
//! to the scalar kernel when AVX2/FMA is absent, splits work across threads)
//! or a `#[target_feature(enable = "avx2,fma")] unsafe fn` microkernel. The
//! unsafety is narrow: executing AVX2/FMA instructions, which is undefined
//! behaviour only on CPUs without those features — so every wrapper gates on
//! [`available`] before entering an `unsafe` block, and every `unsafe` block
//! carries a `// SAFETY:` justification (enforced by `cbnet-lint`).
//! No raw-pointer arithmetic escapes a kernel: tails shorter than one
//! 8-lane vector go through `_mm256_maskload_ps`/`_mm256_maskstore_ps`,
//! which touch exactly the masked lanes, so all memory access stays inside
//! the argument slices.
//!
//! # Reduction-order contract (what is and isn't bit-identical)
//!
//! * [`dot`] — lane `l` of an 8-lane accumulator sums elements
//!   `l, l+8, l+16, …` with one **fused** multiply-add per element
//!   (`f32::mul_add` semantics: a single rounding). When `len % 8 != 0`, one
//!   final masked step adds `mul_add(0, 0, lane)` to every lane. Lanes then
//!   combine in the fixed tree
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
//!   This is a *different* rounding sequence from the scalar dot (4-lane,
//!   separate multiply and add), so dot-family kernels (`matmul_bt_into`,
//!   `matmul_bt_bias_into`, `matvec_into`) agree with scalar only to
//!   documented tolerance. `crates/tensor/tests/backend_conformance.rs`
//!   pins this contract **bitwise** against a safe `f32::mul_add` model.
//! * [`matmul_into`] / [`matmul_at_into`] — vectorised over the unit-stride
//!   output dimension with *separate* multiply and add (no FMA), preserving
//!   the scalar kernels' per-element operation sequence exactly, including
//!   the `a == 0.0` row-skip: **bit-identical** to scalar.
//! * [`relu_into`] — `_mm256_max_ps(x, 0)`: bit-identical to scalar except
//!   that a `-0.0` input maps to `+0.0` (the scalar `f32::max` may keep the
//!   sign); conformance tests compare zeros sign-insensitively.
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256, __m256i, _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_loadu_si256,
    _mm256_maskload_ps, _mm256_maskstore_ps, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_storeu_ps,
};
use std::sync::OnceLock;

use crate::matmul::{PAR_THRESHOLD, RESIDENT_BUDGET};
use crate::ops::ELEMWISE_PAR_THRESHOLD;
use crate::parallel::{max_threads, par_chunks_mut, par_row_chunks_mut};

/// True when the running CPU supports AVX2 and FMA (cached after the first
/// call). Every safe wrapper in this module consults this before touching an
/// intrinsic; when it is false they delegate to the scalar kernels.
pub fn available() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// `MASK_TABLE[r]` enables the first `r` of 8 lanes (sign bit set) — the
/// mask operand `_mm256_maskload_ps`/`_mm256_maskstore_ps` use so tail
/// loads/stores touch exactly `len % 8` elements and never go out of bounds.
static MASK_TABLE: [[i32; 8]; 8] = {
    let mut table = [[0i32; 8]; 8];
    let mut r = 0;
    while r < 8 {
        let mut lane = 0;
        while lane < r {
            table[r][lane] = -1;
            lane += 1;
        }
        r += 1;
    }
    table
};

/// Load the lane mask for a tail of `rem` (1..=7) elements.
///
/// # Safety
/// Requires AVX2 — the safe wrappers check [`available`] first.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    debug_assert!(rem < 8);
    // SAFETY: `MASK_TABLE[rem]` is a 32-byte row and `loadu` has no
    // alignment requirement.
    unsafe { _mm256_loadu_si256(MASK_TABLE[rem].as_ptr().cast()) }
}

/// Horizontal sum of an 8-lane accumulator in the **fixed tree order**
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — part of the documented
/// reduction contract, pinned bitwise by the backend conformance tests.
///
/// # Safety
/// Requires AVX2 — the safe wrappers check [`available`] first.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum8(v: __m256) -> f32 {
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is a 32-byte buffer and `storeu` has no alignment
    // requirement.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) };
    ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
}

/// One 8-lane FMA dot product (see the module docs for the exact reduction
/// order).
///
/// # Safety
/// Requires AVX2+FMA; `a` and `b` must have equal lengths.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let chunks = len / 8;
    let rem = len % 8;
    // SAFETY: full-vector loads read lanes `8i..8i+8 <= len`; the tail uses
    // a masked load that touches only the first `rem` lanes past `8*chunks`.
    // AVX2+FMA execution is guaranteed by this fn's safety contract.
    unsafe {
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let av = _mm256_loadu_ps(a.as_ptr().add(i * 8));
            let bv = _mm256_loadu_ps(b.as_ptr().add(i * 8));
            acc = _mm256_fmadd_ps(av, bv, acc);
        }
        if rem > 0 {
            let mask = tail_mask(rem);
            let av = _mm256_maskload_ps(a.as_ptr().add(chunks * 8), mask);
            let bv = _mm256_maskload_ps(b.as_ptr().add(chunks * 8), mask);
            acc = _mm256_fmadd_ps(av, bv, acc);
        }
        hsum8(acc)
    }
}

/// Four dot products against a shared right operand, each on its own
/// accumulator chain — bit-identical per output to [`dot_avx2`], but the
/// shared operand is loaded once per 8 elements and the four independent
/// FMA chains hide the FMA latency (the main throughput win over scalar).
///
/// # Safety
/// Requires AVX2+FMA; all five slices must have equal lengths.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot4_avx2(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f32; 4] {
    let len = b.len();
    debug_assert!(a0.len() == len && a1.len() == len && a2.len() == len && a3.len() == len);
    let chunks = len / 8;
    let rem = len % 8;
    // SAFETY: same bounds argument as `dot_avx2`, applied to each of the
    // four equal-length left operands; AVX2+FMA guaranteed by the caller.
    unsafe {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        for i in 0..chunks {
            let bv = _mm256_loadu_ps(b.as_ptr().add(i * 8));
            c0 = _mm256_fmadd_ps(_mm256_loadu_ps(a0.as_ptr().add(i * 8)), bv, c0);
            c1 = _mm256_fmadd_ps(_mm256_loadu_ps(a1.as_ptr().add(i * 8)), bv, c1);
            c2 = _mm256_fmadd_ps(_mm256_loadu_ps(a2.as_ptr().add(i * 8)), bv, c2);
            c3 = _mm256_fmadd_ps(_mm256_loadu_ps(a3.as_ptr().add(i * 8)), bv, c3);
        }
        if rem > 0 {
            let mask = tail_mask(rem);
            let base = chunks * 8;
            let bv = _mm256_maskload_ps(b.as_ptr().add(base), mask);
            c0 = _mm256_fmadd_ps(_mm256_maskload_ps(a0.as_ptr().add(base), mask), bv, c0);
            c1 = _mm256_fmadd_ps(_mm256_maskload_ps(a1.as_ptr().add(base), mask), bv, c1);
            c2 = _mm256_fmadd_ps(_mm256_maskload_ps(a2.as_ptr().add(base), mask), bv, c2);
            c3 = _mm256_fmadd_ps(_mm256_maskload_ps(a3.as_ptr().add(base), mask), bv, c3);
        }
        [hsum8(c0), hsum8(c1), hsum8(c2), hsum8(c3)]
    }
}

/// `c_row[j] += s * b_row[j]` vectorised with *separate* multiply and add
/// (no FMA) — the exact operation sequence of the scalar ikj kernel, so
/// results stay bit-identical.
///
/// # Safety
/// Requires AVX2; `c_row` and `b_row` must have equal lengths.
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(c_row: &mut [f32], b_row: &[f32], s: f32) {
    debug_assert_eq!(c_row.len(), b_row.len());
    let len = c_row.len();
    let chunks = len / 8;
    let rem = len % 8;
    // SAFETY: full-vector accesses stay within `8*chunks <= len`; the tail
    // masked load/store touches only the first `rem` lanes past that. AVX2
    // execution is guaranteed by this fn's safety contract.
    unsafe {
        let sv = _mm256_set1_ps(s);
        for i in 0..chunks {
            let cp = c_row.as_mut_ptr().add(i * 8);
            let bv = _mm256_loadu_ps(b_row.as_ptr().add(i * 8));
            let cv = _mm256_loadu_ps(cp);
            _mm256_storeu_ps(cp, _mm256_add_ps(cv, _mm256_mul_ps(sv, bv)));
        }
        if rem > 0 {
            let mask = tail_mask(rem);
            let base = chunks * 8;
            let cp = c_row.as_mut_ptr().add(base);
            let bv = _mm256_maskload_ps(b_row.as_ptr().add(base), mask);
            let cv = _mm256_maskload_ps(cp, mask);
            _mm256_maskstore_ps(cp, mask, _mm256_add_ps(cv, _mm256_mul_ps(sv, bv)));
        }
    }
}

/// Serial ikj kernel over output rows `[row0, row0+rows)` — the AVX2 twin of
/// the scalar `matmul_rows`, bit-identical including the zero-row skip.
///
/// # Safety
/// Requires AVX2; slice dimensions must agree with `(row0, rows, k, n)`.
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    chunk.fill(0.0);
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let c_row = &mut chunk[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // same sparse-row skip as the scalar kernel
            }
            // SAFETY: AVX2 is guaranteed by this fn's safety contract;
            // `axpy_avx2` performs only in-bounds masked/unmasked accesses.
            unsafe { axpy_avx2(c_row, &b[p * n..(p + 1) * n], a_ip) };
        }
    }
}

/// `C = A·Bᵀ` over output rows `[row0, row0+rows)`, i-outer with the j loop
/// blocked by 4 so each `A` row is streamed once per 4 outputs. Every output
/// element is one [`dot_avx2`]-ordered reduction (plus `+ bias[j]` when
/// present).
///
/// # Safety
/// Requires AVX2+FMA; slice dimensions must agree with `(row0, rows, k, n)`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn bt_iouter_avx2(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    chunk: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let out_row = &mut chunk[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            // SAFETY: the four B rows and `a_row` all have length `k`;
            // AVX2+FMA guaranteed by this fn's safety contract. Operand
            // order is irrelevant to the bits (multiplication commutes).
            let d = unsafe {
                dot4_avx2(
                    &b[j * k..(j + 1) * k],
                    &b[(j + 1) * k..(j + 2) * k],
                    &b[(j + 2) * k..(j + 3) * k],
                    &b[(j + 3) * k..(j + 4) * k],
                    a_row,
                )
            };
            match bias {
                Some(bv) => {
                    out_row[j] = d[0] + bv[j];
                    out_row[j + 1] = d[1] + bv[j + 1];
                    out_row[j + 2] = d[2] + bv[j + 2];
                    out_row[j + 3] = d[3] + bv[j + 3];
                }
                None => out_row[j..j + 4].copy_from_slice(&d),
            }
            j += 4;
        }
        while j < n {
            // SAFETY: both operands have length `k`; AVX2+FMA guaranteed by
            // this fn's safety contract.
            let v = unsafe { dot_avx2(a_row, &b[j * k..(j + 1) * k]) };
            out_row[j] = match bias {
                Some(bv) => v + bv[j],
                None => v,
            };
            j += 1;
        }
    }
}

/// `C = A·Bᵀ` on the cache-resident j-outer schedule (one `B` row hot in L1
/// across the whole i sweep), with the i loop blocked by 4 independent FMA
/// chains. Bit-identical per output to [`bt_iouter_avx2`] — the schedule
/// only changes traversal order, never an output's reduction sequence.
///
/// # Safety
/// Requires AVX2+FMA; slice dimensions must agree with `(row0, rows, k, n)`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn bt_jouter_avx2(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    chunk: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        let bj = bias.map_or(0.0, |bv| bv[j]);
        let add_bias = bias.is_some();
        let mut i = 0;
        while i + 4 <= rows {
            let base = (row0 + i) * k;
            // SAFETY: the four A rows and `b_row` all have length `k`;
            // AVX2+FMA guaranteed by this fn's safety contract.
            let d = unsafe {
                dot4_avx2(
                    &a[base..base + k],
                    &a[base + k..base + 2 * k],
                    &a[base + 2 * k..base + 3 * k],
                    &a[base + 3 * k..base + 4 * k],
                    b_row,
                )
            };
            for (t, &v) in d.iter().enumerate() {
                chunk[(i + t) * n + j] = if add_bias { v + bj } else { v };
            }
            i += 4;
        }
        while i < rows {
            // SAFETY: both operands have length `k`; AVX2+FMA guaranteed by
            // this fn's safety contract.
            let v = unsafe { dot_avx2(&a[(row0 + i) * k..(row0 + i) * k + k], b_row) };
            chunk[i * n + j] = if add_bias { v + bj } else { v };
            i += 1;
        }
    }
}

/// `y = A·x` with the row loop blocked by 4 so the shared `x` operand is
/// loaded once per 4 outputs; each output is one [`dot_avx2`]-ordered
/// reduction.
///
/// # Safety
/// Requires AVX2+FMA; `a` is `(m × n)` row-major, `x` is `n`, `y` is `m`.
#[target_feature(enable = "avx2,fma")]
unsafe fn matvec_avx2(a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
    let mut i = 0;
    while i + 4 <= m {
        // SAFETY: the four A rows and `x` all have length `n`; AVX2+FMA
        // guaranteed by this fn's safety contract.
        let d = unsafe {
            dot4_avx2(
                &a[i * n..(i + 1) * n],
                &a[(i + 1) * n..(i + 2) * n],
                &a[(i + 2) * n..(i + 3) * n],
                &a[(i + 3) * n..(i + 4) * n],
                x,
            )
        };
        y[i..i + 4].copy_from_slice(&d);
        i += 4;
    }
    while i < m {
        // SAFETY: both operands have length `n`; AVX2+FMA guaranteed by
        // this fn's safety contract.
        y[i] = unsafe { dot_avx2(&a[i * n..(i + 1) * n], x) };
        i += 1;
    }
}

/// `out[i] = max(input[i], 0)` 8 lanes at a time.
///
/// # Safety
/// Requires AVX2; `input` and `out` must have equal lengths.
#[target_feature(enable = "avx2")]
unsafe fn relu_avx2(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    let len = input.len();
    let chunks = len / 8;
    let rem = len % 8;
    // SAFETY: full-vector accesses stay within `8*chunks <= len`; the tail
    // masked load/store touches only the first `rem` lanes past that. AVX2
    // execution is guaranteed by this fn's safety contract.
    unsafe {
        let zero = _mm256_setzero_ps();
        for i in 0..chunks {
            let v = _mm256_loadu_ps(input.as_ptr().add(i * 8));
            _mm256_storeu_ps(out.as_mut_ptr().add(i * 8), _mm256_max_ps(v, zero));
        }
        if rem > 0 {
            let mask = tail_mask(rem);
            let base = chunks * 8;
            let v = _mm256_maskload_ps(input.as_ptr().add(base), mask);
            _mm256_maskstore_ps(out.as_mut_ptr().add(base), mask, _mm256_max_ps(v, zero));
        }
    }
}

// --------------------------------------------------------------------------
// Safe wrappers: feature-gate, scalar fallback, thread splitting. These are
// what `SimdBackend` dispatches to; none of them allocate.
// --------------------------------------------------------------------------

/// FMA dot product of two equal-length slices (see the module docs for the
/// exact reduction order). Falls back to the scalar [`crate::matmul::dot`]
/// when AVX2/FMA is unavailable.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if !available() {
        return crate::matmul::dot(a, b);
    }
    // SAFETY: AVX2+FMA availability checked on the line above.
    unsafe { dot_avx2(a, b) }
}

/// `C = A · B`, written into the caller-owned `c` (fully overwritten) —
/// bit-identical to [`crate::matmul::matmul_into`] (separate multiply/add,
/// same zero-skip), 8 lanes wide, same row-parallel split.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if !available() {
        return crate::matmul::matmul_into(a, b, c, m, k, n);
    }
    let body = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        // SAFETY: AVX2 availability checked at function entry; the kernel
        // performs only in-bounds masked/unmasked accesses.
        unsafe { matmul_rows_avx2(a, b, chunk, row0, rows, k, n) };
    };
    if m * n >= PAR_THRESHOLD && max_threads() > 1 {
        par_row_chunks_mut(c, n, body);
    } else {
        body(0, c);
    }
}

/// `C = A · Bᵀ`, written into the caller-owned `c` (fully overwritten).
/// Each output element is one FMA [`dot`]; agrees with the scalar kernel to
/// the documented tolerance, not bitwise.
pub fn matmul_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if !available() {
        return crate::matmul::matmul_bt_into(a, b, c, m, k, n);
    }
    let body = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        // SAFETY: AVX2+FMA availability checked at function entry.
        unsafe { bt_iouter_avx2(a, b, None, chunk, row0, rows, k, n) };
    };
    if m * n >= PAR_THRESHOLD && max_threads() > 1 {
        par_row_chunks_mut(c, n, body);
    } else {
        body(0, c);
    }
}

/// `C = A · Bᵀ` with an optionally fused bias row-broadcast, written into
/// the caller-owned `c` (fully overwritten) — the planned dense-layer
/// kernel, on the same resident-budget schedule heuristic as the scalar
/// [`crate::matmul::matmul_bt_bias_into`]. Both schedules produce the same
/// bits here (every output is one FMA [`dot`] + bias add).
pub fn matmul_bt_bias_into(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if !available() {
        return crate::matmul::matmul_bt_bias_into(a, b, bias, c, m, k, n);
    }
    let body = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        if rows * k <= RESIDENT_BUDGET && rows * k < n * k {
            // SAFETY: AVX2+FMA availability checked at function entry.
            unsafe { bt_jouter_avx2(a, b, bias, chunk, row0, rows, k, n) };
        } else {
            // SAFETY: AVX2+FMA availability checked at function entry.
            unsafe { bt_iouter_avx2(a, b, bias, chunk, row0, rows, k, n) };
        }
    };
    if m * n >= PAR_THRESHOLD && max_threads() > 1 {
        par_row_chunks_mut(c, n, body);
    } else {
        body(0, c);
    }
}

/// `C = Aᵀ · B`, written into the caller-owned `c` (fully overwritten) —
/// bit-identical to [`crate::matmul::matmul_at_into`] (separate
/// multiply/add rank-1 sweeps, same zero-skip), 8 lanes wide.
pub fn matmul_at_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if !available() {
        return crate::matmul::matmul_at_into(a, b, c, m, k, n);
    }
    c.fill(0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            // SAFETY: AVX2 availability checked at function entry; the
            // kernel performs only in-bounds masked/unmasked accesses.
            unsafe { axpy_avx2(&mut c[i * n..(i + 1) * n], b_row, a_v) };
        }
    }
}

/// `y = A·x`, written into the caller-owned `y` (fully overwritten). Each
/// output is one FMA [`dot`], so it agrees with [`matmul_bt_into`] bitwise
/// and with the scalar kernel to the documented tolerance.
pub fn matvec_into(a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    if !available() {
        return crate::matmul::matvec_into(a, x, y, m, n);
    }
    // SAFETY: AVX2+FMA availability checked on the line above.
    unsafe { matvec_avx2(a, x, y, m, n) };
}

/// `out = max(input, 0)` elementwise, written into the caller-owned `out`
/// (same thread-splitting policy as the scalar elementwise kernels;
/// bit-identical except `-0.0` inputs map to `+0.0`).
pub fn relu_into(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    if !available() {
        return crate::ops::relu_into(input, out);
    }
    if input.len() >= ELEMWISE_PAR_THRESHOLD && max_threads() > 1 {
        par_chunks_mut(out, 4096, |start, chunk| {
            // SAFETY: AVX2 availability checked at function entry; the
            // kernel performs only in-bounds masked/unmasked accesses.
            unsafe { relu_avx2(&input[start..start + chunk.len()], chunk) };
        });
    } else {
        // SAFETY: AVX2 availability checked at function entry.
        unsafe { relu_avx2(input, out) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32) * 0.37 - 1.0) * scale)
            .collect()
    }

    /// Safe scalar model of the SIMD dot contract: 8 `mul_add` lanes, the
    /// masked-tail `mul_add(0, 0, lane)` step, and the fixed combine tree.
    fn model_dot(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            lanes[i % 8] = x.mul_add(y, lanes[i % 8]);
        }
        if !a.len().is_multiple_of(8) {
            for lane in lanes.iter_mut() {
                *lane = 0.0f32.mul_add(0.0, *lane);
            }
        }
        ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
    }

    #[test]
    fn dot_matches_documented_reduction_order_bitwise() {
        if !available() {
            return;
        }
        for len in [0, 1, 5, 7, 8, 9, 15, 16, 17, 64, 100, 783, 784] {
            let a = seq(len, 1.3);
            let b = seq(len, -0.7);
            assert_eq!(
                dot(&a, &b).to_bits(),
                model_dot(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn matmul_is_bit_identical_to_scalar() {
        if !available() {
            return;
        }
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 13, 9), (4, 8, 16)] {
            let a = seq(m * k, 0.9);
            let b = seq(k * n, 1.1);
            let mut simd_c = vec![0.0; m * n];
            let mut scalar_c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut simd_c, m, k, n);
            crate::matmul::matmul_into(&a, &b, &mut scalar_c, m, k, n);
            assert_eq!(simd_c, scalar_c, "({m},{k},{n})");
        }
    }
}
