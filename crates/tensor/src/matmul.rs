//! Cache-blocked matrix multiplication kernels.
//!
//! Dense layers and im2col-lowered convolutions reduce the entire training
//! stack to these kernels, so they carry nearly all of the workspace's FLOPs.
//! The implementation follows the classic ikj loop order (B's row reused
//! across the inner loop, unit-stride writes into C), with the M dimension
//! parallelised across scoped threads when the problem is large enough to
//! amortise thread spawn.

use crate::parallel::par_row_chunks_mut;
use crate::Tensor;

/// Minimum number of output elements before the parallel path engages.
/// Below this, thread-spawn overhead dominates; the constant was chosen so
/// LeNet-scale per-image inference always stays on the single-threaded path
/// while batched training matrices go parallel. Shared with the SIMD backend
/// so both backends split work identically.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;

/// Streamed-operand budget in f32s (512 KiB): in [`matmul_bt_bias_into`]'s
/// j-outer schedule the A slice must stay resident in a typical ≥ 512 KiB L2
/// across the j sweep to win. Shared with the SIMD backend so both backends
/// make the same schedule choice on every shape.
pub(crate) const RESIDENT_BUDGET: usize = 1 << 17;

/// `C = A · B` for row-major `A (m×k)` and `B (k×n)`, writing into `c`.
///
/// `c` must have length `m·n` and is fully overwritten.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "A dimensions mismatch");
    debug_assert_eq!(b.len(), k * n, "B dimensions mismatch");
    debug_assert_eq!(c.len(), m * n, "C dimensions mismatch");
    if m * n >= PAR_THRESHOLD && crate::parallel::max_threads() > 1 {
        // Row-aligned split: a worker never sees a partial output row.
        par_row_chunks_mut(c, n, |row0, chunk| {
            let rows = chunk.len() / n;
            matmul_rows(a, b, chunk, row0, rows, k, n);
        });
    } else {
        matmul_rows(a, b, c, 0, m, k, n);
    }
}

/// Serial ikj kernel over rows `[row0, row0+rows)` of the output.
#[inline]
fn matmul_rows(a: &[f32], b: &[f32], c: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    c.fill(0.0);
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // sparse rows appear after ReLU; skipping is a cheap win
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `C = A · Bᵀ` for row-major `A (m×k)` and `B (n×k)`, writing into `c`.
///
/// Both operands are traversed along contiguous rows, so no transpose copy is
/// needed. This is the natural kernel for the dense-layer forward pass with
/// weights stored as `(out, in)`.
pub fn matmul_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let body = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
            for j in 0..n {
                let b_row = &b[j * k..j * k + k];
                chunk[i * n + j] = dot(a_row, b_row);
            }
        }
    };
    if m * n >= PAR_THRESHOLD && crate::parallel::max_threads() > 1 {
        par_row_chunks_mut(c, n, |row0, chunk| body(row0, chunk));
    } else {
        body(0, c);
    }
}

/// `C = A · Bᵀ` on a **B-row-resident schedule**, with an optional bias
/// row-broadcast fused into the epilogue — the planned dense-layer kernel.
///
/// Every output element is the same [`dot`] call as [`matmul_bt_into`]
/// (plus `+ bias[j]`, the exact addition a separate broadcast pass would
/// perform), so results are bit-identical to the allocating layer path —
/// but the loop nest runs `j` outer / `i` inner, keeping one row of `B` hot
/// in L1 while streaming the (smaller) `A` operand.
///
/// Profitable exactly on the planned-inference shape: a moderate batch `A`
/// (m×k) that fits in L2 against a wide weight matrix `B` (n×k) that does
/// not — there the classic i-outer order re-streams all of `B` from DRAM `m`
/// times, while this order streams the cache-resident `A` instead (measured
/// ≈ 1.6× on a 128×784 · 784×784ᵀ product). For shapes where `A` is not the
/// smaller operand it falls back to the i-outer order, and the parallel path
/// splits output rows first (each worker's `A` slice is smaller still, so
/// the j-outer choice gets *more* profitable under threading).
pub fn matmul_bt_bias_into(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if let Some(bias) = bias {
        debug_assert_eq!(bias.len(), n);
    }
    let body = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / n;
        if rows * k <= RESIDENT_BUDGET && rows * k < n * k {
            for j in 0..n {
                let b_row = &b[j * k..j * k + k];
                let bj = bias.map_or(0.0, |bv| bv[j]);
                for i in 0..rows {
                    let v = dot(&a[(row0 + i) * k..(row0 + i) * k + k], b_row);
                    chunk[i * n + j] = if bias.is_some() { v + bj } else { v };
                }
            }
        } else {
            for i in 0..rows {
                let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
                match bias {
                    Some(bv) => {
                        for j in 0..n {
                            chunk[i * n + j] = dot(a_row, &b[j * k..j * k + k]) + bv[j];
                        }
                    }
                    None => {
                        for j in 0..n {
                            chunk[i * n + j] = dot(a_row, &b[j * k..j * k + k]);
                        }
                    }
                }
            }
        }
    };
    if m * n >= PAR_THRESHOLD && crate::parallel::max_threads() > 1 {
        par_row_chunks_mut(c, n, |row0, chunk| body(row0, chunk));
    } else {
        body(0, c);
    }
}

/// `C = Aᵀ · B` for row-major `A (k×m)` and `B (k×n)`.
///
/// The caller-owned output `c` must have length `m·n` and is fully
/// overwritten; no scratch is needed. Used by dense-layer weight gradients
/// (`dW = Xᵀ · dY`). Implemented as an accumulating rank-1 update sweep,
/// which keeps both operand accesses unit-stride.
pub fn matmul_at_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_v * b_v;
            }
        }
    }
}

/// Dot product of two equal-length slices.
///
/// Written with a 4-lane manual unroll that LLVM reliably turns into SIMD.
///
/// # Reduction-order contract
///
/// The accumulation order is part of this function's API — conformance
/// tolerances between backends are derived from it, and
/// `crates/tensor/tests/backend_conformance.rs` pins it **bitwise**:
///
/// 1. Lane `l ∈ {0,1,2,3}` accumulates elements `l, l+4, l+8, …` of the
///    first `4⌊len/4⌋` elements, each as a *separate* `f32` multiply then
///    add (`acc[l] += a[i]*b[i]` — two roundings, no FMA).
/// 2. Lanes combine left-to-right: `((acc0 + acc1) + acc2) + acc3`.
/// 3. Tail elements (`len % 4`) are multiplied and added sequentially, in
///    index order, onto that sum.
///
/// The SIMD backend's `dot` uses 8 FMA lanes and a different combine tree —
/// see `tensor::backend::simd` — which is why dot-family kernels agree
/// across backends only to a documented tolerance, not bitwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        acc[0] += ai[0] * bi[0];
        acc[1] += ai[1] * bi[1];
        acc[2] += ai[2] * bi[2];
        acc[3] += ai[3] * bi[3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Matrix-vector product `y = A·x` for row-major `A (m×n)`.
///
/// The caller-owned output `y` must have length `m` and is fully
/// overwritten; no scratch is needed. Each element is one [`dot`] call, so
/// results are bit-identical to [`matmul_bt_into`] with a single B row.
pub fn matvec_into(a: &[f32], x: &[f32], y: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    for (i, y_v) in y.iter_mut().enumerate() {
        *y_v = dot(&a[i * n..(i + 1) * n], x);
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    /// Panics unless `self` is `(m×k)` and `rhs` is `(k×n)`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner dimensions must agree");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.data(), rhs.data(), out.data_mut(), m, k, n);
        out
    }

    /// `self · rhsᵀ` where `rhs` is `(n×k)`.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2);
        assert_eq!(rhs.rank(), 2);
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_bt inner dimensions must agree");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_bt_into(self.data(), rhs.data(), out.data_mut(), m, k, n);
        out
    }

    /// `selfᵀ · rhs` where `self` is `(k×m)` and `rhs` is `(k×n)`.
    pub fn matmul_at(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2);
        assert_eq!(rhs.rank(), 2);
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_at inner dimensions must agree");
        let mut out = Tensor::zeros(&[m, n]);
        matmul_at_into(self.data(), rhs.data(), out.data_mut(), m, k, n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop used as the test oracle.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Tiny xorshift so the test does not depend on `rand` internals.
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 1000) as f32 / 500.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_on_odd_sizes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 13, 9), (64, 32, 48)] {
            let a = rand_vec(m * k, 42);
            let b = rand_vec(k * n, 7);
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let expect = naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "mismatch {x} vs {y} at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // 128×128 crosses PAR_THRESHOLD so the scoped-thread path runs.
        let (m, k, n) = (128, 40, 128);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 11);
        let mut c = vec![0.0; m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec(rand_vec(6 * 4, 5), &[6, 4]);
        let b = Tensor::from_vec(rand_vec(3 * 4, 9), &[3, 4]);
        let via_bt = a.matmul_bt(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(via_bt.allclose(&via_t, 1e-4));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_vec(rand_vec(4 * 6, 5), &[4, 6]);
        let b = Tensor::from_vec(rand_vec(4 * 3, 9), &[4, 3]);
        let via_at = a.matmul_at(&b);
        let via_t = a.transpose().matmul(&b);
        assert!(via_at.allclose(&via_t, 1e-4));
    }

    #[test]
    fn bt_bias_resident_branch_is_bit_identical_to_bt() {
        // rows·k well under the resident budget → j-outer schedule.
        let (m, k, n) = (12, 40, 96);
        let a = rand_vec(m * k, 21);
        let b = rand_vec(n * k, 22);
        let bias = rand_vec(n, 23);
        let mut base = vec![0.0; m * n];
        matmul_bt_into(&a, &b, &mut base, m, k, n);

        let mut no_bias = vec![0.0; m * n];
        matmul_bt_bias_into(&a, &b, None, &mut no_bias, m, k, n);
        assert_eq!(base, no_bias, "resident schedule must be bit-identical");

        let mut biased = vec![0.0; m * n];
        matmul_bt_bias_into(&a, &b, Some(&bias), &mut biased, m, k, n);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(biased[i * n + j], base[i * n + j] + bias[j]);
            }
        }
    }

    #[test]
    fn bt_bias_fallback_branch_is_bit_identical_to_bt() {
        // rows·k = 140_000 exceeds the 2^17 resident budget → the i-outer
        // fallback runs (the branch carrying large-batch planned inference).
        // m·n stays under PAR_THRESHOLD so the shape is a single chunk and
        // the fallback is exercised at any thread count.
        let (m, k, n) = (200, 700, 16);
        let a = rand_vec(m * k, 31);
        let b = rand_vec(n * k, 32);
        let bias = rand_vec(n, 33);
        let mut base = vec![0.0; m * n];
        matmul_bt_into(&a, &b, &mut base, m, k, n);

        let mut no_bias = vec![0.0; m * n];
        matmul_bt_bias_into(&a, &b, None, &mut no_bias, m, k, n);
        assert_eq!(base, no_bias, "fallback schedule must be bit-identical");

        let mut biased = vec![0.0; m * n];
        matmul_bt_bias_into(&a, &b, Some(&bias), &mut biased, m, k, n);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(biased[i * n + j], base[i * n + j] + bias[j]);
            }
        }
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..10 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b = vec![2.0; len];
            let expect: f32 = a.iter().sum::<f32>() * 2.0;
            assert_eq!(dot(&a, &b), expect);
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = rand_vec(5 * 7, 21);
        let x = rand_vec(7, 33);
        let mut y = vec![0.0; 5];
        matvec_into(&a, &x, &mut y, 5, 7);
        let expect = naive(&a, &x, 5, 7, 1);
        for (u, v) in y.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zero_rows_in_a_are_skipped_correctly() {
        // Exercises the `a_ip == 0.0` fast path.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[0.0, 0.0, 13.0, 16.0]);
    }
}
