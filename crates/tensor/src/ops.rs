//! Elementwise operations, reductions, and numeric utilities.
//!
//! All binary elementwise kernels require exact shape agreement (checked with
//! `debug_assert!`); the one sanctioned broadcast in this workspace —
//! adding a bias row-vector to every row of a matrix — has its own dedicated
//! kernel ([`Tensor::add_row_broadcast`]), which keeps the hot loops free of
//! general broadcasting machinery.

use crate::Tensor;

impl Tensor {
    // ------------------------------------------------------------ unary map

    /// Apply `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Apply `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    // -------------------------------------------------------- binary zips

    /// Elementwise sum. Shapes must match exactly.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise difference. Shapes must match exactly.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }

    /// Elementwise quotient. Shapes must match exactly.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a / b)
    }

    /// Generic elementwise combination of two same-shape tensors.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        debug_assert_eq!(self.dims(), rhs.dims(), "zip: shape mismatch");
        let data = self
            .data()
            .iter()
            .zip(rhs.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// In-place `self += rhs`. Shapes must match exactly.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        debug_assert_eq!(self.dims(), rhs.dims(), "add_assign: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a += b;
        }
    }

    /// In-place `self -= rhs`. Shapes must match exactly.
    pub fn sub_assign(&mut self, rhs: &Tensor) {
        debug_assert_eq!(self.dims(), rhs.dims(), "sub_assign: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a -= b;
        }
    }

    /// In-place fused multiply-add: `self += alpha * rhs`.
    ///
    /// This is the workhorse of every optimizer step; keeping it a single
    /// kernel lets LLVM vectorise the loop.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        debug_assert_eq!(self.dims(), rhs.dims(), "axpy: shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a += alpha * b;
        }
    }

    // ------------------------------------------------------- scalar ops

    /// Multiply every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiply every element by a scalar in place.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|v| v * s);
    }

    /// Add a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Set every element to zero without reallocating.
    pub fn fill(&mut self, v: f32) {
        for x in self.data_mut() {
            *x = v;
        }
    }

    // ---------------------------------------------------------- broadcast

    /// Add a 1-D bias of length `cols` to every row of a rank-2 tensor.
    ///
    /// # Panics
    /// Debug-panics unless `self` is rank 2 and `bias.len() == cols`.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) {
        debug_assert_eq!(self.rank(), 2, "add_row_broadcast requires rank-2 tensor");
        let cols = self.dims()[1];
        debug_assert_eq!(bias.len(), cols, "bias length must equal column count");
        let b = bias.data();
        for row in self.data_mut().chunks_exact_mut(cols) {
            for (x, &bv) in row.iter_mut().zip(b) {
                *x += bv;
            }
        }
    }

    // --------------------------------------------------------- reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Pairwise-ish accumulation in f64 keeps the reduction stable for the
        // million-element activation maps seen during batch training.
        self.data().iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence; 0 for empty tensors).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut bestv = f32::NEG_INFINITY;
        for (i, &v) in self.data().iter().enumerate() {
            if v > bestv {
                bestv = v;
                best = i;
            }
        }
        best
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data().iter().map(|v| v.abs() as f64).sum::<f64>() as f32
    }

    /// Euclidean (L2) norm.
    pub fn l2_norm(&self) -> f32 {
        (self
            .data()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Sum along rows of a rank-2 tensor, producing a 1-D tensor of length
    /// `cols`. This is the reduction used for bias gradients.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows requires rank-2 tensor");
        let cols = self.dims()[1];
        let mut out = vec![0.0f32; cols];
        for row in self.data().chunks_exact(cols) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Per-row argmax of a rank-2 tensor (class prediction per sample).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires rank-2 tensor");
        let cols = self.dims()[1];
        self.data()
            .chunks_exact(cols)
            .map(|row| {
                let mut best = 0;
                let mut bestv = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > bestv {
                        bestv = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    // --------------------------------------------------------- comparisons

    /// Largest absolute elementwise difference between two same-shape tensors.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> f32 {
        debug_assert_eq!(self.dims(), rhs.dims());
        self.data()
            .iter()
            .zip(rhs.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when all elements are within `tol` of `rhs`.
    pub fn allclose(&self, rhs: &Tensor, tol: f32) -> bool {
        self.dims() == rhs.dims() && self.max_abs_diff(rhs) <= tol
    }

    /// True when every element is finite (no NaN/±∞). Used by training-loop
    /// invariant checks and failure-injection tests.
    pub fn all_finite(&self) -> bool {
        self.data().iter().all(|v| v.is_finite())
    }

    /// Clamp every element into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        self.map_in_place(|v| v.clamp(lo, hi));
    }
}

/// Minimum element count before elementwise `_into` kernels go parallel.
/// Elementwise maps are memory-bound; below this, thread-spawn overhead
/// dominates any bandwidth win. Shared with the SIMD backend so both
/// backends split work identically.
pub(crate) const ELEMWISE_PAR_THRESHOLD: usize = 1 << 15;

/// Apply `f` elementwise from `input` into `out` (same length), splitting
/// across threads for large buffers.
///
/// Because `f` is applied independently per element, the result is
/// bit-identical regardless of thread count — the property the planned
/// forward path's conformance tests rely on.
pub fn unary_map_into(input: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(input.len(), out.len(), "unary_map_into length mismatch");
    if input.len() >= ELEMWISE_PAR_THRESHOLD && crate::parallel::max_threads() > 1 {
        crate::parallel::par_chunks_mut(out, 4096, |start, chunk| {
            let src = &input[start..start + chunk.len()];
            for (o, &x) in chunk.iter_mut().zip(src) {
                *o = f(x);
            }
        });
    } else {
        for (o, &x) in out.iter_mut().zip(input) {
            *o = f(x);
        }
    }
}

/// `out = max(input, 0)` elementwise.
pub fn relu_into(input: &[f32], out: &mut [f32]) {
    unary_map_into(input, out, |v| v.max(0.0));
}

/// `out = 1/(1+e^(−input))` elementwise.
pub fn sigmoid_into(input: &[f32], out: &mut [f32]) {
    unary_map_into(input, out, |v| 1.0 / (1.0 + (-v).exp()));
}

/// `out = tanh(input)` elementwise.
pub fn tanh_into(input: &[f32], out: &mut [f32]) {
    unary_map_into(input, out, |v| v.tanh());
}

/// Row-wise [`softmax_slice`] over a `(rows, cols)` matrix stored flat in
/// `input`, written into `out`. Rows are distributed across threads with
/// row-aligned chunks; each row's arithmetic is unchanged, so the result is
/// bit-identical to a serial loop.
pub fn softmax_rows_into(input: &[f32], out: &mut [f32], cols: usize) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert_eq!(input.len() % cols.max(1), 0);
    if input.len() >= ELEMWISE_PAR_THRESHOLD && crate::parallel::max_threads() > 1 {
        crate::parallel::par_row_chunks_mut(out, cols, |row0, chunk| {
            for (i, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = row0 + i;
                softmax_slice(&input[r * cols..(r + 1) * cols], orow);
            }
        });
    } else {
        for (orow, irow) in out.chunks_exact_mut(cols).zip(input.chunks_exact(cols)) {
            softmax_slice(irow, orow);
        }
    }
}

/// Numerically stable softmax over a slice, written into `out`.
///
/// Exposed as a free function because both the `nn` activation layer and the
/// entropy-based exit criterion in `models` need it on bare slices without
/// tensor wrappers.
pub fn softmax_slice(input: &[f32], out: &mut [f32]) {
    debug_assert_eq!(input.len(), out.len());
    let max = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut denom = 0.0f32;
    for (o, &x) in out.iter_mut().zip(input) {
        let e = (x - max).exp();
        *o = e;
        denom += e;
    }
    let inv = 1.0 / denom;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Shannon entropy (nats) of a probability vector.
///
/// This is BranchyNet's exit-confidence measure: low entropy ⇒ confident ⇒
/// take the early exit. Zero-probability entries contribute zero.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -(p as f64) * (p as f64).ln())
        .sum::<f64>() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn map_and_map_in_place() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, -4.0]);
        let mut b = a.clone();
        b.map_in_place(f32::abs);
        assert_eq!(b.data(), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic_elementwise() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, 5.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(b.div(&a).data(), &[3.0, 2.5]);
    }

    #[test]
    fn in_place_accumulation() {
        let mut a = t(&[1.0, 1.0]);
        a.add_assign(&t(&[2.0, 3.0]));
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.sub_assign(&t(&[1.0, 1.0]));
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.axpy(2.0, &t(&[1.0, 1.0]));
        assert_eq!(a.data(), &[4.0, 5.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, 2.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0]);
        let mut b = a.clone();
        b.scale_in_place(0.5);
        assert_eq!(b.data(), &[0.5, 1.0]);
        b.fill(9.0);
        assert_eq!(b.data(), &[9.0, 9.0]);
    }

    #[test]
    fn row_broadcast_bias() {
        let mut m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        m.add_row_broadcast(&t(&[10.0, 20.0]));
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.l1_norm(), 6.0);
        assert!((a.l2_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_tensor_reductions() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), f32::NEG_INFINITY);
        assert_eq!(e.argmax(), 0);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(m.sum_rows().data(), &[9.0, 12.0]);
    }

    #[test]
    fn argmax_rows_per_sample() {
        let m = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn closeness_helpers() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.001]);
        assert!(a.allclose(&b, 0.01));
        assert!(!a.allclose(&b, 0.0001));
        assert!((a.max_abs_diff(&b) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn finiteness_and_clamp() {
        let mut a = t(&[f32::NAN, 1.0]);
        assert!(!a.all_finite());
        a.fill(5.0);
        assert!(a.all_finite());
        a.clamp_in_place(0.0, 2.0);
        assert_eq!(a.data(), &[2.0, 2.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = [1000.0, 1001.0, 1002.0]; // would overflow a naive exp
        let mut out = [0.0; 3];
        softmax_slice(&x, &mut out);
        let s: f32 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(out[2] > out[1] && out[1] > out[0]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_uniform_input() {
        let x = [0.5; 4];
        let mut out = [0.0; 4];
        softmax_slice(&x, &mut out);
        for v in out {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn entropy_extremes() {
        // Deterministic distribution: zero entropy.
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        // Uniform over 4: ln(4).
        let h = entropy(&[0.25; 4]);
        assert!((h - 4.0f32.ln()).abs() < 1e-5);
        // Peaked beats uniform.
        assert!(entropy(&[0.9, 0.05, 0.05]) < entropy(&[1.0 / 3.0; 3]));
    }
}
