//! Flat-index request storage for the million-event engine.
//!
//! The first engine moved owned data through its hot loop: every
//! [`Dispatch::Serve`](crate::engine::Dispatch::Serve) allocated a fresh
//! `Vec<Request>` (even for singleton FIFO service), every busy server held
//! a boxed batch, and every queue discipline lived behind `Box<dyn
//! Scheduler>` virtual dispatch. This module replaces all of that with flat
//! `u32` indices into one slab:
//!
//! * [`RequestArena`] — the single `Vec<Request>` slab, plus one shared
//!   `next` link array that turns any subset of the slab into intrusive
//!   singly-linked lists. Requests are addressed by `u32` id (their slab
//!   index); nothing is ever cloned or re-boxed after construction.
//! * [`IndexQueue`] — a waiting queue as `(head, tail, len)` indices into
//!   the arena. Push/pop/batch-detach are pointer swizzles on the shared
//!   link array: allocation-free, and a freed request's link slot is reused
//!   the next time any queue touches that id. One `IndexQueue` per server
//!   group acts as the steal pool — every idle server pulls its next chain
//!   from the shared queue regardless of which server went idle, so work
//!   stealing falls out of the representation instead of needing a
//!   rebalancing pass.
//! * [`Chain`] — a detached run of queued requests, the allocation-free
//!   replacement for `Dispatch::Serve(Vec<Request>)`: two `u32`s (head id +
//!   count) that a server carries as its in-flight batch.
//! * [`Discipline`] — the `Copy` monomorphized form of
//!   [`SchedulerKind`], resolved once before
//!   the loop (mirroring how `ForwardPlan` resolves its `ComputeBackend`
//!   once rather than branching per call). Its `dispatch` reproduces the
//!   boxed schedulers' decisions exactly — same selection, same tie-breaks,
//!   same batch deadlines — which is what keeps the rebuilt engines
//!   bit-identical to the `Box<dyn Scheduler>` originals.
//!
//! Everything here except the constructors is steady-state allocation-free;
//! the `hot-path-alloc` lint rule and `tests/alloc_guard.rs` both enforce
//! that.

use crate::engine::{Request, SchedulerKind};

/// The null index: no request / end of chain. `u32::MAX` leaves room for
/// slabs of up to ~4.29 billion requests, far past the 10⁶–10⁷ sweeps this
/// engine targets.
pub const NIL: u32 = u32::MAX;

/// The request slab plus the shared intrusive link array. See the
/// [module docs](self) for the representation.
#[derive(Debug)]
pub struct RequestArena {
    slab: Vec<Request>,
    next: Vec<u32>,
}

impl RequestArena {
    /// Take ownership of a pre-generated workload as the slab. Cold path:
    /// allocates the link array once; every later operation is index
    /// arithmetic on this storage.
    ///
    /// # Panics
    /// Panics if the workload has [`NIL`] or more requests (ids must fit a
    /// `u32` with `NIL` reserved).
    pub fn new(slab: Vec<Request>) -> RequestArena {
        assert!(
            slab.len() < NIL as usize,
            "arena capped at u32::MAX - 1 requests"
        );
        let next = vec![NIL; slab.len()];
        RequestArena { slab, next }
    }

    /// An arena of `n` placeholder slots to be filled in later with
    /// [`set`](RequestArena::set) — what the fleet core uses, where a
    /// request's tier-local arrival time and service draw are only known
    /// when it reaches its tier. Cold path: allocates both arrays once.
    ///
    /// # Panics
    /// Panics if `n` is [`NIL`] or more.
    pub fn with_capacity(n: usize) -> RequestArena {
        assert!(n < NIL as usize, "arena capped at u32::MAX - 1 requests");
        let slab = vec![
            Request {
                id: 0,
                arrival_ms: 0.0,
                service_ms: 0.0,
            };
            n
        ];
        let next = vec![NIL; n];
        RequestArena { slab, next }
    }

    /// Number of slots in the slab.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Is the slab empty?
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Copy out the request at `id`.
    #[inline]
    pub fn get(&self, id: u32) -> Request {
        self.slab[id as usize]
    }

    /// Overwrite the slot at `id` (fleet tier admission).
    #[inline]
    pub fn set(&mut self, id: u32, req: Request) {
        self.slab[id as usize] = req;
    }

    /// The id chained after `id` ([`NIL`] at a chain end).
    #[inline]
    pub fn next_of(&self, id: u32) -> u32 {
        self.next[id as usize]
    }

    /// Relink `id` to point at `next`.
    #[inline]
    pub fn set_next(&mut self, id: u32, next: u32) {
        self.next[id as usize] = next;
    }

    /// The whole slab in id order (report assembly).
    pub fn requests(&self) -> &[Request] {
        &self.slab
    }
}

/// A detached run of `count` requests starting at `head`, linked through the
/// arena — the allocation-free batch representation a server carries while
/// the batch is in flight. `Copy`: two `u32`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    /// First request id ([`NIL`] only when `count == 0`).
    pub head: u32,
    /// Number of requests in the chain.
    pub count: u32,
}

impl Chain {
    /// The empty chain (an idle server's in-flight slot).
    pub const EMPTY: Chain = Chain {
        head: NIL,
        count: 0,
    };

    /// A single-request chain.
    pub fn solo(id: u32) -> Chain {
        Chain { head: id, count: 1 }
    }

    /// Walk the chain's ids in queue order. Allocation-free.
    pub fn iter<'a>(&self, arena: &'a RequestArena) -> ChainIter<'a> {
        ChainIter {
            arena,
            cur: self.head,
            remaining: self.count,
        }
    }
}

/// Iterator over a [`Chain`]'s request ids, in queue order.
#[derive(Debug)]
pub struct ChainIter<'a> {
    arena: &'a RequestArena,
    cur: u32,
    remaining: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        let id = self.cur;
        self.cur = self.arena.next_of(id);
        self.remaining -= 1;
        Some(id)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for ChainIter<'_> {}

/// A FIFO waiting queue as head/tail indices into the arena's shared link
/// array. Every mutation is a pointer swizzle — allocation-free — and
/// detaching the front as a [`Chain`] is O(k) link walks with no copying.
#[derive(Debug, Clone, Copy)]
pub struct IndexQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl IndexQueue {
    /// An empty queue. Allocation-free (`Copy` struct of three `u32`s; the
    /// storage lives in the arena).
    pub fn new() -> IndexQueue {
        IndexQueue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Requests currently waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the queue empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The oldest queued id ([`NIL`] when empty).
    #[inline]
    pub fn front(&self) -> u32 {
        self.head
    }

    /// Forget the queue's contents (run-to-run reuse). Allocation-free: the
    /// arena's links are rewritten lazily by the next pushes.
    pub fn clear(&mut self) {
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Append `id` at the tail. Allocation-free link swizzle.
    pub fn push_back(&mut self, arena: &mut RequestArena, id: u32) {
        arena.set_next(id, NIL);
        if self.tail == NIL {
            self.head = id;
        } else {
            arena.set_next(self.tail, id);
        }
        self.tail = id;
        self.len += 1;
    }

    /// Detach the oldest `k` requests as a [`Chain`] (FIFO batch dispatch).
    /// Allocation-free: walks `k` links and cuts once.
    ///
    /// # Panics
    /// Panics (debug assertion) unless `1 ≤ k ≤ len`.
    pub fn take_front(&mut self, arena: &mut RequestArena, k: u32) -> Chain {
        debug_assert!(
            k >= 1 && k <= self.len,
            "take_front k={k} of len={}",
            self.len
        );
        let head = self.head;
        let mut last = head;
        for _ in 1..k {
            last = arena.next_of(last);
        }
        self.head = arena.next_of(last);
        arena.set_next(last, NIL);
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= k;
        Chain { head, count: k }
    }

    /// Unlink and return the queued id with the smallest
    /// `(service_ms, id)` — the shortest-expected-service discipline's
    /// selection, tie-broken by arrival order exactly like
    /// [`ShortestServiceScheduler`](crate::engine::ShortestServiceScheduler)
    /// (the key is unique per request, so a linear scan picks the same
    /// element regardless of queue order). Allocation-free.
    pub fn remove_min_service(&mut self, arena: &mut RequestArena) -> Option<u32> {
        if self.head == NIL {
            return None;
        }
        let mut best = self.head;
        let mut best_req = arena.get(best);
        let mut best_prev = NIL;
        let mut prev = self.head;
        let mut cur = arena.next_of(self.head);
        while cur != NIL {
            let req = arena.get(cur);
            if req
                .service_ms
                .total_cmp(&best_req.service_ms)
                .then(req.id.cmp(&best_req.id))
                .is_lt()
            {
                best = cur;
                best_req = req;
                best_prev = prev;
            }
            prev = cur;
            cur = arena.next_of(cur);
        }
        if best_prev == NIL {
            self.head = arena.next_of(best);
        } else {
            arena.set_next(best_prev, arena.next_of(best));
        }
        if self.tail == best {
            self.tail = best_prev;
        }
        arena.set_next(best, NIL);
        self.len -= 1;
        Some(best)
    }
}

impl Default for IndexQueue {
    fn default() -> Self {
        IndexQueue::new()
    }
}

/// What a [`Discipline`] tells an idle server to do — the index-based
/// mirror of [`Dispatch`](crate::engine::Dispatch), with the owned
/// `Vec<Request>` batch replaced by a detached [`Chain`]. `Copy`: no
/// allocation per service event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Run this detached chain as one batch.
    Serve(Chain),
    /// Something is queued but not ready: re-ask at this time.
    WaitUntil(f64),
    /// Queue empty.
    Idle,
}

/// The monomorphized queue discipline: [`SchedulerKind`] resolved once into
/// a `Copy` handle before the event loop, so the hot path branches on a
/// three-way enum instead of calling through `Box<dyn Scheduler>`. Each
/// variant reproduces its boxed counterpart's decisions exactly (selection,
/// tie-breaks, batch deadline arithmetic) — the conformance suites pin the
/// resulting reports bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discipline {
    /// First-in-first-out, one request per dispatch.
    Fifo,
    /// Smallest `(service_ms, id)` first.
    ShortestService,
    /// Accumulate up to `max_batch`, launch early when the oldest queued
    /// request has waited `max_wait_ms`.
    Batch {
        /// Largest batch one dispatch may fuse.
        max_batch: u32,
        /// Longest a partial batch may hold its oldest request, ms.
        max_wait_ms: f64,
    },
}

impl Discipline {
    /// Resolve a [`SchedulerKind`] into its monomorphized discipline,
    /// validating batch parameters with the same messages
    /// [`BatchScheduler::new`](crate::engine::BatchScheduler::new) asserts
    /// (returned as `Err` here so sweep drivers can skip a bad cell instead
    /// of unwinding). Cold path: runs once per simulation.
    pub fn from_kind(kind: SchedulerKind) -> Result<Discipline, String> {
        match kind {
            SchedulerKind::Fifo => Ok(Discipline::Fifo),
            SchedulerKind::ShortestService => Ok(Discipline::ShortestService),
            SchedulerKind::Batch {
                max_batch,
                max_wait_ms,
            } => {
                if max_batch < 1 {
                    return Err("batch size must be at least 1".into());
                }
                if !(max_wait_ms >= 0.0 && max_wait_ms.is_finite()) {
                    return Err("max wait must be non-negative and finite".into());
                }
                Ok(Discipline::Batch {
                    max_batch: max_batch.min(NIL as usize) as u32,
                    max_wait_ms,
                })
            }
        }
    }

    /// Decide what a server idle at `now_ms` should run from `queue` —
    /// the allocation-free mirror of
    /// [`Scheduler::dispatch`](crate::engine::Scheduler::dispatch): a
    /// served batch is detached from the queue as a [`Chain`], never
    /// collected into a `Vec`.
    pub fn dispatch(
        &self,
        queue: &mut IndexQueue,
        arena: &mut RequestArena,
        now_ms: f64,
    ) -> Action {
        match *self {
            Discipline::Fifo => {
                if queue.is_empty() {
                    Action::Idle
                } else {
                    Action::Serve(queue.take_front(arena, 1))
                }
            }
            Discipline::ShortestService => match queue.remove_min_service(arena) {
                Some(id) => Action::Serve(Chain::solo(id)),
                None => Action::Idle,
            },
            Discipline::Batch {
                max_batch,
                max_wait_ms,
            } => {
                let front = queue.front();
                if front == NIL {
                    return Action::Idle;
                }
                let deadline = arena.get(front).arrival_ms + max_wait_ms;
                if queue.len >= max_batch || now_ms >= deadline {
                    let k = queue.len.min(max_batch);
                    Action::Serve(queue.take_front(arena, k))
                } else {
                    Action::WaitUntil(deadline)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Dispatch;

    fn req(id: usize, arrival_ms: f64, service_ms: f64) -> Request {
        Request {
            id,
            arrival_ms,
            service_ms,
        }
    }

    fn workload(n: usize) -> Vec<Request> {
        // Deliberate service-time ties (i % 5) to exercise the id tiebreak.
        (0..n)
            .map(|i| req(i, i as f64 * 0.5, 1.0 + (i % 5) as f64))
            .collect()
    }

    #[test]
    fn queue_is_fifo_and_reuses_link_slots() {
        let mut arena = RequestArena::new(workload(6));
        let mut q = IndexQueue::new();
        for id in 0..6u32 {
            q.push_back(&mut arena, id);
        }
        assert_eq!(q.len(), 6);
        let first_two = q.take_front(&mut arena, 2);
        assert_eq!(first_two.iter(&arena).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.front(), 2);
        // Freed ids can be requeued: their link slots are simply rewritten.
        q.push_back(&mut arena, 0);
        let rest = q.take_front(&mut arena, 5);
        assert_eq!(rest.iter(&arena).collect::<Vec<_>>(), vec![2, 3, 4, 5, 0]);
        assert!(q.is_empty());
        assert_eq!(q.front(), NIL);
    }

    #[test]
    fn take_front_of_full_queue_resets_tail() {
        let mut arena = RequestArena::new(workload(3));
        let mut q = IndexQueue::new();
        for id in 0..3u32 {
            q.push_back(&mut arena, id);
        }
        let all = q.take_front(&mut arena, 3);
        assert_eq!(all.count, 3);
        assert!(q.is_empty());
        // The emptied queue must accept new pushes with a fresh head.
        q.push_back(&mut arena, 1);
        assert_eq!(q.front(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_min_service_matches_boxed_ses_selection() {
        // Same workload through the boxed ShortestServiceScheduler and the
        // index queue: the drain orders must agree, including on ties.
        let requests = workload(32);
        let mut boxed = crate::engine::SchedulerKind::ShortestService.build();
        let mut arena = RequestArena::new(requests.clone());
        let mut q = IndexQueue::new();
        for r in &requests {
            boxed.enqueue(*r);
            q.push_back(&mut arena, r.id as u32);
        }
        loop {
            let want = match boxed.dispatch(0.0) {
                Dispatch::Serve(batch) => Some(batch[0].id),
                Dispatch::Idle => None,
                Dispatch::WaitUntil(_) => unreachable!("ses never waits"),
            };
            let got = q.remove_min_service(&mut arena).map(|id| id as usize);
            assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    #[test]
    fn discipline_batch_matches_boxed_batch_scheduler() {
        // Feed identical arrival prefixes, then dispatch at a sweep of
        // `now` values: decisions (serve set, wait deadline, idle) must
        // match the boxed BatchScheduler's exactly.
        let requests = workload(10);
        let kind = SchedulerKind::Batch {
            max_batch: 4,
            max_wait_ms: 3.0,
        };
        let disc = Discipline::from_kind(kind).unwrap();
        for enqueue_upto in 0..requests.len() {
            for now in [0.0, 1.0, 2.49, 3.0, 7.5, 100.0] {
                let mut boxed = kind.build();
                let mut arena = RequestArena::new(requests.clone());
                let mut q = IndexQueue::new();
                for r in &requests[..enqueue_upto] {
                    boxed.enqueue(*r);
                    q.push_back(&mut arena, r.id as u32);
                }
                let want = boxed.dispatch(now);
                let got = disc.dispatch(&mut q, &mut arena, now);
                match (got, want) {
                    (Action::Idle, Dispatch::Idle) => {}
                    (Action::WaitUntil(a), Dispatch::WaitUntil(b)) => assert_eq!(a, b),
                    (Action::Serve(chain), Dispatch::Serve(batch)) => {
                        let got_ids: Vec<usize> =
                            chain.iter(&arena).map(|id| id as usize).collect();
                        let want_ids: Vec<usize> = batch.iter().map(|r| r.id).collect();
                        assert_eq!(got_ids, want_ids);
                    }
                    (g, w) => panic!("divergence at now={now}: {g:?} vs {w:?}"),
                }
            }
        }
    }

    #[test]
    fn from_kind_validates_batch_parameters() {
        assert_eq!(
            Discipline::from_kind(SchedulerKind::Batch {
                max_batch: 0,
                max_wait_ms: 1.0
            })
            .unwrap_err(),
            "batch size must be at least 1"
        );
        assert_eq!(
            Discipline::from_kind(SchedulerKind::Batch {
                max_batch: 4,
                max_wait_ms: f64::NAN
            })
            .unwrap_err(),
            "max wait must be non-negative and finite"
        );
        assert_eq!(
            Discipline::from_kind(SchedulerKind::Fifo).unwrap(),
            Discipline::Fifo
        );
    }

    #[test]
    fn chain_iter_is_exact_size() {
        let mut arena = RequestArena::new(workload(4));
        let mut q = IndexQueue::new();
        for id in 0..4u32 {
            q.push_back(&mut arena, id);
        }
        let chain = q.take_front(&mut arena, 4);
        let it = chain.iter(&arena);
        assert_eq!(it.len(), 4);
        assert_eq!(Chain::EMPTY.iter(&arena).count(), 0);
        assert_eq!(Chain::solo(2).iter(&arena).collect::<Vec<_>>(), vec![2]);
    }
}
