//! Energy accounting: `E = P · Δt` (§IV-C).

use crate::device::{Device, DeviceModel};
use crate::power::PowerModel;

/// Energy in joules for a latency in milliseconds at a power draw in watts.
pub fn energy_joules(power_watts: f64, latency_ms: f64) -> f64 {
    assert!(latency_ms >= 0.0, "latency must be non-negative");
    power_watts * latency_ms / 1000.0
}

/// Percentage energy saving of `candidate` relative to `baseline`
/// (positive = candidate uses less).
pub fn savings_percent(baseline_j: f64, candidate_j: f64) -> f64 {
    assert!(baseline_j > 0.0, "baseline energy must be positive");
    (1.0 - candidate_j / baseline_j) * 100.0
}

/// Latency + power + energy for one model on one device — one cell of the
/// paper's Table II.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Which device.
    pub device: Device,
    /// Mean per-image latency, milliseconds.
    pub latency_ms: f64,
    /// Power draw during inference, watts.
    pub power_watts: f64,
    /// Per-image energy, joules.
    pub energy_j: f64,
}

impl EnergyReport {
    /// Build a report from a device model and a per-image latency.
    pub fn from_latency(model: &DeviceModel, latency_ms: f64) -> Self {
        let power = PowerModel::for_device(model.device).watts(model.inference_utilization);
        EnergyReport {
            device: model.device,
            latency_ms,
            power_watts: power,
            energy_j: energy_joules(power, latency_ms),
        }
    }

    /// Energy saving of this report versus a baseline report, percent.
    pub fn savings_vs(&self, baseline: &EnergyReport) -> f64 {
        savings_percent(baseline.energy_j, self.energy_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        assert_eq!(energy_joules(10.0, 1000.0), 10.0);
        assert_eq!(energy_joules(5.0, 100.0), 0.5);
        assert_eq!(energy_joules(5.0, 0.0), 0.0);
    }

    #[test]
    fn savings_percent_basics() {
        assert_eq!(savings_percent(10.0, 5.0), 50.0);
        assert_eq!(savings_percent(10.0, 10.0), 0.0);
        assert!(savings_percent(10.0, 12.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn savings_rejects_zero_baseline() {
        let _ = savings_percent(0.0, 1.0);
    }

    #[test]
    fn report_pulls_power_from_device_model() {
        let m = DeviceModel::raspberry_pi4();
        let r = EnergyReport::from_latency(&m, 12.735);
        // P = 2.7 + 3.7·0.85 = 5.845 W
        assert!((r.power_watts - 5.845).abs() < 1e-6);
        assert!((r.energy_j - 5.845 * 12.735 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn savings_vs_baseline_shape() {
        // With near-constant power, savings track the latency ratio — the
        // paper's §IV-E observation for the CPU devices.
        let m = DeviceModel::raspberry_pi4();
        let lenet = EnergyReport::from_latency(&m, 12.735);
        let cbnet = EnergyReport::from_latency(&m, 2.4);
        let s = cbnet.savings_vs(&lenet);
        assert!((s - (1.0 - 2.4 / 12.735) * 100.0).abs() < 1e-9);
        assert!(s > 80.0, "CBNet RPi savings {s:.1}% should be >80%");
    }
}
