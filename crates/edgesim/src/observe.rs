//! Simulator-side observability: one [`SimObserver`] instruments both the
//! single-tier [`crate::engine`] and the tiered [`crate::fleet`].
//!
//! The observer is **read-only with respect to the simulation**: it is fed
//! the same event stream the engines already produce and never influences
//! scheduling, admission or routing, which is why the observed entry points
//! (`try_run_engine_observed`, `try_simulate_fleet_observed`) return reports
//! bit-identical to their unobserved twins (pinned by conformance tests in
//! both modules).
//!
//! # Allocation discipline
//!
//! Construction registers every metric and preallocates the span ring —
//! that is where all allocation happens. Every `on_*` recording method is
//! allocation-free: counter/gauge/histogram updates are atomics on
//! preallocated storage ([`obs::MetricsRegistry`]) and span recording is a
//! slot assignment in the preallocated ring ([`obs::TraceSink`]).
//! `tests/alloc_guard.rs` proves this by running the full recording surface
//! under a counting allocator.
//!
//! # Metric names
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `sim.arrivals` / `sim.admitted` / `sim.dropped` / `sim.completed` | counter | run-level totals |
//! | `sim.sojourn_ms` | histogram | end-to-end sojourn of completed requests |
//! | `tier.<name>.queue_depth` | gauge | live queue depth (max tracked) |
//! | `tier.<name>.service_ms` | histogram | in-service time per request |
//! | `tier.<name>.sojourn_ms` | histogram | end-to-end sojourn of requests completed at the tier |
//! | `tier.<name>.transfer_ms` | histogram | link transfer paid to reach the tier |
//! | `tier.<name>.routed` / `.dropped` / `.completed` | counter | per-tier outcomes |
//! | `policy.<label>.decision.local` / `.offload` | counter | routing decisions |
//! | `sim.swaps` | counter | model hot-swaps applied mid-run |

use obs::{
    BucketSpec, CounterId, GaugeId, HistogramId, MetricsRegistry, ObsMode, SpanKind, TraceSink,
};

/// Default span-ring capacity: enough for every event of the smoke-scale
/// sweeps; bigger runs overwrite oldest-first (the header reports how many).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Preregistered handles for one tier's metrics.
struct TierIds {
    queue_depth: GaugeId,
    service_ms: HistogramId,
    sojourn_ms: HistogramId,
    transfer_ms: HistogramId,
    routed: CounterId,
    dropped: CounterId,
    completed: CounterId,
}

/// Metrics registry + span ring wired to the simulator event loops.
///
/// Build once per run (allocates: registration and the ring), pass to an
/// `*_observed` entry point, then export with [`SimObserver::metrics_json`]
/// / [`SimObserver::trace_jsonl`] or fold into a cross-run accumulator via
/// [`SimObserver::registry`] + [`obs::MetricsRegistry::merge_from`].
pub struct SimObserver {
    mode: ObsMode,
    registry: MetricsRegistry,
    trace: TraceSink,
    tier_names: Vec<String>,
    /// Observer-tracked live queue depth per tier (the scheduler is not
    /// consulted, so recording stays allocation-free).
    depths: Vec<i64>,
    arrivals: CounterId,
    admitted: CounterId,
    dropped: CounterId,
    completed: CounterId,
    sojourn_ms: HistogramId,
    decision_local: CounterId,
    decision_offload: CounterId,
    swaps: CounterId,
    tiers: Vec<TierIds>,
}

impl SimObserver {
    /// Build an observer for the named tiers under an explicit mode.
    ///
    /// `policy_label` names the routing policy in the
    /// `policy.<label>.decision.*` counters (use `"local"` for single-tier
    /// engine runs). Cold path: registers every metric and preallocates
    /// `trace_capacity` span slots up front.
    pub fn with_mode(
        mode: ObsMode,
        tier_names: &[&str],
        policy_label: &str,
        trace_capacity: usize,
    ) -> SimObserver {
        let mut registry = MetricsRegistry::new();
        let arrivals = registry.register_counter("sim.arrivals");
        let admitted = registry.register_counter("sim.admitted");
        let dropped = registry.register_counter("sim.dropped");
        let completed = registry.register_counter("sim.completed");
        let sojourn_ms = registry.register_histogram("sim.sojourn_ms", BucketSpec::latency_ms());
        let decision_local =
            registry.register_counter(&format!("policy.{policy_label}.decision.local"));
        let decision_offload =
            registry.register_counter(&format!("policy.{policy_label}.decision.offload"));
        let swaps = registry.register_counter("sim.swaps");
        let tiers = tier_names
            .iter()
            .map(|name| TierIds {
                queue_depth: registry.register_gauge(&format!("tier.{name}.queue_depth")),
                service_ms: registry.register_histogram(
                    &format!("tier.{name}.service_ms"),
                    BucketSpec::latency_ms(),
                ),
                sojourn_ms: registry.register_histogram(
                    &format!("tier.{name}.sojourn_ms"),
                    BucketSpec::latency_ms(),
                ),
                transfer_ms: registry.register_histogram(
                    &format!("tier.{name}.transfer_ms"),
                    BucketSpec::latency_ms(),
                ),
                routed: registry.register_counter(&format!("tier.{name}.routed")),
                dropped: registry.register_counter(&format!("tier.{name}.dropped")),
                completed: registry.register_counter(&format!("tier.{name}.completed")),
            })
            .collect();
        SimObserver {
            mode,
            registry,
            // A trace ring exists in every mode so recording never branches
            // on buffer presence; `Off`/`Metrics` simply never write to it.
            trace: TraceSink::new(trace_capacity),
            tier_names: tier_names.iter().map(|s| s.to_string()).collect(),
            depths: vec![0; tier_names.len().max(1)],
            arrivals,
            admitted,
            dropped,
            completed,
            sojourn_ms,
            decision_local,
            decision_offload,
            swaps,
            tiers,
        }
    }

    /// Observer for a single-tier engine run (one tier named `device`),
    /// under the process-wide [`ObsMode::resolve`] mode.
    pub fn for_engine() -> SimObserver {
        SimObserver::with_mode(
            ObsMode::resolve(),
            &["device"],
            "local",
            DEFAULT_TRACE_CAPACITY,
        )
    }

    /// Observer for a fleet run: one tier entry per [`crate::fleet::Tier`]
    /// in config order, under the process-wide [`ObsMode::resolve`] mode.
    pub fn for_fleet(cfg: &crate::fleet::FleetConfig, policy_label: &str) -> SimObserver {
        let names: Vec<&str> = cfg.tiers.iter().map(|t| t.name.as_str()).collect();
        SimObserver::with_mode(
            ObsMode::resolve(),
            &names,
            policy_label,
            DEFAULT_TRACE_CAPACITY,
        )
    }

    /// The mode this observer was constructed under (resolved once, like a
    /// `ForwardPlan`'s backend).
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// True when the observer records anything at all.
    pub fn enabled(&self) -> bool {
        self.mode.metrics_enabled()
    }

    #[inline]
    fn tracing(&self) -> bool {
        self.mode.trace_enabled()
    }

    /// A request reached the system boundary. Allocation-free.
    pub fn on_arrival(&mut self, now: f64, id: usize) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.arrivals, 1);
        if self.tracing() {
            self.trace
                .record(now, id as u64, SpanKind::Arrival, 0, 0, 0.0);
        }
    }

    /// The policy routed request `id` to `tier`, paying `transfer_ms` when
    /// remote. Allocation-free.
    pub fn on_route(&mut self, now: f64, id: usize, tier: usize, transfer_ms: f64) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.tiers[tier].routed, 1);
        if tier == 0 {
            self.registry.inc(self.decision_local, 1);
        } else {
            self.registry.inc(self.decision_offload, 1);
            self.registry
                .observe(self.tiers[tier].transfer_ms, transfer_ms);
        }
        if self.tracing() {
            if tier != 0 {
                self.trace.record(
                    now,
                    id as u64,
                    SpanKind::OffloadHop,
                    tier as u32,
                    0,
                    transfer_ms,
                );
            }
            // The tier depth a request's difficulty resolved to — the fleet
            // analogue of a BranchyNet exit index (0 = finished at the edge).
            self.trace.record(
                now,
                id as u64,
                SpanKind::ExitDepth,
                tier as u32,
                0,
                tier as f64,
            );
        }
    }

    /// Admission control accepted request `id` at `tier`. Allocation-free.
    pub fn on_admit(&mut self, now: f64, id: usize, tier: usize) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.admitted, 1);
        if self.tracing() {
            self.trace
                .record(now, id as u64, SpanKind::Admit, tier as u32, 0, 0.0);
        }
    }

    /// Admission control dropped request `id` at `tier`; `queue_len` is the
    /// depth it balked at. Allocation-free.
    pub fn on_drop(&mut self, now: f64, id: usize, tier: usize, queue_len: f64) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.dropped, 1);
        self.registry.inc(self.tiers[tier].dropped, 1);
        if self.tracing() {
            self.trace
                .record(now, id as u64, SpanKind::Drop, tier as u32, 0, queue_len);
        }
    }

    /// Request `id` entered `tier`'s scheduler queue. Allocation-free.
    pub fn on_queue_enter(&mut self, now: f64, id: usize, tier: usize) {
        if !self.enabled() {
            return;
        }
        self.depths[tier] += 1;
        let depth = self.depths[tier] as f64;
        self.registry.gauge_set(self.tiers[tier].queue_depth, depth);
        if self.tracing() {
            self.trace
                .record(now, id as u64, SpanKind::QueueEnter, tier as u32, 0, depth);
        }
    }

    /// Request `id` left `tier`'s queue for service. Allocation-free.
    pub fn on_queue_leave(&mut self, now: f64, id: usize, tier: usize) {
        if !self.enabled() {
            return;
        }
        self.depths[tier] -= 1;
        let depth = self.depths[tier] as f64;
        self.registry.gauge_set(self.tiers[tier].queue_depth, depth);
        if self.tracing() {
            self.trace
                .record(now, id as u64, SpanKind::QueueLeave, tier as u32, 0, depth);
        }
    }

    /// Service started for request `id` on `tier`/`server` in a batch of
    /// `batch_len`. Allocation-free.
    pub fn on_service_start(
        &mut self,
        now: f64,
        id: usize,
        tier: usize,
        server: usize,
        batch_len: usize,
    ) {
        if !self.enabled() {
            return;
        }
        if self.tracing() {
            self.trace.record(
                now,
                id as u64,
                SpanKind::ServiceStart,
                tier as u32,
                server as u32,
                batch_len as f64,
            );
        }
    }

    /// Service finished for request `id` after `service_ms` in service
    /// (batch start → completion). Allocation-free.
    pub fn on_service_end(
        &mut self,
        now: f64,
        id: usize,
        tier: usize,
        server: usize,
        service_ms: f64,
    ) {
        if !self.enabled() {
            return;
        }
        self.registry
            .observe(self.tiers[tier].service_ms, service_ms);
        if self.tracing() {
            self.trace.record(
                now,
                id as u64,
                SpanKind::ServiceEnd,
                tier as u32,
                server as u32,
                service_ms,
            );
        }
    }

    /// Request `id` completed at `tier` with end-to-end `sojourn_ms`.
    /// Allocation-free.
    pub fn on_complete(&mut self, _now: f64, _id: usize, tier: usize, sojourn_ms: f64) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.completed, 1);
        self.registry.inc(self.tiers[tier].completed, 1);
        self.registry.observe(self.sojourn_ms, sojourn_ms);
        self.registry
            .observe(self.tiers[tier].sojourn_ms, sojourn_ms);
    }

    /// An early-exit depth resolved for request `id` (model-level callers;
    /// the fleet emits its tier-depth analogue from
    /// [`SimObserver::on_route`]). Allocation-free.
    pub fn on_exit(&mut self, now: f64, id: usize, exit_index: usize) {
        if !self.enabled() || !self.tracing() {
            return;
        }
        self.trace
            .record(now, id as u64, SpanKind::ExitDepth, 0, 0, exit_index as f64);
    }

    /// Tier `tier`'s model was hot-swapped to `version`; `swap_index` is
    /// the swap's position in schedule order (it doubles as the span's
    /// request id, keeping trace request ids small and dense).
    /// Allocation-free.
    pub fn on_swap(&mut self, now: f64, swap_index: usize, tier: usize, version: u64) {
        if !self.enabled() {
            return;
        }
        self.registry.inc(self.swaps, 1);
        if self.tracing() {
            self.trace.record(
                now,
                swap_index as u64,
                SpanKind::Swap,
                tier as u32,
                0,
                version as f64,
            );
        }
    }

    /// Borrow the metrics registry (quantile queries, cross-run merges via
    /// [`obs::MetricsRegistry::merge_from`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Borrow the span ring (event counts, overwrite accounting).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Tier names in index order, as the trace exporter resolves them.
    pub fn tier_names(&self) -> &[String] {
        &self.tier_names
    }

    /// Encode the registry as the `METRICS.json` document. Cold path.
    pub fn metrics_json(&self) -> String {
        self.registry.write_json(self.mode)
    }

    /// Encode the span ring as the `TRACE.jsonl` document. Cold path.
    pub fn trace_jsonl(&self) -> String {
        let names: Vec<&str> = self.tier_names.iter().map(|s| s.as_str()).collect();
        self.trace.write_jsonl(&names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer(mode: ObsMode) -> SimObserver {
        SimObserver::with_mode(mode, &["edge", "cloud"], "exit_conf", 64)
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut o = observer(ObsMode::Off);
        o.on_arrival(0.0, 0);
        o.on_route(0.0, 0, 1, 2.5);
        o.on_complete(5.0, 0, 1, 5.0);
        assert!(!o.enabled());
        assert_eq!(o.registry().counter_value(o.arrivals), 0);
        assert!(o.trace().is_empty());
    }

    #[test]
    fn metrics_mode_counts_without_tracing() {
        let mut o = observer(ObsMode::Metrics);
        o.on_arrival(0.0, 0);
        o.on_route(0.0, 0, 1, 2.5);
        o.on_admit(2.5, 0, 1);
        o.on_queue_enter(2.5, 0, 1);
        o.on_queue_leave(3.0, 0, 1);
        o.on_service_start(3.0, 0, 1, 0, 1);
        o.on_service_end(8.0, 0, 1, 0, 5.0);
        o.on_complete(8.0, 0, 1, 8.0);
        assert_eq!(o.registry().counter_value(o.arrivals), 1);
        assert_eq!(o.registry().counter_value(o.decision_offload), 1);
        assert_eq!(o.registry().counter_value(o.tiers[1].routed), 1);
        assert_eq!(o.registry().histogram(o.tiers[1].service_ms).count(), 1);
        assert_eq!(o.registry().histogram(o.tiers[1].transfer_ms).count(), 1);
        assert_eq!(o.registry().gauge_value(o.tiers[1].queue_depth), 0.0);
        assert_eq!(o.registry().gauge_max(o.tiers[1].queue_depth), 1.0);
        assert!(o.trace().is_empty(), "metrics mode must not trace");
    }

    #[test]
    fn trace_mode_reconstructs_a_request_path() {
        let mut o = observer(ObsMode::Trace);
        o.on_arrival(0.0, 7);
        o.on_route(0.0, 7, 1, 2.5);
        o.on_admit(2.5, 7, 1);
        o.on_queue_enter(2.5, 7, 1);
        o.on_queue_leave(3.0, 7, 1);
        o.on_service_start(3.0, 7, 1, 0, 2);
        o.on_service_end(8.0, 7, 1, 0, 5.0);
        let kinds: Vec<SpanKind> = o.trace().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Arrival,
                SpanKind::OffloadHop,
                SpanKind::ExitDepth,
                SpanKind::Admit,
                SpanKind::QueueEnter,
                SpanKind::QueueLeave,
                SpanKind::ServiceStart,
                SpanKind::ServiceEnd,
            ]
        );
        assert!(o.trace().iter().all(|e| e.request == 7));
        let jsonl = o.trace_jsonl();
        assert!(jsonl
            .lines()
            .next()
            .unwrap()
            .contains("\"kind\": \"header\""));
        assert!(jsonl.contains("\"tier\": \"cloud\""));
    }

    #[test]
    fn drops_count_at_both_levels() {
        let mut o = observer(ObsMode::Metrics);
        o.on_arrival(0.0, 0);
        o.on_route(0.0, 0, 0, 0.0);
        o.on_drop(0.0, 0, 0, 32.0);
        assert_eq!(o.registry().counter_value(o.dropped), 1);
        assert_eq!(o.registry().counter_value(o.tiers[0].dropped), 1);
        assert_eq!(o.registry().counter_value(o.decision_local), 1);
    }
}
