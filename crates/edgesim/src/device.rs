//! Per-layer device latency models, calibrated to the paper's testbeds.
//!
//! A layer's latency on a device is
//!
//! ```text
//! t(layer) = dispatch + flops(layer) / throughput(cost_kind(layer))
//! ```
//!
//! with three effective throughputs (conv / dense / other). The split is the
//! single most load-bearing modelling decision in this reproduction: on the
//! paper's Keras/Chainer stack, small-image convolutions run at tens of
//! MFLOP/s effective (im2col + dispatch overheads dominate) while dense
//! layers hit multi-GFLOP/s BLAS. Without that asymmetry the paper's own
//! numbers are inconsistent — its 1.9 MFLOP dense autoencoder measurably
//! costs *less* than its ~0.5 MFLOP CNN (Table II + §IV-D "the former
//! contributing up to 25% of the total inference time").
//!
//! Preset parameters are solved from the paper's Table II anchors (LeNet and
//! CBNet per-image latency per device); everything else — BranchyNet mixture
//! latencies, Fig. 3/5/6–8 curves — is *predicted*, not fitted.

use nn::{CostKind, LayerSpec, Network};

/// The paper's three evaluation platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Raspberry Pi 4 (4× ARM v8, 8 GB) on Chameleon CHI@Edge.
    RaspberryPi4,
    /// Google Cloud N1 instance, 2 vCPU (Haswell host), no GPU.
    GciCpu,
    /// The same instance with an Nvidia Tesla K80.
    GciGpu,
}

impl Device {
    /// All devices in the paper's presentation order.
    pub const ALL: [Device; 3] = [Device::RaspberryPi4, Device::GciCpu, Device::GciGpu];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Device::RaspberryPi4 => "Raspberry Pi 4",
            Device::GciCpu => "GCI w/o GPU",
            Device::GciGpu => "GCI with GPU",
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Latency model parameters for one device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Which platform this models.
    pub device: Device,
    /// Fixed per-layer dispatch/launch overhead, in milliseconds.
    pub dispatch_ms: f64,
    /// Effective convolution throughput, flops per millisecond.
    pub conv_flops_per_ms: f64,
    /// Effective dense (GEMM) throughput, flops per millisecond.
    pub dense_flops_per_ms: f64,
    /// Effective throughput of pooling/activation glue, flops per ms.
    pub other_flops_per_ms: f64,
    /// CPU utilization while running inference (feeds the power models;
    /// the paper observes near-constant utilization across models, §IV-E).
    pub inference_utilization: f64,
    /// Per-sample cost of an early-exit decision: softmax entropy on the
    /// host plus data-dependent control flow. Negligible for plain
    /// feed-forward models, but real for BranchyNet-style execution — on the
    /// GPU it forces a device→host sync per sample, which is why the paper's
    /// measured GPU BranchyNet latency (0.118 ms) far exceeds its easy-path
    /// compute. Charged once per sample by the BranchyNet evaluator.
    pub exit_sync_ms: f64,
}

/// Per-layer latency decomposition of one forward pass.
#[derive(Debug, Clone)]
pub struct LatencyBreakdown {
    /// `(spec description, milliseconds)` per layer, in execution order.
    pub per_layer_ms: Vec<(String, f64)>,
    /// Total milliseconds.
    pub total_ms: f64,
}

impl LatencyBreakdown {
    /// An empty (zero-cost) breakdown.
    pub fn zero() -> Self {
        LatencyBreakdown {
            per_layer_ms: Vec::new(),
            total_ms: 0.0,
        }
    }

    /// Concatenate two breakdowns (sequential execution).
    pub fn then(mut self, other: LatencyBreakdown) -> LatencyBreakdown {
        self.per_layer_ms.extend(other.per_layer_ms);
        self.total_ms += other.total_ms;
        self
    }
}

impl DeviceModel {
    /// Raspberry Pi 4 preset, calibrated to LeNet = 12.735 ms/image
    /// (Table II) with dense throughput consistent with the autoencoder
    /// contributing ≤25% of CBNet latency (§IV-D).
    pub fn raspberry_pi4() -> Self {
        DeviceModel {
            device: Device::RaspberryPi4,
            dispatch_ms: 0.02,
            conv_flops_per_ms: 40_519.0, // ≈40.5 MFLOP/s effective
            dense_flops_per_ms: 6.0e6,   // ≈6 GFLOP/s (NEON BLAS)
            other_flops_per_ms: 1.0e5,
            inference_utilization: 0.85,
            exit_sync_ms: 0.05,
        }
    }

    /// Google Cloud N1 (2 vCPU, no GPU) preset, calibrated to
    /// LeNet = 1.322 ms and CBNet = 0.267 ms (Table II, MNIST).
    pub fn gci_cpu() -> Self {
        DeviceModel {
            device: Device::GciCpu,
            dispatch_ms: 0.002,
            conv_flops_per_ms: 390_100.0, // ≈390 MFLOP/s effective
            dense_flops_per_ms: 4.124e7,  // ≈41 GFLOP/s (AVX2 BLAS)
            other_flops_per_ms: 1.0e6,
            inference_utilization: 0.81, // reproduces the paper's 17.7 W mean
            exit_sync_ms: 0.01,
        }
    }

    /// GCI + Tesla K80 preset, calibrated to LeNet = 0.266 ms and
    /// CBNet = 0.105 ms (Table II, MNIST). Tiny kernels leave the K80
    /// dispatch-bound, hence the low effective conv throughput.
    pub fn gci_gpu() -> Self {
        DeviceModel {
            device: Device::GciGpu,
            dispatch_ms: 0.004,
            conv_flops_per_ms: 2.245e6,  // ≈2.2 GFLOP/s effective
            dense_flops_per_ms: 1.198e8, // ≈120 GFLOP/s
            other_flops_per_ms: 1.0e7,
            inference_utilization: 0.81,
            exit_sync_ms: 0.045,
        }
    }

    /// The preset for a [`Device`].
    pub fn preset(device: Device) -> Self {
        match device {
            Device::RaspberryPi4 => Self::raspberry_pi4(),
            Device::GciCpu => Self::gci_cpu(),
            Device::GciGpu => Self::gci_gpu(),
        }
    }

    /// Latency of one layer, in milliseconds.
    pub fn layer_ms(&self, spec: &LayerSpec) -> f64 {
        let throughput = match spec.cost_kind() {
            CostKind::Conv => self.conv_flops_per_ms,
            CostKind::Dense => self.dense_flops_per_ms,
            CostKind::Other => self.other_flops_per_ms,
        };
        self.dispatch_ms + spec.flops_per_sample() as f64 / throughput
    }

    /// Per-image latency of a sequential architecture.
    pub fn price_specs(&self, specs: &[LayerSpec]) -> LatencyBreakdown {
        let mut per_layer_ms = Vec::with_capacity(specs.len());
        let mut total = 0.0;
        for s in specs {
            let t = self.layer_ms(s);
            per_layer_ms.push((s.describe(), t));
            total += t;
        }
        LatencyBreakdown {
            per_layer_ms,
            total_ms: total,
        }
    }

    /// Per-image latency of a network.
    pub fn price_network(&self, net: &Network) -> LatencyBreakdown {
        self.price_specs(&net.specs())
    }

    /// Per-image latency of an architecture whose per-layer FLOPs have been
    /// overridden (SubFlow induced subgraphs: the layer structure executes
    /// in full — dispatch applies — but each layer does only its effective
    /// work).
    ///
    /// # Panics
    /// Panics if the override list length differs from the spec list.
    pub fn price_specs_with_flops(&self, specs: &[LayerSpec], flops: &[u64]) -> LatencyBreakdown {
        assert_eq!(specs.len(), flops.len(), "flops override length mismatch");
        let mut per_layer_ms = Vec::with_capacity(specs.len());
        let mut total = 0.0;
        for (s, &f) in specs.iter().zip(flops) {
            let throughput = match s.cost_kind() {
                CostKind::Conv => self.conv_flops_per_ms,
                CostKind::Dense => self.dense_flops_per_ms,
                CostKind::Other => self.other_flops_per_ms,
            };
            let t = self.dispatch_ms + f as f64 / throughput;
            per_layer_ms.push((s.describe(), t));
            total += t;
        }
        LatencyBreakdown {
            per_layer_ms,
            total_ms: total,
        }
    }

    /// Mean per-image latency of an early-exit execution: every sample pays
    /// `easy_ms`; the `1 − exit_rate` fraction additionally pays `tail_ms`.
    ///
    /// # Panics
    /// Panics unless `exit_rate ∈ [0, 1]`.
    pub fn early_exit_mixture_ms(&self, easy_ms: f64, tail_ms: f64, exit_rate: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&exit_rate),
            "exit rate must be in [0, 1]"
        );
        easy_ms + (1.0 - exit_rate) * tail_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    fn lenet_specs() -> Vec<LayerSpec> {
        let mut rng = rng_from_seed(0);
        models_free_lenet(&mut rng)
    }

    // Local rebuild of the LeNet spec list: edgesim must not depend on the
    // models crate (it sits below it), so the calibration tests mirror the
    // architecture. An integration test in `tests/` pins the two together.
    fn models_free_lenet(rng: &mut impl rand::Rng) -> Vec<LayerSpec> {
        use nn::{Activation, ActivationKind, Conv2d, Dense, MaxPool2, Network};
        use tensor::conv::Conv2dGeom;
        let g1 = Conv2dGeom {
            in_channels: 1,
            in_h: 28,
            in_w: 28,
            k_h: 5,
            k_w: 5,
            stride: 2,
            pad: 0,
        };
        let g2 = Conv2dGeom {
            in_channels: 8,
            in_h: 12,
            in_w: 12,
            k_h: 5,
            k_w: 5,
            stride: 1,
            pad: 0,
        };
        let g3 = Conv2dGeom {
            in_channels: 16,
            in_h: 4,
            in_w: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 0,
        };
        Network::new()
            .push(Conv2d::new(g1, 8, rng))
            .push(Activation::new(ActivationKind::Relu, 1152))
            .push(Conv2d::new(g2, 16, rng))
            .push(Activation::new(ActivationKind::Relu, 1024))
            .push(MaxPool2::new(16, 8, 8, 2))
            .push(Conv2d::new(g3, 32, rng))
            .push(Activation::new(ActivationKind::Relu, 128))
            .push(Dense::new(128, 84, rng))
            .push(Activation::new(ActivationKind::Relu, 84))
            .push(Dense::new(84, 10, rng))
            .specs()
    }

    #[test]
    fn rpi_lenet_latency_matches_paper_anchor() {
        let m = DeviceModel::raspberry_pi4();
        let t = m.price_specs(&lenet_specs()).total_ms;
        assert!(
            (t - 12.735).abs() < 0.5,
            "RPi LeNet latency {t:.3} ms vs paper 12.735 ms"
        );
    }

    #[test]
    fn gci_lenet_latency_matches_paper_anchor() {
        let m = DeviceModel::gci_cpu();
        let t = m.price_specs(&lenet_specs()).total_ms;
        assert!(
            (t - 1.322).abs() < 0.08,
            "GCI LeNet latency {t:.3} ms vs paper 1.322 ms"
        );
    }

    #[test]
    fn gpu_lenet_latency_matches_paper_anchor() {
        let m = DeviceModel::gci_gpu();
        let t = m.price_specs(&lenet_specs()).total_ms;
        assert!(
            (t - 0.266).abs() < 0.03,
            "GPU LeNet latency {t:.3} ms vs paper 0.266 ms"
        );
    }

    #[test]
    fn device_speed_ordering() {
        // GPU < GCI < RPi on every architecture.
        let specs = lenet_specs();
        let rpi = DeviceModel::raspberry_pi4().price_specs(&specs).total_ms;
        let gci = DeviceModel::gci_cpu().price_specs(&specs).total_ms;
        let gpu = DeviceModel::gci_gpu().price_specs(&specs).total_ms;
        assert!(gpu < gci && gci < rpi, "{gpu} {gci} {rpi}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = DeviceModel::raspberry_pi4();
        let b = m.price_specs(&lenet_specs());
        let sum: f64 = b.per_layer_ms.iter().map(|(_, t)| t).sum();
        assert!((sum - b.total_ms).abs() < 1e-9);
        assert_eq!(b.per_layer_ms.len(), 10);
    }

    #[test]
    fn then_concatenates() {
        let m = DeviceModel::gci_cpu();
        let a = m.price_specs(&lenet_specs());
        let b = m.price_specs(&lenet_specs());
        let total = a.total_ms;
        let joined = a.then(b);
        assert!((joined.total_ms - 2.0 * total).abs() < 1e-9);
        assert_eq!(joined.per_layer_ms.len(), 20);
    }

    #[test]
    fn mixture_interpolates() {
        let m = DeviceModel::raspberry_pi4();
        assert_eq!(m.early_exit_mixture_ms(2.0, 10.0, 1.0), 2.0);
        assert_eq!(m.early_exit_mixture_ms(2.0, 10.0, 0.0), 12.0);
        assert_eq!(m.early_exit_mixture_ms(2.0, 10.0, 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "exit rate")]
    fn mixture_rejects_bad_rate() {
        let _ = DeviceModel::raspberry_pi4().early_exit_mixture_ms(1.0, 1.0, 1.5);
    }

    #[test]
    fn dense_heavy_net_is_cheap_relative_to_flops() {
        // The conv/dense asymmetry: an architecture with 4× the FLOPs of
        // LeNet but all-dense must still be faster on every device.
        use nn::{Activation, ActivationKind, Dense, Network};
        let mut rng = rng_from_seed(1);
        let ae = Network::new()
            .push(Dense::new(784, 784, &mut rng))
            .push(Activation::new(ActivationKind::Relu, 784))
            .push(Dense::new(784, 784, &mut rng))
            .specs();
        let lenet = lenet_specs();
        let ae_flops: u64 = ae.iter().map(|s| s.flops_per_sample()).sum();
        let ln_flops: u64 = lenet.iter().map(|s| s.flops_per_sample()).sum();
        assert!(ae_flops > 2 * ln_flops);
        for d in Device::ALL {
            let m = DeviceModel::preset(d);
            assert!(
                m.price_specs(&ae).total_ms < m.price_specs(&lenet).total_ms,
                "dense net should be cheaper on {d}"
            );
        }
    }

    #[test]
    fn preset_dispatch() {
        for d in Device::ALL {
            assert_eq!(DeviceModel::preset(d).device, d);
        }
        assert_eq!(Device::RaspberryPi4.to_string(), "Raspberry Pi 4");
    }
}
