//! Discrete-event multi-server serving engine.
//!
//! Where [`crate::pipeline::simulate`] is a closed-form single-server FIFO
//! recurrence, this module is a proper event-driven simulator: an event
//! loop (arrivals merged from the sorted workload slab, completions and
//! batch-deadline timers from a preallocated index [`EventHeap`]) drives N
//! parallel servers, a queue discipline decides what a free server runs
//! next, and an [`AdmissionPolicy`] decides whether an arriving request is
//! queued at all — with dropped requests accounted per run, not silently
//! discarded.
//!
//! The hot loop is built on flat indices ([`EngineSim`]): requests live in
//! a [`RequestArena`] slab, queues and batches are intrusive chains through
//! it, and the discipline is a monomorphized [`Discipline`] — steady-state
//! execution is allocation-free (see `tests/alloc_guard.rs`), which is what
//! makes 10⁶⁺-request sweeps cheap. The [`Scheduler`] trait and its boxed
//! implementations remain as the reference semantics the disciplines are
//! conformance-tested against (and as the extension surface for custom
//! experiments via [`crate::reference::run_engine_reference`]).
//!
//! # Conformance with the legacy simulator
//!
//! The workload is pre-generated with **exactly** the legacy loop's RNG
//! draw order — one inter-arrival uniform, then one service uniform, per
//! request — and the engine's dispatch arithmetic reuses the event times
//! themselves (`start = now`), never recomputing them. Together with the
//! shared report finalizer in [`crate::pipeline`], this makes the 1-server
//! FIFO unbounded configuration reproduce `simulate`'s [`ServingReport`]
//! bit for bit; `tests/trait_conformance.rs` and the edgesim proptests pin
//! that equivalence.
//!
//! # Batching semantics
//!
//! A [`SchedulerKind::Batch`] dispatch fuses up to `max_batch` queued
//! requests into one launch: the batch occupies its server for the *maximum*
//! of its members' solo service times (members execute as one fused kernel,
//! so the batch is as slow as its slowest member), and every member
//! completes when the batch does. A partial batch launches when the oldest
//! queued request has waited `max_wait_ms`.

use std::collections::VecDeque;

use obs::{BucketSpec, Histogram};

use crate::arena::{Action, Chain, Discipline, IndexQueue, RequestArena, NIL};
use crate::arrivals::ArrivalProcess;
use crate::device::DeviceModel;
use crate::events::EventHeap;
use crate::observe::SimObserver;
use crate::pipeline::{finalize_report, report_from_histogram, ServingConfig, ServingReport};

/// One request flowing through the engine. The service requirement is
/// pre-sampled from the workload's [`crate::cost::CostProfile`] at
/// arrival-generation time (for an early-exit model it encodes which path the request takes),
/// so schedulers may use it as the request's expected service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival index (0-based, in arrival order).
    pub id: usize,
    /// Absolute arrival time, ms.
    pub arrival_ms: f64,
    /// Service requirement, ms.
    pub service_ms: f64,
}

/// A scheduler's answer to "server is free at `now` — what should it run?".
#[derive(Debug, Clone)]
pub enum Dispatch {
    /// Run these requests as one batch (singleton for non-batching
    /// disciplines). Must be non-empty.
    Serve(Vec<Request>),
    /// Nothing ready yet, but something is queued: re-ask at this time
    /// (batch-accumulation deadline).
    WaitUntil(f64),
    /// Queue empty — nothing to do until the next arrival.
    Idle,
}

/// A queue discipline. The engine owns arrivals and servers; the scheduler
/// owns the queue. `enqueue` is called once per admitted request,
/// `dispatch` whenever a server is idle, `queue_len` by admission control.
pub trait Scheduler {
    /// Display name for tables/CSV (`fifo`, `ses`, `batch8`, …).
    fn name(&self) -> String;
    /// Accept an admitted request into the queue.
    fn enqueue(&mut self, req: Request);
    /// Decide what a server idle at `now_ms` should do.
    fn dispatch(&mut self, now_ms: f64) -> Dispatch;
    /// Requests currently waiting (not in service).
    fn queue_len(&self) -> usize;
}

/// First-in-first-out, one request per dispatch — the discipline of the
/// legacy simulator.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Request>,
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "fifo".into()
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
    }
    fn dispatch(&mut self, _now_ms: f64) -> Dispatch {
        match self.queue.pop_front() {
            Some(r) => Dispatch::Serve(vec![r]),
            None => Dispatch::Idle,
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Shortest-expected-service first: dispatch the queued request with the
/// smallest service requirement (ties broken by arrival order). Trades
/// worst-case fairness for mean sojourn — under bursty early-exit traffic
/// it lets easy requests overtake the hard ones that build queues.
#[derive(Debug, Default)]
pub struct ShortestServiceScheduler {
    queue: Vec<Request>,
}

impl Scheduler for ShortestServiceScheduler {
    fn name(&self) -> String {
        "ses".into()
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push(req);
    }
    fn dispatch(&mut self, _now_ms: f64) -> Dispatch {
        let best =
            self.queue.iter().enumerate().min_by(|(_, a), (_, b)| {
                a.service_ms.total_cmp(&b.service_ms).then(a.id.cmp(&b.id))
            });
        match best {
            Some((i, _)) => Dispatch::Serve(vec![self.queue.remove(i)]),
            None => Dispatch::Idle,
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Batch accumulation: hold requests until `max_batch` are queued or the
/// oldest has waited `max_wait_ms`, then launch them as one batch (FIFO
/// within the queue). See the module docs for the batch cost model.
#[derive(Debug)]
pub struct BatchScheduler {
    max_batch: usize,
    max_wait_ms: f64,
    queue: VecDeque<Request>,
}

impl BatchScheduler {
    /// A batch-accumulate scheduler.
    ///
    /// # Panics
    /// Panics unless `max_batch ≥ 1` and `max_wait_ms ≥ 0` and finite.
    pub fn new(max_batch: usize, max_wait_ms: f64) -> Self {
        assert!(max_batch >= 1, "batch size must be at least 1");
        assert!(
            max_wait_ms >= 0.0 && max_wait_ms.is_finite(),
            "max wait must be non-negative and finite"
        );
        BatchScheduler {
            max_batch,
            max_wait_ms,
            queue: VecDeque::new(),
        }
    }
}

impl Scheduler for BatchScheduler {
    fn name(&self) -> String {
        format!("batch{}", self.max_batch)
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
    }
    fn dispatch(&mut self, now_ms: f64) -> Dispatch {
        let Some(oldest) = self.queue.front() else {
            return Dispatch::Idle;
        };
        let deadline = oldest.arrival_ms + self.max_wait_ms;
        if self.queue.len() >= self.max_batch || now_ms >= deadline {
            let k = self.queue.len().min(self.max_batch);
            Dispatch::Serve(self.queue.drain(..k).collect())
        } else {
            Dispatch::WaitUntil(deadline)
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Declarative scheduler selection for sweeps/CSV (build one fresh per run
/// with [`SchedulerKind::build`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// [`FifoScheduler`].
    Fifo,
    /// [`ShortestServiceScheduler`].
    ShortestService,
    /// [`BatchScheduler`] with these parameters.
    Batch {
        /// Largest batch one dispatch may fuse.
        max_batch: usize,
        /// Longest a partial batch may hold its oldest request, ms.
        max_wait_ms: f64,
    },
}

impl SchedulerKind {
    /// Instantiate a fresh scheduler of this kind.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::<FifoScheduler>::default(),
            SchedulerKind::ShortestService => Box::<ShortestServiceScheduler>::default(),
            SchedulerKind::Batch {
                max_batch,
                max_wait_ms,
            } => Box::new(BatchScheduler::new(max_batch, max_wait_ms)),
        }
    }

    /// Display name (matches the built scheduler's `name()`); allocation-
    /// and panic-free so it is safe in warning/report paths even for a
    /// configuration `build()` would reject.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::Fifo => "fifo".into(),
            SchedulerKind::ShortestService => "ses".into(),
            SchedulerKind::Batch { max_batch, .. } => format!("batch{max_batch}"),
        }
    }
}

/// Admission control, consulted once per arrival with the current queue
/// length (requests waiting, not those in service).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything (queues can grow without bound under overload).
    Unbounded,
    /// Admit only while fewer than `max_queue` requests wait; everything
    /// else is dropped and accounted in [`EngineReport::dropped`].
    Bounded {
        /// Queue-length cap.
        max_queue: usize,
    },
}

impl AdmissionPolicy {
    /// Does an arrival get in, given the current queue length?
    pub fn admits(&self, queue_len: usize) -> bool {
        match *self {
            AdmissionPolicy::Unbounded => true,
            AdmissionPolicy::Bounded { max_queue } => queue_len < max_queue,
        }
    }

    /// Display name for tables/CSV.
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Unbounded => "unbounded".into(),
            AdmissionPolicy::Bounded { max_queue } => format!("q{max_queue}"),
        }
    }
}

/// Full configuration of one engine run: the workload (shared with the
/// legacy simulator) plus the serving topology.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Arrival process, service profile, request count, seed.
    pub workload: ServingConfig,
    /// Number of identical parallel servers.
    pub servers: usize,
    /// Queue discipline.
    pub scheduler: SchedulerKind,
    /// Admission control.
    pub admission: AdmissionPolicy,
}

impl EngineConfig {
    /// The configuration that must reproduce the legacy simulator exactly:
    /// one server, FIFO, no admission control.
    pub fn single_fifo(workload: ServingConfig) -> Self {
        EngineConfig {
            workload,
            servers: 1,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
        }
    }

    /// Offered load per server, `ρ = λ·E[S] / N`. `ρ ≥ 1` means the system
    /// is unstable without admission control (batching can stretch actual
    /// capacity past this estimate, which ignores batch fusion).
    pub fn per_server_load(&self) -> f64 {
        self.workload
            .profile
            .offered_load(self.workload.arrival_rate_hz)
            / self.servers as f64
    }

    /// Is the offered load serviceable (`ρ < 1` per server)?
    pub fn is_stable(&self) -> bool {
        self.per_server_load() < 1.0
    }
}

/// What happened to one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Served to completion.
    Completed {
        /// Server that ran it.
        server: usize,
        /// Service start, ms.
        start_ms: f64,
        /// Completion, ms.
        finish_ms: f64,
    },
    /// Rejected by admission control.
    Dropped,
}

/// Per-request trace entry (the raw material of the engine's property
/// tests: FIFO order, sojourn ≥ service, conservation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The request as generated.
    pub request: Request,
    /// How it ended.
    pub outcome: Outcome,
}

/// Aggregate + per-server + per-request results of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Sojourn/energy aggregates over *completed* requests, same semantics
    /// as the legacy simulator's report.
    pub serving: ServingReport,
    /// Requests generated.
    pub arrivals: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub dropped: usize,
    /// Busy milliseconds accumulated per server.
    pub per_server_busy_ms: Vec<f64>,
    /// Busy fraction of the makespan, per server.
    pub per_server_utilization: Vec<f64>,
    /// One record per request, in arrival (id) order.
    pub records: Vec<RequestRecord>,
}

impl EngineReport {
    /// Fraction of arrivals dropped by admission control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / self.arrivals as f64
    }
}

/// Which per-request artifacts a simulation retains.
///
/// The engine's hot loop is identical under both modes (same events, same
/// arithmetic); the modes only differ in what each completion/drop writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Keep every per-request [`Outcome`] and sojourn sample (O(n) memory):
    /// [`EngineReport::records`] is fully populated and report percentiles
    /// are exact. The default, and the mode every conformance/property test
    /// consumes.
    #[default]
    Full,
    /// Million-request sweeps: no O(n) record or sojourn storage. Sojourn,
    /// service and queue-depth statistics stream into preallocated
    /// [`obs::Histogram`]s ([`LeanStats`]); report percentiles are bucketed
    /// (≈2% relative error at the default 4% bucket growth) while counts,
    /// busy time, utilization and energy stay exact.
    /// [`EngineReport::records`] comes back empty.
    Lean,
}

/// Bucket layout for lean-mode queue-depth samples: depth 0 lands in the
/// first bucket, the last bucket covers 10⁷-deep backlogs.
fn depth_spec() -> BucketSpec {
    BucketSpec {
        lo: 1.0,
        hi: 1e7,
        growth: 1.04,
    }
}

/// The preallocated statistics a [`RecordMode::Lean`] simulation streams
/// into instead of per-request records. All three histograms record
/// allocation-free after construction.
pub struct LeanStats {
    /// End-to-end sojourn (queue + service) of every completed request, ms.
    pub sojourn_ms: Histogram,
    /// Solo service requirement of every completed request, ms.
    pub service_ms: Histogram,
    /// Queue depth seen by each arrival (sampled before its own admission
    /// decision).
    pub queue_depth: Histogram,
}

impl LeanStats {
    /// Preallocate the three histograms (cold path, once per simulation).
    pub(crate) fn new(prefix: &str) -> LeanStats {
        LeanStats {
            sojourn_ms: Histogram::standalone(
                &format!("{prefix}.sojourn_ms"),
                BucketSpec::latency_ms(),
            ),
            service_ms: Histogram::standalone(
                &format!("{prefix}.service_ms"),
                BucketSpec::latency_ms(),
            ),
            queue_depth: Histogram::standalone(&format!("{prefix}.queue_depth"), depth_spec()),
        }
    }

    /// Zero all three histograms (run-to-run reuse). Allocation-free.
    pub(crate) fn reset(&self) {
        self.sojourn_ms.reset();
        self.service_ms.reset();
        self.queue_depth.reset();
    }
}

/// Dynamic events of the index engine. Arrivals are *not* events: the
/// workload slab is pre-sorted by arrival time, so the loop consumes it
/// through a cursor and merges it against the heap (see
/// [`EngineSim::run`]) — the heap only ever holds O(servers) completions
/// and batch timers instead of O(n) arrivals.
#[derive(Debug, Clone, Copy)]
enum EngineEvent {
    /// A server finishes its in-flight chain.
    Completion { server: u32 },
    /// A batch-accumulation deadline (stale timers are harmless — they just
    /// re-ask the discipline).
    Timer,
}

/// The reusable discrete-event simulation: one allocation burst at
/// [`EngineSim::new`], then [`run`](EngineSim::run) —
/// and any number of [`reset`](EngineSim::reset) + `run` cycles — execute
/// allocation-free (enforced by `tests/alloc_guard.rs` under a counting
/// global allocator).
///
/// This is the engine behind [`simulate_engine`] / [`run_engine`] (which
/// construct it in [`RecordMode::Full`], run once, and assemble the
/// report). Construct it directly to choose [`RecordMode::Lean`] for
/// million-request sweeps, or to amortize construction across repeated runs
/// (benchmarks, parameter sweeps over the same workload).
///
/// Internals: the workload lives in a [`RequestArena`] slab addressed by
/// `u32` ids; the waiting queue is an intrusive [`IndexQueue`] through the
/// arena's link array (the shared pool every idle server steals its next
/// chain from); in-flight batches are detached [`Chain`]s (two `u32`s per
/// server, never an owned `Vec`); dynamic events sit in a preallocated
/// index [`EventHeap`]; and the queue discipline is a monomorphized
/// [`Discipline`] resolved once from [`SchedulerKind`]. Reports are
/// bit-identical to the original `BinaryHeap` + `Box<dyn Scheduler>` loop,
/// which is preserved as [`crate::reference::run_engine_reference`] and
/// pinned against this engine by the conformance suites.
pub struct EngineSim {
    servers: usize,
    discipline: Discipline,
    admission: AdmissionPolicy,
    mode: RecordMode,
    arena: RequestArena,
    heap: EventHeap<EngineEvent>,
    queue: IndexQueue,
    /// Next unconsumed arrival (index into the arena slab).
    cursor: usize,
    /// Next event sequence number. Arrival `i` implicitly owns seq `i`, so
    /// dynamic events start at `n` — exactly the numbering the original
    /// heap-seeded loop produced, which is what makes cursor-merged
    /// arrivals win time ties the same way seeded arrival events did.
    seq: u64,
    idle: Vec<bool>,
    busy_ms: Vec<f64>,
    /// The chain each busy server is running: (start time, members).
    running: Vec<(f64, Chain)>,
    /// Per-request outcomes (Full mode only; empty in Lean).
    outcomes: Vec<Option<Outcome>>,
    /// Completed sojourns in completion order (Full mode only).
    sojourns: Vec<f64>,
    /// Streaming statistics (Lean mode only).
    lean: Option<LeanStats>,
    dropped: usize,
    makespan: f64,
    events: u64,
}

impl EngineSim {
    /// Validate the topology and workload (same contract and error messages
    /// as [`try_run_engine`]) and preallocate every piece of run state.
    /// Cold path: this is the engine's one allocation site.
    pub fn new(
        servers: usize,
        scheduler: SchedulerKind,
        admission: AdmissionPolicy,
        requests: Vec<Request>,
        mode: RecordMode,
    ) -> Result<EngineSim, String> {
        if servers == 0 {
            return Err("need at least one server".into());
        }
        if requests.is_empty() {
            return Err("need at least one request".into());
        }
        if requests.len() >= NIL as usize {
            return Err(format!(
                "engine is limited to {} requests, got {}",
                NIL - 1,
                requests.len()
            ));
        }
        for (i, r) in requests.iter().enumerate() {
            if r.id != i {
                return Err(format!(
                    "request ids must be 0..n in arrival order (index {i} has id {})",
                    r.id
                ));
            }
            if !(r.service_ms > 0.0 && r.service_ms.is_finite()) {
                return Err(format!(
                    "service times must be positive and finite, got {} (request {i})",
                    r.service_ms
                ));
            }
            if !(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0) {
                return Err(format!(
                    "arrival times must be non-negative and finite, got {} (request {i})",
                    r.arrival_ms
                ));
            }
        }
        if !requests
            .windows(2)
            .all(|w| w[0].arrival_ms <= w[1].arrival_ms)
        {
            return Err("requests must arrive in non-decreasing time order".into());
        }
        let discipline = Discipline::from_kind(scheduler)?;
        let n = requests.len();
        Ok(EngineSim {
            servers,
            discipline,
            admission,
            mode,
            arena: RequestArena::new(requests),
            // Outstanding dynamic events: at most one completion per server
            // plus a bounded backlog of stale batch timers. Growth past
            // this is a one-time high-water-mark event, after which
            // steady-state push/pop reuses the freed slots.
            heap: EventHeap::with_capacity(2 * servers + 8),
            queue: IndexQueue::new(),
            cursor: 0,
            seq: n as u64,
            idle: vec![true; servers],
            busy_ms: vec![0.0; servers],
            running: vec![(0.0, Chain::EMPTY); servers],
            outcomes: match mode {
                RecordMode::Full => vec![None; n],
                RecordMode::Lean => Vec::new(),
            },
            sojourns: match mode {
                RecordMode::Full => Vec::with_capacity(n),
                RecordMode::Lean => Vec::new(),
            },
            lean: match mode {
                RecordMode::Full => None,
                RecordMode::Lean => Some(LeanStats::new("engine")),
            },
            dropped: 0,
            makespan: 0.0,
            events: 0,
        })
    }

    /// Rewind to the pre-run state over the same workload, keeping every
    /// allocation (heap storage, outcome slab, sojourn capacity, histogram
    /// buckets). Allocation-free, so a reset + [`run`](EngineSim::run)
    /// cycle is too — what the benchmarks and the steady-state alloc guard
    /// drive.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.queue.clear();
        self.cursor = 0;
        self.seq = self.arena.len() as u64;
        for f in &mut self.idle {
            *f = true;
        }
        for b in &mut self.busy_ms {
            *b = 0.0;
        }
        for r in &mut self.running {
            *r = (0.0, Chain::EMPTY);
        }
        for o in &mut self.outcomes {
            *o = None;
        }
        self.sojourns.clear();
        if let Some(l) = &self.lean {
            l.reset();
        }
        self.dropped = 0;
        self.makespan = 0.0;
        self.events = 0;
    }

    /// Drive the event loop to completion. Allocation-free in both record
    /// modes (post-warmup; the heap may grow once to its high-water mark on
    /// the first run). `obs`, when present, is fed every transition exactly
    /// as the original loop fed it; observation never feeds back into
    /// scheduling, so observed and unobserved runs stay bit-identical.
    pub fn run(&mut self, mut obs: Option<&mut SimObserver>) {
        let n = self.arena.len();
        loop {
            // Merge the arrival cursor against the dynamic-event heap. The
            // next arrival's seq is its id (`cursor`), every heap entry's
            // seq is ≥ n > cursor, so arrivals win exact time ties — the
            // same total (time, seq) order the seeded heap produced.
            let take_arrival = match (
                if self.cursor < n {
                    Some(self.arena.get(self.cursor as u32).arrival_ms)
                } else {
                    None
                },
                self.heap.peek(),
            ) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some((t, _))) => !matches!(a.total_cmp(&t), std::cmp::Ordering::Greater),
            };
            self.events += 1;
            if take_arrival {
                let id = self.cursor as u32;
                self.cursor += 1;
                let req = self.arena.get(id);
                let now = req.arrival_ms;
                self.makespan = self.makespan.max(now);
                let queue_len = self.queue.len();
                if let Some(o) = obs.as_deref_mut() {
                    o.on_arrival(now, req.id);
                    o.on_route(now, req.id, 0, 0.0);
                }
                if let Some(l) = &mut self.lean {
                    l.queue_depth.observe_mut(queue_len as f64);
                }
                if self.admission.admits(queue_len) {
                    self.queue.push_back(&mut self.arena, id);
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_admit(now, req.id, 0);
                        o.on_queue_enter(now, req.id, 0);
                    }
                } else {
                    self.dropped += 1;
                    if self.mode == RecordMode::Full {
                        self.outcomes[req.id] = Some(Outcome::Dropped);
                    }
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_drop(now, req.id, 0, queue_len as f64);
                    }
                }
                self.dispatch_idle(now, obs.as_deref_mut());
            } else if let Some((now, _seq, kind)) = self.heap.pop() {
                match kind {
                    EngineEvent::Completion { server } => {
                        let s = server as usize;
                        self.makespan = self.makespan.max(now);
                        let (start_ms, chain) = self.running[s];
                        self.running[s] = (0.0, Chain::EMPTY);
                        let mut id = chain.head;
                        for _ in 0..chain.count {
                            let r = self.arena.get(id);
                            match self.mode {
                                RecordMode::Full => {
                                    self.sojourns.push(now - r.arrival_ms);
                                    self.outcomes[r.id] = Some(Outcome::Completed {
                                        server: s,
                                        start_ms,
                                        finish_ms: now,
                                    });
                                }
                                RecordMode::Lean => {
                                    if let Some(l) = &mut self.lean {
                                        l.sojourn_ms.observe_mut(now - r.arrival_ms);
                                        l.service_ms.observe_mut(r.service_ms);
                                    }
                                }
                            }
                            if let Some(o) = obs.as_deref_mut() {
                                o.on_service_end(now, r.id, 0, s, now - start_ms);
                                o.on_complete(now, r.id, 0, now - r.arrival_ms);
                            }
                            id = self.arena.next_of(id);
                        }
                        self.idle[s] = true;
                    }
                    EngineEvent::Timer => {}
                }
                self.dispatch_idle(now, obs.as_deref_mut());
            }
        }
    }

    /// Let every idle server pull work from the shared queue. `start = now`
    /// reuses the event time verbatim — the engine never recomputes a
    /// `max(arrival, free_at)`, so dispatch arithmetic matches the legacy
    /// recurrence exactly. Allocation-free: batches are detached chains.
    fn dispatch_idle(&mut self, now: f64, mut obs: Option<&mut SimObserver>) {
        let discipline = self.discipline;
        for s in 0..self.servers {
            if !self.idle[s] {
                continue;
            }
            match discipline.dispatch(&mut self.queue, &mut self.arena, now) {
                Action::Serve(chain) => {
                    debug_assert!(chain.count >= 1, "discipline dispatched an empty chain");
                    let mut service = f64::NEG_INFINITY;
                    let mut id = chain.head;
                    for _ in 0..chain.count {
                        let r = self.arena.get(id);
                        service = f64::max(service, r.service_ms);
                        if let Some(o) = obs.as_deref_mut() {
                            o.on_queue_leave(now, r.id, 0);
                            o.on_service_start(now, r.id, 0, s, chain.count as usize);
                        }
                        id = self.arena.next_of(id);
                    }
                    self.busy_ms[s] += service;
                    self.idle[s] = false;
                    self.running[s] = (now, chain);
                    self.heap.push(
                        now + service,
                        self.seq,
                        EngineEvent::Completion { server: s as u32 },
                    );
                    self.seq += 1;
                }
                Action::WaitUntil(t) => {
                    self.heap.push(t, self.seq, EngineEvent::Timer);
                    self.seq += 1;
                    break;
                }
                Action::Idle => break,
            }
        }
    }

    /// Events processed by the last [`run`](EngineSim::run) (arrivals +
    /// completions + timers) — the numerator of the benchmarks' events/sec.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The streaming statistics of a [`RecordMode::Lean`] run (`None` in
    /// full mode, where [`EngineReport::records`] carries the raw data).
    pub fn lean_stats(&self) -> Option<&LeanStats> {
        self.lean.as_ref()
    }

    /// Assemble the run's [`EngineReport`]. Cold path (allocates the report
    /// vectors); callable repeatedly, and `&self` so a sweep driver can
    /// report then [`reset`](EngineSim::reset) and run again.
    pub fn report(&self, device: &DeviceModel) -> EngineReport {
        let n = self.arena.len();
        let busy_total = self.busy_ms.iter().sum::<f64>();
        let per_server_utilization = self
            .busy_ms
            .iter()
            .map(|&b| {
                if self.makespan > 0.0 {
                    (b / self.makespan).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let (serving, records) = match self.mode {
            RecordMode::Full => {
                let records = self
                    .arena
                    .requests()
                    .iter()
                    .map(|&request| {
                        // lint:allow(panic-in-lib, reason = "every admitted request completes and every rejected one is marked Dropped before the heap drains; a hole here is engine corruption, not user input")
                        let outcome = self.outcomes[request.id].expect("resolved by drain");
                        RequestRecord { request, outcome }
                    })
                    .collect();
                (
                    finalize_report(
                        device,
                        self.sojourns.clone(),
                        busy_total,
                        self.makespan,
                        self.servers,
                    ),
                    records,
                )
            }
            RecordMode::Lean => {
                // lint:allow(panic-in-lib, reason = "lean mode always carries LeanStats by construction")
                let lean = self.lean.as_ref().expect("lean mode carries stats");
                (
                    report_from_histogram(
                        device,
                        &lean.sojourn_ms,
                        busy_total,
                        self.makespan,
                        self.servers,
                    ),
                    Vec::new(),
                )
            }
        };
        EngineReport {
            serving,
            arrivals: n,
            completed: n - self.dropped,
            dropped: self.dropped,
            per_server_busy_ms: self.busy_ms.clone(),
            per_server_utilization,
            records,
        }
    }
}

/// Run the discrete-event engine.
///
/// # Panics
/// Panics on a non-positive arrival rate, an invalid profile, zero requests
/// or zero servers. [`try_simulate_engine`] is the non-panicking form.
pub fn simulate_engine(device: &DeviceModel, cfg: &EngineConfig) -> EngineReport {
    match try_simulate_engine(device, cfg) {
        Ok(report) => report,
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_simulate_engine is the non-panicking form")
        Err(e) => panic!("{e}"),
    }
}

/// Run the discrete-event engine, rejecting an invalid configuration as
/// `Err` instead of panicking — what sweep drivers use to skip a bad cell
/// of a parameter matrix and keep going.
pub fn try_simulate_engine(
    device: &DeviceModel,
    cfg: &EngineConfig,
) -> Result<EngineReport, String> {
    let requests = engine_workload(cfg)?;
    try_run_engine(device, cfg.servers, cfg.scheduler, cfg.admission, requests)
}

/// [`try_simulate_engine`] with a [`SimObserver`] fed the event stream.
///
/// Observation is read-only: the report is bit-identical to the unobserved
/// run (pinned by `observed_run_matches_unobserved_bit_for_bit`); the
/// observer accumulates queue-depth gauges, sojourn/service histograms and
/// a span-event trace on the side.
pub fn try_simulate_engine_observed(
    device: &DeviceModel,
    cfg: &EngineConfig,
    obs: &mut SimObserver,
) -> Result<EngineReport, String> {
    let requests = engine_workload(cfg)?;
    run_engine_core(
        device,
        cfg.servers,
        cfg.scheduler,
        cfg.admission,
        requests,
        Some(obs),
    )
}

/// Validate `cfg` and pre-generate its workload with the legacy loop's
/// exact RNG draw order (inter-arrival uniform, then service-quantile
/// uniform, per request; [`ArrivalProcess::Poisson`] pins that order) — the
/// anchor of the bit-identical 1-server FIFO conformance.
fn engine_workload(cfg: &EngineConfig) -> Result<Vec<Request>, String> {
    let w = &cfg.workload;
    if !(w.arrival_rate_hz > 0.0 && w.arrival_rate_hz.is_finite()) {
        return Err(format!(
            "arrival rate must be positive and finite, got {}",
            w.arrival_rate_hz
        ));
    }
    w.profile.try_valid()?;
    if w.requests == 0 {
        return Err("need at least one request".into());
    }
    Ok(ArrivalProcess::poisson(w.arrival_rate_hz)
        .generate(w.requests, w.seed)
        .into_iter()
        .enumerate()
        .map(|(id, (arrival_ms, quantile))| Request {
            id,
            arrival_ms,
            service_ms: w.profile.sample(quantile),
        })
        .collect())
}

/// Run the discrete-event engine over a **pre-generated** workload — the
/// extension point for non-Poisson arrivals: pair any
/// [`ArrivalProcess::generate`] stream with any [`crate::cost::CostProfile`]
/// and feed the result here. [`simulate_engine`] is exactly this function
/// behind a Poisson workload generator.
///
/// Requests must be in non-decreasing arrival order with ids `0..n` matching
/// their position, positive finite service times.
///
/// # Panics
/// Panics on zero servers, an empty workload, or a malformed request stream.
/// [`try_run_engine`] is the non-panicking form.
pub fn run_engine(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
) -> EngineReport {
    match try_run_engine(device, servers, scheduler, admission, requests) {
        Ok(report) => report,
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_run_engine is the non-panicking form")
        Err(e) => panic!("{e}"),
    }
}

/// [`run_engine`] with malformed inputs rejected as `Err` instead of a
/// panic. The workload contract is unchanged: requests in non-decreasing
/// arrival order with ids `0..n` matching their position and positive
/// finite service times.
pub fn try_run_engine(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
) -> Result<EngineReport, String> {
    run_engine_core(device, servers, scheduler, admission, requests, None)
}

/// [`try_run_engine`] with a [`SimObserver`] fed the event stream (see
/// [`try_simulate_engine_observed`] for the read-only guarantee).
pub fn try_run_engine_observed(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
    obs: &mut SimObserver,
) -> Result<EngineReport, String> {
    run_engine_core(device, servers, scheduler, admission, requests, Some(obs))
}

/// The one entry-point tail behind both run paths: a [`RecordMode::Full`]
/// [`EngineSim`] constructed, run once, and reported. `obs`, when present,
/// is fed every arrival/admission/queue/service transition; it never feeds
/// back into scheduling, so observed and unobserved runs are bit-identical.
fn run_engine_core(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
    obs: Option<&mut SimObserver>,
) -> Result<EngineReport, String> {
    let mut sim = EngineSim::new(servers, scheduler, admission, requests, RecordMode::Full)?;
    sim.run(obs);
    Ok(sim.report(device))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::device::DeviceModel;
    use crate::pipeline::simulate;

    fn workload(rate: f64, profile: CostProfile, requests: usize, seed: u64) -> ServingConfig {
        ServingConfig {
            arrival_rate_hz: rate,
            profile,
            requests,
            seed,
        }
    }

    #[test]
    fn single_fifo_matches_legacy_exactly() {
        let d = DeviceModel::raspberry_pi4();
        for profile in [
            CostProfile::constant(2.4),
            CostProfile::bimodal(2.0, 13.0, 0.9),
            CostProfile::empirical(vec![1.0, 1.5, 2.0, 9.0, 12.5]),
        ] {
            let w = workload(120.0, profile, 4_000, 42);
            let legacy = simulate(&d, &w);
            let engine = simulate_engine(&d, &EngineConfig::single_fifo(w));
            assert_eq!(engine.serving.mean_sojourn_ms, legacy.mean_sojourn_ms);
            assert_eq!(engine.serving.p50_ms, legacy.p50_ms);
            assert_eq!(engine.serving.p95_ms, legacy.p95_ms);
            assert_eq!(engine.serving.p99_ms, legacy.p99_ms);
            assert_eq!(engine.serving.utilization, legacy.utilization);
            assert_eq!(engine.serving.makespan_ms, legacy.makespan_ms);
            assert_eq!(engine.serving.energy_j, legacy.energy_j);
            assert_eq!(engine.dropped, 0);
            assert_eq!(engine.completed, 4_000);
        }
    }

    #[test]
    fn more_servers_cut_queueing() {
        let d = DeviceModel::raspberry_pi4();
        let w = workload(300.0, CostProfile::bimodal(2.0, 13.0, 0.8), 8_000, 7);
        let one = simulate_engine(&d, &EngineConfig::single_fifo(w.clone()));
        let four = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 4,
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert!(four.serving.mean_sojourn_ms < one.serving.mean_sojourn_ms);
        assert_eq!(four.per_server_utilization.len(), 4);
        assert!(four.per_server_utilization.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn bounded_admission_drops_under_overload() {
        let d = DeviceModel::raspberry_pi4();
        // ρ ≈ 400/s · 4 ms = 1.6: heavily unstable without shedding.
        let w = workload(400.0, CostProfile::constant(4.0), 6_000, 3);
        let cfg = EngineConfig {
            workload: w,
            servers: 1,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Bounded { max_queue: 16 },
        };
        assert!(!cfg.is_stable());
        let r = simulate_engine(&d, &cfg);
        assert!(r.dropped > 0, "overload with a 16-deep queue must shed");
        assert_eq!(r.completed + r.dropped, r.arrivals);
        assert!((r.drop_rate() - r.dropped as f64 / 6_000.0).abs() < 1e-15);
        // The bounded queue caps sojourns: ≤ (cap + 1) services.
        assert!(r.serving.p99_ms <= 17.0 * 4.0 + 1e-9);
    }

    #[test]
    fn shortest_service_beats_fifo_on_mean_sojourn() {
        let d = DeviceModel::raspberry_pi4();
        // Heavy bimodal traffic near saturation: SES lets easy requests
        // overtake queue-building hard ones.
        let w = workload(230.0, CostProfile::bimodal(2.0, 13.0, 0.8), 10_000, 11);
        let fifo = simulate_engine(&d, &EngineConfig::single_fifo(w.clone()));
        let ses = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 1,
                scheduler: SchedulerKind::ShortestService,
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert!(
            ses.serving.mean_sojourn_ms < fifo.serving.mean_sojourn_ms,
            "ses {} !< fifo {}",
            ses.serving.mean_sojourn_ms,
            fifo.serving.mean_sojourn_ms
        );
    }

    #[test]
    fn batch_scheduler_fuses_and_completes_everything() {
        let d = DeviceModel::raspberry_pi4();
        let w = workload(500.0, CostProfile::bimodal(2.0, 13.0, 0.9), 5_000, 19);
        let r = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 2,
                scheduler: SchedulerKind::Batch {
                    max_batch: 8,
                    max_wait_ms: 4.0,
                },
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert_eq!(r.completed, 5_000);
        assert_eq!(r.dropped, 0);
        // Batching fuses work: total busy time is below the sum of solo
        // services (which the 1-server FIFO run pays in full).
        let solo_total: f64 = r.records.iter().map(|rec| rec.request.service_ms).sum();
        let busy_total: f64 = r.per_server_busy_ms.iter().sum();
        assert!(
            busy_total < solo_total,
            "batching should fuse: busy {busy_total} !< solo {solo_total}"
        );
        // Every member completes no earlier than its own solo service.
        for rec in &r.records {
            match rec.outcome {
                Outcome::Completed { finish_ms, .. } => {
                    assert!(finish_ms - rec.request.arrival_ms >= rec.request.service_ms - 1e-9)
                }
                Outcome::Dropped => panic!("unbounded admission dropped a request"),
            }
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let d = DeviceModel::gci_cpu();
        let cfg = EngineConfig {
            workload: workload(800.0, CostProfile::bimodal(0.4, 1.4, 0.7), 5_000, 23),
            servers: 3,
            scheduler: SchedulerKind::ShortestService,
            admission: AdmissionPolicy::Bounded { max_queue: 32 },
        };
        let a = simulate_engine(&d, &cfg);
        let b = simulate_engine(&d, &cfg);
        assert_eq!(a.serving.mean_sojourn_ms, b.serving.mean_sojourn_ms);
        assert_eq!(a.serving.p99_ms, b.serving.p99_ms);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn labels_are_stable() {
        // Each kind's label must agree with its built scheduler's name.
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::ShortestService,
            SchedulerKind::Batch {
                max_batch: 8,
                max_wait_ms: 2.0,
            },
        ] {
            assert_eq!(kind.label(), kind.build().name());
        }
        assert_eq!(SchedulerKind::Fifo.label(), "fifo");
        assert_eq!(SchedulerKind::ShortestService.label(), "ses");
        assert_eq!(AdmissionPolicy::Unbounded.label(), "unbounded");
        assert_eq!(AdmissionPolicy::Bounded { max_queue: 64 }.label(), "q64");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_zero_servers() {
        let d = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: workload(10.0, CostProfile::constant(1.0), 10, 0),
            servers: 0,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
        };
        let _ = simulate_engine(&d, &cfg);
    }

    #[test]
    fn observed_run_matches_unobserved_bit_for_bit() {
        use crate::observe::SimObserver;
        use obs::ObsMode;
        let d = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: workload(300.0, CostProfile::bimodal(2.0, 13.0, 0.85), 2_000, 11),
            servers: 2,
            scheduler: SchedulerKind::Batch {
                max_batch: 4,
                max_wait_ms: 3.0,
            },
            admission: AdmissionPolicy::Bounded { max_queue: 16 },
        };
        let base = try_simulate_engine(&d, &cfg).unwrap();
        let mut obs = SimObserver::with_mode(ObsMode::Trace, &["device"], "local", 4096);
        let observed = try_simulate_engine_observed(&d, &cfg, &mut obs).unwrap();

        assert_eq!(
            base.serving.mean_sojourn_ms,
            observed.serving.mean_sojourn_ms
        );
        assert_eq!(base.serving.p99_ms, observed.serving.p99_ms);
        assert_eq!(base.serving.energy_j, observed.serving.energy_j);
        assert_eq!(base.dropped, observed.dropped);
        assert_eq!(base.completed, observed.completed);
        for (a, b) in base.records.iter().zip(&observed.records) {
            assert_eq!(a.outcome, b.outcome);
        }

        // The observer's ledger agrees with the report.
        let r = obs.registry();
        assert_eq!(
            r.counter_by_name("sim.arrivals"),
            Some(observed.arrivals as u64)
        );
        assert_eq!(
            r.counter_by_name("sim.completed"),
            Some(observed.completed as u64)
        );
        assert_eq!(
            r.counter_by_name("sim.dropped"),
            Some(observed.dropped as u64)
        );
        let h = r.histogram_by_name("sim.sojourn_ms").unwrap();
        assert_eq!(h.count(), observed.completed as u64);
        // Every queued request eventually leaves: live depth returns to 0.
        let (depth, max_depth) = r.gauge_by_name("tier.device.queue_depth").unwrap();
        assert_eq!(depth, 0.0);
        assert!(max_depth >= 1.0);
        assert!(!obs.trace().is_empty());
    }
}
