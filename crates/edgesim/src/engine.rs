//! Discrete-event multi-server serving engine.
//!
//! Where [`crate::pipeline::simulate`] is a closed-form single-server FIFO
//! recurrence, this module is a proper event-driven simulator: a binary
//! event heap (arrivals, completions, batch-deadline timers) drives N
//! parallel servers, a pluggable [`Scheduler`] decides what a free server
//! runs next, and an [`AdmissionPolicy`] decides whether an arriving
//! request is queued at all — with dropped requests accounted per run, not
//! silently discarded.
//!
//! # Conformance with the legacy simulator
//!
//! The workload is pre-generated with **exactly** the legacy loop's RNG
//! draw order — one inter-arrival uniform, then one service uniform, per
//! request — and the engine's dispatch arithmetic reuses the event times
//! themselves (`start = now`), never recomputing them. Together with the
//! shared report finalizer in [`crate::pipeline`], this makes the 1-server
//! FIFO unbounded configuration reproduce `simulate`'s [`ServingReport`]
//! bit for bit; `tests/trait_conformance.rs` and the edgesim proptests pin
//! that equivalence.
//!
//! # Batching semantics
//!
//! A [`SchedulerKind::Batch`] dispatch fuses up to `max_batch` queued
//! requests into one launch: the batch occupies its server for the *maximum*
//! of its members' solo service times (members execute as one fused kernel,
//! so the batch is as slow as its slowest member), and every member
//! completes when the batch does. A partial batch launches when the oldest
//! queued request has waited `max_wait_ms`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::arrivals::ArrivalProcess;
use crate::device::DeviceModel;
use crate::observe::SimObserver;
use crate::pipeline::{finalize_report, ServingConfig, ServingReport};

/// One request flowing through the engine. The service requirement is
/// pre-sampled from the workload's [`crate::cost::CostProfile`] at
/// arrival-generation time (for an early-exit model it encodes which path the request takes),
/// so schedulers may use it as the request's expected service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival index (0-based, in arrival order).
    pub id: usize,
    /// Absolute arrival time, ms.
    pub arrival_ms: f64,
    /// Service requirement, ms.
    pub service_ms: f64,
}

/// A scheduler's answer to "server is free at `now` — what should it run?".
#[derive(Debug, Clone)]
pub enum Dispatch {
    /// Run these requests as one batch (singleton for non-batching
    /// disciplines). Must be non-empty.
    Serve(Vec<Request>),
    /// Nothing ready yet, but something is queued: re-ask at this time
    /// (batch-accumulation deadline).
    WaitUntil(f64),
    /// Queue empty — nothing to do until the next arrival.
    Idle,
}

/// A queue discipline. The engine owns arrivals and servers; the scheduler
/// owns the queue. `enqueue` is called once per admitted request,
/// `dispatch` whenever a server is idle, `queue_len` by admission control.
pub trait Scheduler {
    /// Display name for tables/CSV (`fifo`, `ses`, `batch8`, …).
    fn name(&self) -> String;
    /// Accept an admitted request into the queue.
    fn enqueue(&mut self, req: Request);
    /// Decide what a server idle at `now_ms` should do.
    fn dispatch(&mut self, now_ms: f64) -> Dispatch;
    /// Requests currently waiting (not in service).
    fn queue_len(&self) -> usize;
}

/// First-in-first-out, one request per dispatch — the discipline of the
/// legacy simulator.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Request>,
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "fifo".into()
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
    }
    fn dispatch(&mut self, _now_ms: f64) -> Dispatch {
        match self.queue.pop_front() {
            Some(r) => Dispatch::Serve(vec![r]),
            None => Dispatch::Idle,
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Shortest-expected-service first: dispatch the queued request with the
/// smallest service requirement (ties broken by arrival order). Trades
/// worst-case fairness for mean sojourn — under bursty early-exit traffic
/// it lets easy requests overtake the hard ones that build queues.
#[derive(Debug, Default)]
pub struct ShortestServiceScheduler {
    queue: Vec<Request>,
}

impl Scheduler for ShortestServiceScheduler {
    fn name(&self) -> String {
        "ses".into()
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push(req);
    }
    fn dispatch(&mut self, _now_ms: f64) -> Dispatch {
        let best =
            self.queue.iter().enumerate().min_by(|(_, a), (_, b)| {
                a.service_ms.total_cmp(&b.service_ms).then(a.id.cmp(&b.id))
            });
        match best {
            Some((i, _)) => Dispatch::Serve(vec![self.queue.remove(i)]),
            None => Dispatch::Idle,
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Batch accumulation: hold requests until `max_batch` are queued or the
/// oldest has waited `max_wait_ms`, then launch them as one batch (FIFO
/// within the queue). See the module docs for the batch cost model.
#[derive(Debug)]
pub struct BatchScheduler {
    max_batch: usize,
    max_wait_ms: f64,
    queue: VecDeque<Request>,
}

impl BatchScheduler {
    /// A batch-accumulate scheduler.
    ///
    /// # Panics
    /// Panics unless `max_batch ≥ 1` and `max_wait_ms ≥ 0` and finite.
    pub fn new(max_batch: usize, max_wait_ms: f64) -> Self {
        assert!(max_batch >= 1, "batch size must be at least 1");
        assert!(
            max_wait_ms >= 0.0 && max_wait_ms.is_finite(),
            "max wait must be non-negative and finite"
        );
        BatchScheduler {
            max_batch,
            max_wait_ms,
            queue: VecDeque::new(),
        }
    }
}

impl Scheduler for BatchScheduler {
    fn name(&self) -> String {
        format!("batch{}", self.max_batch)
    }
    fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
    }
    fn dispatch(&mut self, now_ms: f64) -> Dispatch {
        let Some(oldest) = self.queue.front() else {
            return Dispatch::Idle;
        };
        let deadline = oldest.arrival_ms + self.max_wait_ms;
        if self.queue.len() >= self.max_batch || now_ms >= deadline {
            let k = self.queue.len().min(self.max_batch);
            Dispatch::Serve(self.queue.drain(..k).collect())
        } else {
            Dispatch::WaitUntil(deadline)
        }
    }
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Declarative scheduler selection for sweeps/CSV (build one fresh per run
/// with [`SchedulerKind::build`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// [`FifoScheduler`].
    Fifo,
    /// [`ShortestServiceScheduler`].
    ShortestService,
    /// [`BatchScheduler`] with these parameters.
    Batch {
        /// Largest batch one dispatch may fuse.
        max_batch: usize,
        /// Longest a partial batch may hold its oldest request, ms.
        max_wait_ms: f64,
    },
}

impl SchedulerKind {
    /// Instantiate a fresh scheduler of this kind.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fifo => Box::<FifoScheduler>::default(),
            SchedulerKind::ShortestService => Box::<ShortestServiceScheduler>::default(),
            SchedulerKind::Batch {
                max_batch,
                max_wait_ms,
            } => Box::new(BatchScheduler::new(max_batch, max_wait_ms)),
        }
    }

    /// Display name (matches the built scheduler's `name()`); allocation-
    /// and panic-free so it is safe in warning/report paths even for a
    /// configuration `build()` would reject.
    pub fn label(&self) -> String {
        match *self {
            SchedulerKind::Fifo => "fifo".into(),
            SchedulerKind::ShortestService => "ses".into(),
            SchedulerKind::Batch { max_batch, .. } => format!("batch{max_batch}"),
        }
    }
}

/// Admission control, consulted once per arrival with the current queue
/// length (requests waiting, not those in service).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything (queues can grow without bound under overload).
    Unbounded,
    /// Admit only while fewer than `max_queue` requests wait; everything
    /// else is dropped and accounted in [`EngineReport::dropped`].
    Bounded {
        /// Queue-length cap.
        max_queue: usize,
    },
}

impl AdmissionPolicy {
    /// Does an arrival get in, given the current queue length?
    pub fn admits(&self, queue_len: usize) -> bool {
        match *self {
            AdmissionPolicy::Unbounded => true,
            AdmissionPolicy::Bounded { max_queue } => queue_len < max_queue,
        }
    }

    /// Display name for tables/CSV.
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Unbounded => "unbounded".into(),
            AdmissionPolicy::Bounded { max_queue } => format!("q{max_queue}"),
        }
    }
}

/// Full configuration of one engine run: the workload (shared with the
/// legacy simulator) plus the serving topology.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Arrival process, service profile, request count, seed.
    pub workload: ServingConfig,
    /// Number of identical parallel servers.
    pub servers: usize,
    /// Queue discipline.
    pub scheduler: SchedulerKind,
    /// Admission control.
    pub admission: AdmissionPolicy,
}

impl EngineConfig {
    /// The configuration that must reproduce the legacy simulator exactly:
    /// one server, FIFO, no admission control.
    pub fn single_fifo(workload: ServingConfig) -> Self {
        EngineConfig {
            workload,
            servers: 1,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
        }
    }

    /// Offered load per server, `ρ = λ·E[S] / N`. `ρ ≥ 1` means the system
    /// is unstable without admission control (batching can stretch actual
    /// capacity past this estimate, which ignores batch fusion).
    pub fn per_server_load(&self) -> f64 {
        self.workload
            .profile
            .offered_load(self.workload.arrival_rate_hz)
            / self.servers as f64
    }

    /// Is the offered load serviceable (`ρ < 1` per server)?
    pub fn is_stable(&self) -> bool {
        self.per_server_load() < 1.0
    }
}

/// What happened to one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Served to completion.
    Completed {
        /// Server that ran it.
        server: usize,
        /// Service start, ms.
        start_ms: f64,
        /// Completion, ms.
        finish_ms: f64,
    },
    /// Rejected by admission control.
    Dropped,
}

/// Per-request trace entry (the raw material of the engine's property
/// tests: FIFO order, sojourn ≥ service, conservation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The request as generated.
    pub request: Request,
    /// How it ended.
    pub outcome: Outcome,
}

/// Aggregate + per-server + per-request results of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Sojourn/energy aggregates over *completed* requests, same semantics
    /// as the legacy simulator's report.
    pub serving: ServingReport,
    /// Requests generated.
    pub arrivals: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected by admission control.
    pub dropped: usize,
    /// Busy milliseconds accumulated per server.
    pub per_server_busy_ms: Vec<f64>,
    /// Busy fraction of the makespan, per server.
    pub per_server_utilization: Vec<f64>,
    /// One record per request, in arrival (id) order.
    pub records: Vec<RequestRecord>,
}

impl EngineReport {
    /// Fraction of arrivals dropped by admission control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / self.arrivals as f64
    }
}

#[derive(Debug)]
enum EventKind {
    Arrival(usize),
    Completion { server: usize },
    Timer,
}

#[derive(Debug)]
struct Event {
    time_ms: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then the
        // earliest-scheduled event) pops first. `total_cmp` agrees with
        // `partial_cmp` on the finite times produced here and cannot panic.
        other
            .time_ms
            .total_cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Run the discrete-event engine.
///
/// # Panics
/// Panics on a non-positive arrival rate, an invalid profile, zero requests
/// or zero servers. [`try_simulate_engine`] is the non-panicking form.
pub fn simulate_engine(device: &DeviceModel, cfg: &EngineConfig) -> EngineReport {
    match try_simulate_engine(device, cfg) {
        Ok(report) => report,
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_simulate_engine is the non-panicking form")
        Err(e) => panic!("{e}"),
    }
}

/// Run the discrete-event engine, rejecting an invalid configuration as
/// `Err` instead of panicking — what sweep drivers use to skip a bad cell
/// of a parameter matrix and keep going.
pub fn try_simulate_engine(
    device: &DeviceModel,
    cfg: &EngineConfig,
) -> Result<EngineReport, String> {
    let requests = engine_workload(cfg)?;
    try_run_engine(device, cfg.servers, cfg.scheduler, cfg.admission, requests)
}

/// [`try_simulate_engine`] with a [`SimObserver`] fed the event stream.
///
/// Observation is read-only: the report is bit-identical to the unobserved
/// run (pinned by `observed_run_matches_unobserved_bit_for_bit`); the
/// observer accumulates queue-depth gauges, sojourn/service histograms and
/// a span-event trace on the side.
pub fn try_simulate_engine_observed(
    device: &DeviceModel,
    cfg: &EngineConfig,
    obs: &mut SimObserver,
) -> Result<EngineReport, String> {
    let requests = engine_workload(cfg)?;
    run_engine_core(
        device,
        cfg.servers,
        cfg.scheduler,
        cfg.admission,
        requests,
        Some(obs),
    )
}

/// Validate `cfg` and pre-generate its workload with the legacy loop's
/// exact RNG draw order (inter-arrival uniform, then service-quantile
/// uniform, per request; [`ArrivalProcess::Poisson`] pins that order) — the
/// anchor of the bit-identical 1-server FIFO conformance.
fn engine_workload(cfg: &EngineConfig) -> Result<Vec<Request>, String> {
    let w = &cfg.workload;
    if !(w.arrival_rate_hz > 0.0 && w.arrival_rate_hz.is_finite()) {
        return Err(format!(
            "arrival rate must be positive and finite, got {}",
            w.arrival_rate_hz
        ));
    }
    w.profile.try_valid()?;
    if w.requests == 0 {
        return Err("need at least one request".into());
    }
    Ok(ArrivalProcess::poisson(w.arrival_rate_hz)
        .generate(w.requests, w.seed)
        .into_iter()
        .enumerate()
        .map(|(id, (arrival_ms, quantile))| Request {
            id,
            arrival_ms,
            service_ms: w.profile.sample(quantile),
        })
        .collect())
}

/// Run the discrete-event engine over a **pre-generated** workload — the
/// extension point for non-Poisson arrivals: pair any
/// [`ArrivalProcess::generate`] stream with any [`crate::cost::CostProfile`]
/// and feed the result here. [`simulate_engine`] is exactly this function
/// behind a Poisson workload generator.
///
/// Requests must be in non-decreasing arrival order with ids `0..n` matching
/// their position, positive finite service times.
///
/// # Panics
/// Panics on zero servers, an empty workload, or a malformed request stream.
/// [`try_run_engine`] is the non-panicking form.
pub fn run_engine(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
) -> EngineReport {
    match try_run_engine(device, servers, scheduler, admission, requests) {
        Ok(report) => report,
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_run_engine is the non-panicking form")
        Err(e) => panic!("{e}"),
    }
}

/// [`run_engine`] with malformed inputs rejected as `Err` instead of a
/// panic. The workload contract is unchanged: requests in non-decreasing
/// arrival order with ids `0..n` matching their position and positive
/// finite service times.
pub fn try_run_engine(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
) -> Result<EngineReport, String> {
    run_engine_core(device, servers, scheduler, admission, requests, None)
}

/// [`try_run_engine`] with a [`SimObserver`] fed the event stream (see
/// [`try_simulate_engine_observed`] for the read-only guarantee).
pub fn try_run_engine_observed(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
    obs: &mut SimObserver,
) -> Result<EngineReport, String> {
    run_engine_core(device, servers, scheduler, admission, requests, Some(obs))
}

/// The one event loop behind both entry points. `obs`, when present, is fed
/// every arrival/admission/queue/service transition; it never feeds back
/// into scheduling, so observed and unobserved runs are bit-identical.
fn run_engine_core(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
    mut obs: Option<&mut SimObserver>,
) -> Result<EngineReport, String> {
    if servers == 0 {
        return Err("need at least one server".into());
    }
    if requests.is_empty() {
        return Err("need at least one request".into());
    }
    for (i, r) in requests.iter().enumerate() {
        if r.id != i {
            return Err(format!(
                "request ids must be 0..n in arrival order (index {i} has id {})",
                r.id
            ));
        }
        if !(r.service_ms > 0.0 && r.service_ms.is_finite()) {
            return Err(format!(
                "service times must be positive and finite, got {} (request {i})",
                r.service_ms
            ));
        }
        if !(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0) {
            return Err(format!(
                "arrival times must be non-negative and finite, got {} (request {i})",
                r.arrival_ms
            ));
        }
    }
    if !requests
        .windows(2)
        .all(|w| w[0].arrival_ms <= w[1].arrival_ms)
    {
        return Err("requests must arrive in non-decreasing time order".into());
    }
    let n_requests = requests.len();

    let mut scheduler = scheduler.build();
    let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(n_requests + servers);
    let mut seq = 0u64;
    for r in &requests {
        heap.push(Event {
            time_ms: r.arrival_ms,
            seq,
            kind: EventKind::Arrival(r.id),
        });
        seq += 1;
    }

    let mut idle = vec![true; servers];
    let mut busy_ms = vec![0.0f64; servers];
    // The batch each busy server is running: (start time, members).
    let mut in_flight: Vec<(f64, Vec<Request>)> = vec![(0.0, Vec::new()); servers];
    let mut outcomes: Vec<Option<Outcome>> = vec![None; n_requests];
    let mut sojourns: Vec<f64> = Vec::new();
    let mut dropped = 0usize;
    // Last "real" event time (arrival or completion; stale batch timers
    // must not stretch the makespan).
    let mut makespan = 0.0f64;

    while let Some(ev) = heap.pop() {
        let now = ev.time_ms;
        match ev.kind {
            EventKind::Arrival(id) => {
                makespan = makespan.max(now);
                let queue_len = scheduler.queue_len();
                if let Some(o) = obs.as_deref_mut() {
                    o.on_arrival(now, id);
                    o.on_route(now, id, 0, 0.0);
                }
                if admission.admits(queue_len) {
                    scheduler.enqueue(requests[id]);
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_admit(now, id, 0);
                        o.on_queue_enter(now, id, 0);
                    }
                } else {
                    dropped += 1;
                    outcomes[id] = Some(Outcome::Dropped);
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_drop(now, id, 0, queue_len as f64);
                    }
                }
            }
            EventKind::Completion { server } => {
                makespan = makespan.max(now);
                let (start_ms, batch) =
                    std::mem::replace(&mut in_flight[server], (0.0, Vec::new()));
                for r in batch {
                    sojourns.push(now - r.arrival_ms);
                    outcomes[r.id] = Some(Outcome::Completed {
                        server,
                        start_ms,
                        finish_ms: now,
                    });
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_service_end(now, r.id, 0, server, now - start_ms);
                        o.on_complete(now, r.id, 0, now - r.arrival_ms);
                    }
                }
                idle[server] = true;
            }
            EventKind::Timer => {}
        }

        // Let every idle server ask the scheduler for work. `start = now`
        // reuses the event time verbatim — the engine never recomputes a
        // max(arrival, free_at), so dispatch arithmetic matches the legacy
        // recurrence exactly.
        for s in 0..servers {
            if !idle[s] {
                continue;
            }
            match scheduler.dispatch(now) {
                Dispatch::Serve(batch) => {
                    assert!(!batch.is_empty(), "scheduler dispatched an empty batch");
                    let service = batch
                        .iter()
                        .map(|r| r.service_ms)
                        .fold(f64::NEG_INFINITY, f64::max);
                    busy_ms[s] += service;
                    idle[s] = false;
                    if let Some(o) = obs.as_deref_mut() {
                        for r in &batch {
                            o.on_queue_leave(now, r.id, 0);
                            o.on_service_start(now, r.id, 0, s, batch.len());
                        }
                    }
                    in_flight[s] = (now, batch);
                    heap.push(Event {
                        time_ms: now + service,
                        seq,
                        kind: EventKind::Completion { server: s },
                    });
                    seq += 1;
                }
                Dispatch::WaitUntil(t) => {
                    // A deadline for the queued partial batch; stale timers
                    // are harmless (they just re-ask the scheduler).
                    heap.push(Event {
                        time_ms: t,
                        seq,
                        kind: EventKind::Timer,
                    });
                    seq += 1;
                    break;
                }
                Dispatch::Idle => break,
            }
        }
    }

    let busy_total = busy_ms.iter().sum::<f64>();
    let per_server_utilization = busy_ms
        .iter()
        .map(|&b| {
            if makespan > 0.0 {
                (b / makespan).min(1.0)
            } else {
                0.0
            }
        })
        .collect();
    let records = requests
        .iter()
        .map(|&request| RequestRecord {
            request,
            // lint:allow(panic-in-lib, reason = "every admitted request completes and every rejected one is marked Dropped before the heap drains; a hole here is engine corruption, not user input")
            outcome: outcomes[request.id].expect("every request resolves by drain"),
        })
        .collect();
    let completed = n_requests - dropped;

    Ok(EngineReport {
        serving: finalize_report(device, sojourns, busy_total, makespan, servers),
        arrivals: n_requests,
        completed,
        dropped,
        per_server_busy_ms: busy_ms,
        per_server_utilization,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::device::DeviceModel;
    use crate::pipeline::simulate;

    fn workload(rate: f64, profile: CostProfile, requests: usize, seed: u64) -> ServingConfig {
        ServingConfig {
            arrival_rate_hz: rate,
            profile,
            requests,
            seed,
        }
    }

    #[test]
    fn single_fifo_matches_legacy_exactly() {
        let d = DeviceModel::raspberry_pi4();
        for profile in [
            CostProfile::constant(2.4),
            CostProfile::bimodal(2.0, 13.0, 0.9),
            CostProfile::empirical(vec![1.0, 1.5, 2.0, 9.0, 12.5]),
        ] {
            let w = workload(120.0, profile, 4_000, 42);
            let legacy = simulate(&d, &w);
            let engine = simulate_engine(&d, &EngineConfig::single_fifo(w));
            assert_eq!(engine.serving.mean_sojourn_ms, legacy.mean_sojourn_ms);
            assert_eq!(engine.serving.p50_ms, legacy.p50_ms);
            assert_eq!(engine.serving.p95_ms, legacy.p95_ms);
            assert_eq!(engine.serving.p99_ms, legacy.p99_ms);
            assert_eq!(engine.serving.utilization, legacy.utilization);
            assert_eq!(engine.serving.makespan_ms, legacy.makespan_ms);
            assert_eq!(engine.serving.energy_j, legacy.energy_j);
            assert_eq!(engine.dropped, 0);
            assert_eq!(engine.completed, 4_000);
        }
    }

    #[test]
    fn more_servers_cut_queueing() {
        let d = DeviceModel::raspberry_pi4();
        let w = workload(300.0, CostProfile::bimodal(2.0, 13.0, 0.8), 8_000, 7);
        let one = simulate_engine(&d, &EngineConfig::single_fifo(w.clone()));
        let four = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 4,
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert!(four.serving.mean_sojourn_ms < one.serving.mean_sojourn_ms);
        assert_eq!(four.per_server_utilization.len(), 4);
        assert!(four.per_server_utilization.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn bounded_admission_drops_under_overload() {
        let d = DeviceModel::raspberry_pi4();
        // ρ ≈ 400/s · 4 ms = 1.6: heavily unstable without shedding.
        let w = workload(400.0, CostProfile::constant(4.0), 6_000, 3);
        let cfg = EngineConfig {
            workload: w,
            servers: 1,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Bounded { max_queue: 16 },
        };
        assert!(!cfg.is_stable());
        let r = simulate_engine(&d, &cfg);
        assert!(r.dropped > 0, "overload with a 16-deep queue must shed");
        assert_eq!(r.completed + r.dropped, r.arrivals);
        assert!((r.drop_rate() - r.dropped as f64 / 6_000.0).abs() < 1e-15);
        // The bounded queue caps sojourns: ≤ (cap + 1) services.
        assert!(r.serving.p99_ms <= 17.0 * 4.0 + 1e-9);
    }

    #[test]
    fn shortest_service_beats_fifo_on_mean_sojourn() {
        let d = DeviceModel::raspberry_pi4();
        // Heavy bimodal traffic near saturation: SES lets easy requests
        // overtake queue-building hard ones.
        let w = workload(230.0, CostProfile::bimodal(2.0, 13.0, 0.8), 10_000, 11);
        let fifo = simulate_engine(&d, &EngineConfig::single_fifo(w.clone()));
        let ses = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 1,
                scheduler: SchedulerKind::ShortestService,
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert!(
            ses.serving.mean_sojourn_ms < fifo.serving.mean_sojourn_ms,
            "ses {} !< fifo {}",
            ses.serving.mean_sojourn_ms,
            fifo.serving.mean_sojourn_ms
        );
    }

    #[test]
    fn batch_scheduler_fuses_and_completes_everything() {
        let d = DeviceModel::raspberry_pi4();
        let w = workload(500.0, CostProfile::bimodal(2.0, 13.0, 0.9), 5_000, 19);
        let r = simulate_engine(
            &d,
            &EngineConfig {
                workload: w,
                servers: 2,
                scheduler: SchedulerKind::Batch {
                    max_batch: 8,
                    max_wait_ms: 4.0,
                },
                admission: AdmissionPolicy::Unbounded,
            },
        );
        assert_eq!(r.completed, 5_000);
        assert_eq!(r.dropped, 0);
        // Batching fuses work: total busy time is below the sum of solo
        // services (which the 1-server FIFO run pays in full).
        let solo_total: f64 = r.records.iter().map(|rec| rec.request.service_ms).sum();
        let busy_total: f64 = r.per_server_busy_ms.iter().sum();
        assert!(
            busy_total < solo_total,
            "batching should fuse: busy {busy_total} !< solo {solo_total}"
        );
        // Every member completes no earlier than its own solo service.
        for rec in &r.records {
            match rec.outcome {
                Outcome::Completed { finish_ms, .. } => {
                    assert!(finish_ms - rec.request.arrival_ms >= rec.request.service_ms - 1e-9)
                }
                Outcome::Dropped => panic!("unbounded admission dropped a request"),
            }
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let d = DeviceModel::gci_cpu();
        let cfg = EngineConfig {
            workload: workload(800.0, CostProfile::bimodal(0.4, 1.4, 0.7), 5_000, 23),
            servers: 3,
            scheduler: SchedulerKind::ShortestService,
            admission: AdmissionPolicy::Bounded { max_queue: 32 },
        };
        let a = simulate_engine(&d, &cfg);
        let b = simulate_engine(&d, &cfg);
        assert_eq!(a.serving.mean_sojourn_ms, b.serving.mean_sojourn_ms);
        assert_eq!(a.serving.p99_ms, b.serving.p99_ms);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn labels_are_stable() {
        // Each kind's label must agree with its built scheduler's name.
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::ShortestService,
            SchedulerKind::Batch {
                max_batch: 8,
                max_wait_ms: 2.0,
            },
        ] {
            assert_eq!(kind.label(), kind.build().name());
        }
        assert_eq!(SchedulerKind::Fifo.label(), "fifo");
        assert_eq!(SchedulerKind::ShortestService.label(), "ses");
        assert_eq!(AdmissionPolicy::Unbounded.label(), "unbounded");
        assert_eq!(AdmissionPolicy::Bounded { max_queue: 64 }.label(), "q64");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_zero_servers() {
        let d = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: workload(10.0, CostProfile::constant(1.0), 10, 0),
            servers: 0,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
        };
        let _ = simulate_engine(&d, &cfg);
    }

    #[test]
    fn observed_run_matches_unobserved_bit_for_bit() {
        use crate::observe::SimObserver;
        use obs::ObsMode;
        let d = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: workload(300.0, CostProfile::bimodal(2.0, 13.0, 0.85), 2_000, 11),
            servers: 2,
            scheduler: SchedulerKind::Batch {
                max_batch: 4,
                max_wait_ms: 3.0,
            },
            admission: AdmissionPolicy::Bounded { max_queue: 16 },
        };
        let base = try_simulate_engine(&d, &cfg).unwrap();
        let mut obs = SimObserver::with_mode(ObsMode::Trace, &["device"], "local", 4096);
        let observed = try_simulate_engine_observed(&d, &cfg, &mut obs).unwrap();

        assert_eq!(
            base.serving.mean_sojourn_ms,
            observed.serving.mean_sojourn_ms
        );
        assert_eq!(base.serving.p99_ms, observed.serving.p99_ms);
        assert_eq!(base.serving.energy_j, observed.serving.energy_j);
        assert_eq!(base.dropped, observed.dropped);
        assert_eq!(base.completed, observed.completed);
        for (a, b) in base.records.iter().zip(&observed.records) {
            assert_eq!(a.outcome, b.outcome);
        }

        // The observer's ledger agrees with the report.
        let r = obs.registry();
        assert_eq!(
            r.counter_by_name("sim.arrivals"),
            Some(observed.arrivals as u64)
        );
        assert_eq!(
            r.counter_by_name("sim.completed"),
            Some(observed.completed as u64)
        );
        assert_eq!(
            r.counter_by_name("sim.dropped"),
            Some(observed.dropped as u64)
        );
        let h = r.histogram_by_name("sim.sojourn_ms").unwrap();
        assert_eq!(h.count(), observed.completed as u64);
        // Every queued request eventually leaves: live depth returns to 0.
        let (depth, max_depth) = r.gauge_by_name("tier.device.queue_depth").unwrap();
        assert_eq!(depth, 0.0);
        assert!(max_depth >= 1.0);
        assert!(!obs.trace().is_empty());
    }
}
