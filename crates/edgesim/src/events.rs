//! Preallocated index-based binary event heap for the discrete-event cores.
//!
//! `std::collections::BinaryHeap` served the first engine well, but at
//! million-event scale its costs add up: every event is moved through the
//! sift as a whole struct, the backing `Vec` is sized for *all* arrivals up
//! front, and the max-heap inversion trick (`Ord` flipped so the earliest
//! event pops first) buries the actual ordering contract inside a trait
//! impl. [`EventHeap`] replaces it with an explicit `Vec`-backed binary
//! **min**-heap over `(time_ms, seq)` keys:
//!
//! * **Same total order.** Events pop in ascending `(time_ms, seq)` order —
//!   `time_ms` compared by `f64::total_cmp`, ties broken by the engine's
//!   monotone sequence number. Because every `(time, seq)` pair is unique,
//!   the pop order is a *total* order: any correct heap implementation
//!   yields the identical event sequence, which is what keeps the rebuilt
//!   engine bit-identical to the `BinaryHeap` original (pinned by the
//!   `matches_std_binary_heap_*` tests below and the reference-engine
//!   conformance suites).
//! * **Steady-state allocation-free.** The backing `Vec` is preallocated by
//!   [`EventHeap::with_capacity`] and only ever grows to the run's
//!   high-water mark of *outstanding* events (O(servers + tiers + in-flight
//!   transfers), not O(requests) — arrivals never enter the heap, they are
//!   consumed from the workload slab through a cursor). Pops truncate, the
//!   freed tail slots are reused by later pushes, and [`EventHeap::clear`]
//!   keeps the storage across runs, so the post-warmup push/pop cycle
//!   performs no allocation (`tests/alloc_guard.rs` proves it).
//!
//! The payload `K` is a small `Copy` event descriptor (server/tier indices),
//! so sifts move 24–32 byte entries with no drops, clones or boxing.

/// One heap entry: the `(time, seq)` ordering key plus a `Copy` payload.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    time_ms: f64,
    seq: u64,
    kind: K,
}

/// A `Vec`-backed binary min-heap of timestamped events, ordered by
/// `(time_ms, seq)` ascending. See the [module docs](self) for the ordering
/// and allocation contracts.
#[derive(Debug)]
pub struct EventHeap<K> {
    entries: Vec<Entry<K>>,
}

impl<K: Copy> EventHeap<K> {
    /// A heap with room for `capacity` outstanding events. Cold path: this
    /// is the one place the heap allocates; steady-state push/pop below the
    /// high-water mark never does.
    pub fn with_capacity(capacity: usize) -> EventHeap<K> {
        EventHeap {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of outstanding events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current slot capacity (diagnostics; the run high-water mark once
    /// warm).
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Drop every outstanding event but keep the allocated storage — what
    /// run-to-run reuse (`reset`) calls so repeated runs stay
    /// allocation-free.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Does entry `a` order strictly before entry `b`? `(time, seq)`
    /// lexicographic, times compared by `total_cmp` (the engines only
    /// produce finite times, where `total_cmp` agrees with `<`).
    fn before(a: &Entry<K>, b: &Entry<K>) -> bool {
        match a.time_ms.total_cmp(&b.time_ms) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.seq < b.seq,
        }
    }

    /// Push an event. Allocation-free below the preallocated capacity /
    /// high-water mark (amortized `Vec` growth above it, reached at most
    /// once per run shape).
    pub fn push(&mut self, time_ms: f64, seq: u64, kind: K) {
        self.entries.push(Entry { time_ms, seq, kind });
        self.sift_up(self.entries.len() - 1);
    }

    /// The earliest event's `(time_ms, seq)` key without removing it.
    /// Allocation-free; `None` when empty.
    pub fn peek(&self) -> Option<(f64, u64)> {
        self.entries.first().map(|e| (e.time_ms, e.seq))
    }

    /// Remove and return the earliest event as `(time_ms, seq, kind)`.
    /// Allocation-free: the last slot swaps into the root and sifts down,
    /// and the freed tail slot is reused by the next push.
    pub fn pop(&mut self) -> Option<(f64, u64, K)> {
        let last = self.entries.len().checked_sub(1)?;
        self.entries.swap(0, last);
        let top = self.entries.pop()?;
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some((top.time_ms, top.seq, top.kind))
    }

    /// Restore the heap invariant upward from slot `i` (post-push).
    /// Allocation-free: in-place swaps on the backing storage.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::before(&self.entries[i], &self.entries[parent]) {
                break;
            }
            self.entries.swap(i, parent);
            i = parent;
        }
    }

    /// Restore the heap invariant downward from slot `i` (post-pop).
    /// Allocation-free: in-place swaps on the backing storage.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < n && Self::before(&self.entries[right], &self.entries[left]) {
                child = right;
            }
            if !Self::before(&self.entries[child], &self.entries[i]) {
                break;
            }
            self.entries.swap(i, child);
            i = child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// The original engine's event ordering, verbatim: a max-heap entry
    /// whose `Ord` is inverted so the earliest `(time, seq)` pops first.
    #[derive(Debug, PartialEq)]
    struct StdEvent {
        time_ms: f64,
        seq: u64,
    }
    impl Eq for StdEvent {}
    impl PartialOrd for StdEvent {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for StdEvent {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time_ms
                .total_cmp(&self.time_ms)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Interleaved pushes and pops over both heaps must yield the same
    /// sequence. `times` deliberately includes heavy ties — the index heap
    /// must reproduce the `BinaryHeap` order through the seq tiebreak alone.
    fn pin_against_std(ops: &[(bool, f64)]) {
        let mut ours: EventHeap<u32> = EventHeap::with_capacity(4);
        let mut std_heap: BinaryHeap<StdEvent> = BinaryHeap::new();
        let mut seq = 0u64;
        for &(is_push, time) in ops {
            if is_push {
                ours.push(time, seq, seq as u32);
                std_heap.push(StdEvent { time_ms: time, seq });
                seq += 1;
            } else {
                let got = ours.pop();
                let want = std_heap.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some((t, s, k)), Some(w)) => {
                        assert_eq!((t, s), (w.time_ms, w.seq));
                        assert_eq!(k as u64, s, "payload rides with its key");
                    }
                    (g, w) => panic!("heap divergence: ours {g:?} vs std {w:?}"),
                }
            }
        }
        // Drain both completely: the tails must agree too.
        while let Some(w) = std_heap.pop() {
            let (t, s, _) = ours.pop().expect("ours drained early");
            assert_eq!((t, s), (w.time_ms, w.seq));
        }
        assert!(ours.pop().is_none());
    }

    #[test]
    fn matches_std_binary_heap_on_tie_heavy_workloads() {
        // All-ties: every event at t=5, order decided purely by seq.
        let all_ties: Vec<(bool, f64)> = (0..64).map(|_| (true, 5.0)).collect();
        pin_against_std(&all_ties);

        // Two timestamps, interleaved pushes and pops.
        let mut ops = Vec::new();
        for i in 0..200 {
            ops.push((true, if i % 3 == 0 { 1.0 } else { 2.0 }));
            if i % 4 == 3 {
                ops.push((false, 0.0));
            }
        }
        pin_against_std(&ops);
    }

    #[test]
    fn matches_std_binary_heap_on_mixed_times() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let ops: Vec<(bool, f64)> = (0..300)
                .map(|_| {
                    let push = rng.gen::<f64>() < 0.6;
                    // Coarse quantization forces frequent exact ties.
                    let t = (rng.gen::<f64>() * 8.0).floor();
                    (push, t)
                })
                .collect();
            pin_against_std(&ops);
        }
    }

    #[test]
    fn steady_state_reuses_freed_slots_without_growth() {
        let mut h: EventHeap<u8> = EventHeap::with_capacity(8);
        let cap = h.capacity();
        // Warm to the high-water mark, then cycle push/pop far past it.
        for i in 0..8u64 {
            h.push(i as f64, i, 0);
        }
        for i in 8..10_000u64 {
            let popped = h.pop().expect("nonempty");
            assert!(popped.0 <= i as f64);
            h.push(i as f64, i, 0);
            assert_eq!(h.capacity(), cap, "steady-state push/pop must not grow");
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.capacity(), cap, "clear keeps storage for reuse");
    }
}
