//! Tiered edge–cloud offload simulation over heterogeneous serving pools.
//!
//! The paper's early-exit premise — easy inputs exit locally, hard inputs
//! pay the full network — becomes, in deployment, *easy inputs exit at the
//! edge, hard inputs offload to a stronger tier*. This module models that
//! deployment: a [`FleetConfig`] is an ordered list of [`Tier`]s (tier 0 is
//! the local edge pool where every request first lands; higher tiers are
//! remote pools reached over a [`NetworkLink`]), each tier with its own
//! device, [`CostProfile`], server count, scheduler and admission policy.
//!
//! A pluggable [`OffloadPolicy`] decides per-request routing at the gateway:
//!
//! * [`AlwaysLocal`] — everything serves at tier 0. A single-tier fleet
//!   under this policy reproduces [`crate::engine::simulate_engine`]
//!   **bit for bit** (pinned by conformance tests here and in
//!   `tests/trait_conformance.rs`): the fleet is a strict superset of the
//!   engine, not a fork of it.
//! * [`ExitConfidence`] — offload the hard-path fraction. A request whose
//!   difficulty quantile falls past the local profile's
//!   [`CostProfile::easy_fraction`] (for a measured early-exit model, its
//!   observed exit rate) would have missed the early exit anyway, so it
//!   ships to the cheapest remote tier instead of occupying the edge.
//! * [`SloSojourn`] — offload on *predicted* latency: when the local
//!   backlog implies a sojourn beyond the SLO, route to whichever tier
//!   (network transfer included) predicts the smallest end-to-end sojourn.
//!
//! Requests carry a **difficulty quantile** drawn by the
//! [`ArrivalProcess`], and every tier prices the same quantile through its
//! own profile ([`CostProfile::sample`]): a hard input is hard on every
//! device — only the price differs. Offloaded requests pay the link's
//! transfer time before entering the remote queue, and their reported
//! sojourn is end-to-end (gateway arrival → remote completion).
//!
//! [`simulate_fleet`] returns a [`FleetReport`]: per-tier serving reports
//! (sojourn percentiles, utilization, energy on that tier's device), routing
//! and drop accounting with the conservation invariant
//! `completed + dropped == offered` (offloading re-routes a request, it
//! never loses one), and the SLO ledger — a *violation* is a completed
//! request whose end-to-end sojourn exceeds [`FleetConfig::slo_ms`], or a
//! dropped request (a shed request certainly missed its deadline).
//!
//! The loop itself is the flat-index core reified as [`FleetSim`]: requests
//! live in a [`crate::arena::RequestArena`] slab, dynamic events in a
//! preallocated [`crate::events::EventHeap`] (gateway arrivals merge from
//! the sorted workload slab through a cursor and never touch the heap),
//! per-tier queues are intrusive chains dispatched by monomorphized
//! [`crate::arena::Discipline`]s, and steady-state execution is
//! allocation-free. Per-request records are the default
//! ([`RecordMode::Full`]); [`RecordMode::Lean`] swaps the O(n) record and
//! sojourn vectors for preallocated streaming histograms so million-request
//! sweeps hold no per-request state beyond the workload itself.

use obs::{BucketSpec, Histogram};

use crate::arena::{Action, Chain, Discipline, IndexQueue, RequestArena, NIL};
use crate::arrivals::ArrivalProcess;
use crate::cost::CostProfile;
use crate::device::DeviceModel;
use crate::engine::{AdmissionPolicy, LeanStats, RecordMode, Request, SchedulerKind};
use crate::events::EventHeap;
use crate::observe::SimObserver;
use crate::pipeline::{finalize_report, percentile_sorted, report_from_histogram, ServingReport};

/// The uplink between the local gateway and a remote serving tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkLink {
    /// One-way latency (propagation + handshake), ms.
    pub latency_ms: f64,
    /// Uplink bandwidth, megabits per second.
    pub bandwidth_mbps: f64,
    /// Request payload shipped per offload (the model input), bytes.
    pub payload_bytes: u64,
}

impl NetworkLink {
    /// A link with explicit parameters.
    ///
    /// # Panics
    /// Panics on a non-finite/negative latency or non-positive bandwidth.
    pub fn new(latency_ms: f64, bandwidth_mbps: f64, payload_bytes: u64) -> Self {
        let l = NetworkLink {
            latency_ms,
            bandwidth_mbps,
            payload_bytes,
        };
        l.assert_valid();
        l
    }

    /// Wired LAN between co-located pools: sub-millisecond, ~1 Gb/s.
    pub fn lan(payload_bytes: u64) -> Self {
        NetworkLink::new(0.3, 1000.0, payload_bytes)
    }

    /// 802.11 uplink from an edge device: a few ms, tens of Mb/s.
    pub fn wifi(payload_bytes: u64) -> Self {
        NetworkLink::new(3.0, 50.0, payload_bytes)
    }

    /// WAN to a cloud region: tens of ms, uplink-constrained.
    pub fn wan(payload_bytes: u64) -> Self {
        NetworkLink::new(25.0, 20.0, payload_bytes)
    }

    /// Validate invariants, returning a description of the first violation.
    pub fn try_valid(&self) -> Result<(), String> {
        if !(self.latency_ms >= 0.0 && self.latency_ms.is_finite()) {
            return Err(format!(
                "link latency must be non-negative and finite, got {}",
                self.latency_ms
            ));
        }
        if !(self.bandwidth_mbps > 0.0 && self.bandwidth_mbps.is_finite()) {
            return Err(format!(
                "link bandwidth must be positive and finite, got {}",
                self.bandwidth_mbps
            ));
        }
        Ok(())
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics with the [`NetworkLink::try_valid`] message on violation.
    pub fn assert_valid(&self) {
        if let Err(e) = self.try_valid() {
            // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_valid is the non-panicking form")
            panic!("{e}");
        }
    }

    /// Time to ship one request over this link, ms: latency plus payload
    /// serialization at the uplink bandwidth.
    pub fn transfer_ms(&self) -> f64 {
        // bytes · 8 bits / (mbps · 10⁶ bit/s) in seconds → ms.
        self.latency_ms + self.payload_bytes as f64 * 8e-3 / self.bandwidth_mbps
    }
}

/// One serving pool of the fleet: a homogeneous group of servers on one
/// device, priced by one profile, behind one queue.
#[derive(Debug, Clone)]
pub struct Tier {
    /// Display name for tables/CSV (`edge`, `cloud-cpu`, …).
    pub name: String,
    /// The device this tier's servers run on (drives the energy model).
    pub device: DeviceModel,
    /// Parallel servers in the pool.
    pub servers: usize,
    /// Service-time distribution of the model **on this tier's device**
    /// (e.g. [`crate::cost::CostProfile::empirical`] measured via
    /// `ModelRegistry::empirical_profile` per device).
    pub profile: CostProfile,
    /// Queue discipline of the pool.
    pub scheduler: SchedulerKind,
    /// Admission control of the pool.
    pub admission: AdmissionPolicy,
    /// Link from the gateway: `None` for tier 0 (local), required for
    /// every remote tier.
    pub link: Option<NetworkLink>,
}

/// A fleet topology plus the workload that stresses it.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Serving pools; tier 0 is the local edge pool where every request
    /// first arrives.
    pub tiers: Vec<Tier>,
    /// When requests arrive at the gateway.
    pub arrivals: ArrivalProcess,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed (workload generation).
    pub seed: u64,
    /// End-to-end latency SLO, ms: a completed request whose gateway→finish
    /// sojourn exceeds this counts as a violation (as does every drop).
    pub slo_ms: f64,
}

impl FleetConfig {
    /// The configuration that must reproduce the engine exactly: one local
    /// tier with the engine's topology, Poisson arrivals from the engine's
    /// workload, and (under [`AlwaysLocal`]) no offloading at all.
    pub fn single_tier(
        name: &str,
        device: DeviceModel,
        engine: &crate::engine::EngineConfig,
        slo_ms: f64,
    ) -> Self {
        FleetConfig {
            tiers: vec![Tier {
                name: name.to_string(),
                device,
                servers: engine.servers,
                profile: engine.workload.profile.clone(),
                scheduler: engine.scheduler,
                admission: engine.admission,
                link: None,
            }],
            arrivals: ArrivalProcess::poisson(engine.workload.arrival_rate_hz),
            requests: engine.workload.requests,
            seed: engine.workload.seed,
            slo_ms,
        }
    }

    /// Validate the whole configuration, returning a description of the
    /// first violation — sweep drivers call this up front so one bad cell
    /// reports an error instead of panicking mid-matrix.
    pub fn try_valid(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("fleet needs at least one tier".into());
        }
        if self.requests == 0 {
            return Err("need at least one request".into());
        }
        if !(self.slo_ms > 0.0 && self.slo_ms.is_finite()) {
            return Err(format!(
                "SLO must be positive and finite, got {} ms",
                self.slo_ms
            ));
        }
        self.arrivals.try_valid()?;
        for (i, tier) in self.tiers.iter().enumerate() {
            let ctx = |e: String| format!("tier {i} ({}): {e}", tier.name);
            if tier.name.is_empty() {
                return Err(format!("tier {i}: name must be non-empty"));
            }
            if tier.servers == 0 {
                return Err(ctx("need at least one server".into()));
            }
            tier.profile.try_valid().map_err(&ctx)?;
            match (i, &tier.link) {
                (0, Some(_)) => return Err(ctx("tier 0 is local and must not have a link".into())),
                (0, None) => {}
                (_, None) => return Err(ctx("remote tiers need a link".into())),
                (_, Some(link)) => link.try_valid().map_err(ctx)?,
            }
        }
        Ok(())
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics with the [`FleetConfig::try_valid`] message on violation.
    pub fn assert_valid(&self) {
        if let Err(e) = self.try_valid() {
            // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_valid is the non-panicking form")
            panic!("{e}");
        }
    }

    /// Offered load per local server if nothing offloads,
    /// `ρ = λ̄·E[S₀] / N₀` — the [`AlwaysLocal`] stability estimate.
    pub fn local_load_per_server(&self) -> f64 {
        self.arrivals.mean_rate_hz() * self.tiers[0].profile.mean_ms()
            / 1000.0
            / self.tiers[0].servers as f64
    }

    /// Aggregate service capacity of the whole fleet, requests/second —
    /// each tier contributes `servers · 1000 / E[S]` at its own price.
    pub fn aggregate_capacity_hz(&self) -> f64 {
        self.tiers
            .iter()
            .map(|t| t.servers as f64 * 1000.0 / t.profile.mean_ms())
            .sum()
    }
}

/// One request at the gateway: when it arrived and how hard it is. The
/// difficulty quantile maps to a concrete service time per tier via that
/// tier's [`CostProfile::sample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRequest {
    /// Arrival index (0-based, in gateway-arrival order).
    pub id: usize,
    /// Absolute arrival time at the gateway, ms.
    pub gateway_ms: f64,
    /// Difficulty quantile in `[0, 1)` shared across tiers.
    pub quantile: f64,
}

/// A read-only view of one tier's congestion at a routing decision.
#[derive(Debug, Clone, Copy)]
pub struct TierSnapshot {
    /// Requests waiting in the tier's queue (not in service).
    pub queue_len: usize,
    /// Total service time of the queued requests, ms.
    pub queued_work_ms: f64,
    /// Remaining service time of in-flight batches across servers, ms.
    pub in_flight_remaining_ms: f64,
    /// Servers in the pool.
    pub servers: usize,
}

impl TierSnapshot {
    /// Predicted queueing wait for a new arrival, ms: outstanding work
    /// spread over the pool's servers.
    pub fn predicted_wait_ms(&self) -> f64 {
        (self.queued_work_ms + self.in_flight_remaining_ms) / self.servers as f64
    }
}

/// Per-request routing: where should a gateway arrival serve?
///
/// `route` sees the request's difficulty quantile, the full topology, and a
/// congestion snapshot per tier; it returns a tier index (`0` = serve
/// locally). `&mut self` admits stateful policies (token buckets, learned
/// controllers) even though the shipped ones are stateless.
pub trait OffloadPolicy {
    /// Display name for tables/CSV (`local`, `exit_conf`, `slo`).
    fn name(&self) -> String;
    /// Does [`route`](OffloadPolicy::route) read the congestion snapshots?
    /// Return `false` (as the static policies do) to let the simulator skip
    /// building them — they cost a per-arrival scan of every tier's
    /// servers, pure overhead for routing that never looks at load.
    fn needs_snapshots(&self) -> bool {
        true
    }
    /// Choose the serving tier for a request arriving at the gateway.
    /// `snapshots` is empty when
    /// [`needs_snapshots`](OffloadPolicy::needs_snapshots) returned `false`.
    fn route(&mut self, quantile: f64, tiers: &[Tier], snapshots: &[TierSnapshot]) -> usize;
}

/// Serve everything at tier 0 — the no-offload baseline, and the policy
/// under which a single-tier fleet is bit-identical to the engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysLocal;

impl OffloadPolicy for AlwaysLocal {
    fn name(&self) -> String {
        "local".into()
    }
    fn needs_snapshots(&self) -> bool {
        false
    }
    fn route(&mut self, _quantile: f64, _tiers: &[Tier], _snapshots: &[TierSnapshot]) -> usize {
        0
    }
}

/// Offload the hard-path fraction: a request whose difficulty quantile
/// reaches past the local profile's measured easy fraction (an early-exit
/// model's observed exit rate) ships to the cheapest remote tier — it would
/// have paid the full local network anyway.
///
/// This policy routes on early-exit *structure*, so it needs a local
/// profile with measurable spread. A single-point profile — constant-cost
/// models like CBNet, but also a measured early-exit model whose exits
/// never fired — has `easy_fraction() == 1` and offloads nothing: with
/// every request priced identically there is no "hard path" to ship, and
/// whether that one price is too high is a latency question for
/// [`SloSojourn`], not an exit-rate one. Likewise with no remote tier,
/// everything serves locally.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExitConfidence;

impl OffloadPolicy for ExitConfidence {
    fn name(&self) -> String {
        "exit_conf".into()
    }
    fn needs_snapshots(&self) -> bool {
        false
    }
    fn route(&mut self, quantile: f64, tiers: &[Tier], _snapshots: &[TierSnapshot]) -> usize {
        if quantile < tiers[0].profile.easy_fraction() {
            return 0;
        }
        cheapest_remote(tiers).unwrap_or(0)
    }
}

/// The remote tier with the smallest static cost (transfer + mean service).
fn cheapest_remote(tiers: &[Tier]) -> Option<usize> {
    tiers
        .iter()
        .enumerate()
        .skip(1)
        .filter_map(|(i, t)| {
            // A validated config gives every remote tier a link; skipping a
            // linkless tier (rather than panicking) keeps routing total.
            let link = t.link.as_ref()?;
            Some((i, link.transfer_ms() + t.profile.mean_ms()))
        })
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
}

/// Offload on predicted latency: when the local backlog implies a sojourn
/// beyond `slo_ms`, route to whichever tier — network transfer included —
/// predicts the smallest end-to-end sojourn (tier 0 wins ties, so light
/// load never offloads).
#[derive(Debug, Clone, Copy)]
pub struct SloSojourn {
    /// The latency budget the prediction is checked against, ms.
    pub slo_ms: f64,
}

impl OffloadPolicy for SloSojourn {
    fn name(&self) -> String {
        "slo".into()
    }
    fn route(&mut self, quantile: f64, tiers: &[Tier], snapshots: &[TierSnapshot]) -> usize {
        let predict = |i: usize| -> f64 {
            let transfer = tiers[i].link.as_ref().map_or(0.0, |l| l.transfer_ms());
            transfer + snapshots[i].predicted_wait_ms() + tiers[i].profile.sample(quantile)
        };
        // One prediction per tier, earliest minimum kept — tier 0 wins ties
        // and light load never offloads. (A `min_by` over a `predict(i)`
        // closure picks the same tier but re-evaluates each prediction per
        // comparison, which is measurable at fleet event rates.)
        let local = predict(0);
        if local <= self.slo_ms {
            return 0;
        }
        let mut best = 0;
        let mut best_ms = local;
        for i in 1..tiers.len() {
            let p = predict(i);
            if p < best_ms {
                best = i;
                best_ms = p;
            }
        }
        best
    }
}

/// Declarative policy selection for sweeps/CSV (build one fresh per run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffloadPolicyKind {
    /// [`AlwaysLocal`].
    AlwaysLocal,
    /// [`ExitConfidence`].
    ExitConfidence,
    /// [`SloSojourn`] with this latency budget, ms.
    SloSojourn {
        /// Predicted-sojourn budget, ms.
        slo_ms: f64,
    },
}

impl OffloadPolicyKind {
    /// Instantiate a fresh policy of this kind.
    pub fn build(&self) -> Box<dyn OffloadPolicy> {
        match *self {
            OffloadPolicyKind::AlwaysLocal => Box::new(AlwaysLocal),
            OffloadPolicyKind::ExitConfidence => Box::new(ExitConfidence),
            OffloadPolicyKind::SloSojourn { slo_ms } => Box::new(SloSojourn { slo_ms }),
        }
    }

    /// Display name (matches the built policy's `name()`).
    pub fn label(&self) -> String {
        match self {
            OffloadPolicyKind::AlwaysLocal => "local".into(),
            OffloadPolicyKind::ExitConfidence => "exit_conf".into(),
            OffloadPolicyKind::SloSojourn { .. } => "slo".into(),
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetOutcome {
    /// Served to completion at its routed tier.
    Completed {
        /// Server within the tier that ran it.
        server: usize,
        /// Service start at the tier, ms.
        start_ms: f64,
        /// Completion, ms (end of the end-to-end sojourn).
        finish_ms: f64,
    },
    /// Rejected by the routed tier's admission control.
    Dropped,
}

/// Per-request trace entry: routing decision, pricing, and outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRecord {
    /// The request as generated.
    pub request: FleetRequest,
    /// Tier the offload policy routed it to.
    pub tier: usize,
    /// Service requirement at the routed tier, ms.
    pub service_ms: f64,
    /// Network transfer paid before entering the routed tier's queue, ms
    /// (0 for tier 0).
    pub transfer_ms: f64,
    /// How it ended.
    pub outcome: FleetOutcome,
}

/// One tier's share of a fleet run.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Tier display name.
    pub name: String,
    /// Sojourn/energy aggregates over requests **completed at this tier**
    /// (sojourns are end-to-end: gateway arrival → completion, network
    /// transfer included). Energy uses this tier's device over the fleet
    /// makespan.
    pub serving: ServingReport,
    /// Requests the policy routed here.
    pub routed: usize,
    /// Requests served to completion here.
    pub completed: usize,
    /// Requests this tier's admission control dropped.
    pub dropped: usize,
    /// Busy milliseconds accumulated per server.
    pub per_server_busy_ms: Vec<f64>,
    /// Busy fraction of the fleet makespan, per server.
    pub per_server_utilization: Vec<f64>,
}

/// Aggregate + per-tier + per-request results of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-tier reports, in [`FleetConfig::tiers`] order.
    pub tiers: Vec<TierReport>,
    /// Requests generated at the gateway.
    pub offered: usize,
    /// Requests served to completion (at any tier).
    pub completed: usize,
    /// Requests dropped by admission control (at any tier).
    pub dropped: usize,
    /// Requests routed to a remote tier (a routing count, not a terminal
    /// outcome: `completed + dropped == offered` regardless).
    pub offloaded: usize,
    /// The SLO violations were counted against, ms.
    pub slo_ms: f64,
    /// Completed requests whose end-to-end sojourn exceeded the SLO, plus
    /// all dropped requests.
    pub slo_violations: usize,
    /// Fleet-wide aggregates: end-to-end sojourn percentiles over all
    /// completed requests, utilization over all servers of all tiers, and
    /// total energy (sum of the tiers' device-specific energies).
    pub end_to_end: ServingReport,
    /// One record per request, in gateway-arrival (id) order (empty for
    /// the report of a [`RecordMode::Lean`] [`FleetSim`]).
    pub records: Vec<FleetRecord>,
}

impl FleetReport {
    /// Fraction of offered requests routed to a remote tier.
    pub fn offload_rate(&self) -> f64 {
        self.offloaded as f64 / self.offered as f64
    }

    /// Fraction of offered requests dropped by admission control.
    pub fn drop_rate(&self) -> f64 {
        self.dropped as f64 / self.offered as f64
    }

    /// Fraction of offered requests that missed the SLO (completed late or
    /// dropped).
    pub fn slo_violation_rate(&self) -> f64 {
        self.slo_violations as f64 / self.offered as f64
    }
}

/// Dynamic (post-gateway) events of the fleet loop. Gateway arrivals are
/// not heap events at all: they merge from the sorted workload slab through
/// a cursor, carrying implicit seq `id` — below every dynamic seq, so ties
/// resolve exactly as the old all-in-one `BinaryHeap` did.
#[derive(Debug, Clone, Copy)]
enum FleetEvent {
    /// An offloaded request reaches its remote tier after transfer.
    TierArrival { tier: u32, id: u32 },
    /// A server of `tier` finishes its batch.
    Completion { tier: u32, server: u32 },
    /// A batch-deadline timer of `tier`.
    Timer { tier: u32 },
    /// A scheduled model hot-swap (index into the swap schedule) reaches
    /// its switch time.
    Swap { swap: u32 },
}

/// When a scheduled [`TierSwap`] actually switches the tier over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPolicy {
    /// Switch at the scheduled time, between requests: arrivals priced
    /// strictly before the switch keep the old model, later ones get the
    /// new one.
    Immediate,
    /// Hold the switch until the tier fully drains (empty queue, all
    /// servers idle), then apply at the draining completion. Under
    /// sustained load the swap can stay pending to the end of the run —
    /// [`FleetSim::swaps_applied`] reports what actually switched.
    DrainFirst,
}

/// A scheduled mid-run model rollout for one tier: at `at_ms` the tier's
/// [`CostProfile`] (the serving-relevant summary of its model) and active
/// model version switch atomically between requests. In-flight and
/// already-priced requests keep the old model's pricing — pinned by the
/// hot-swap conformance tests.
#[derive(Debug, Clone)]
pub struct TierSwap {
    /// Tier to roll.
    pub tier: usize,
    /// Scheduled switch time, ms.
    pub at_ms: f64,
    /// The new model's cost profile. After the swap applies, this slot
    /// holds the *old* profile (the two are exchanged in place), which is
    /// how in-flight pricing stays reconstructable without copies.
    pub profile: CostProfile,
    /// Model version the tier serves after the swap (the registry's
    /// `ModelVersion`); surfaced by [`FleetSim::active_version`] and the
    /// observer's swap span.
    pub version: u64,
    /// When the switch is allowed to happen.
    pub policy: SwapPolicy,
}

/// Streaming statistics kept by a [`RecordMode::Lean`] fleet run: per-tier
/// sojourn/service/queue-depth histograms plus one fleet-wide end-to-end
/// sojourn histogram — the lean substitute for the O(n) per-request record
/// and sojourn vectors. All histograms are preallocated at construction and
/// recording is allocation-free.
pub struct FleetLeanStats {
    /// Per-tier histograms, in [`FleetConfig::tiers`] order.
    pub tiers: Vec<LeanStats>,
    /// End-to-end sojourns of every completed request, fleet-wide.
    pub end_to_end_ms: Histogram,
}

impl FleetLeanStats {
    /// Preallocate one histogram set per tier plus the fleet-wide sojourn
    /// histogram (cold path, once per simulator).
    fn new(cfg: &FleetConfig) -> FleetLeanStats {
        FleetLeanStats {
            tiers: cfg
                .tiers
                .iter()
                .enumerate()
                .map(|(i, t)| LeanStats::new(&format!("fleet.tier{i}.{}", t.name)))
                .collect(),
            end_to_end_ms: Histogram::standalone("fleet.end_to_end_ms", BucketSpec::latency_ms()),
        }
    }

    /// Zero every histogram (run-to-run reuse). Allocation-free.
    fn reset(&self) {
        for t in &self.tiers {
            t.reset();
        }
        self.end_to_end_ms.reset();
    }
}

/// Run a fleet simulation under a policy kind (fresh policy per run).
///
/// # Panics
/// Panics on an invalid configuration (see [`FleetConfig::try_valid`]).
/// [`try_simulate_fleet`] is the non-panicking form.
pub fn simulate_fleet(cfg: &FleetConfig, policy: OffloadPolicyKind) -> FleetReport {
    simulate_fleet_with(cfg, policy.build().as_mut())
}

/// [`simulate_fleet`] with an invalid configuration rejected as `Err`
/// instead of a panic — what sweep drivers use to skip a bad cell of a
/// parameter matrix and keep going.
pub fn try_simulate_fleet(
    cfg: &FleetConfig,
    policy: OffloadPolicyKind,
) -> Result<FleetReport, String> {
    try_simulate_fleet_with(cfg, policy.build().as_mut())
}

/// Run a fleet simulation under a caller-supplied (possibly stateful)
/// [`OffloadPolicy`].
///
/// # Panics
/// Panics on an invalid configuration, or if the policy routes to a
/// nonexistent tier. [`try_simulate_fleet_with`] is the non-panicking form.
pub fn simulate_fleet_with(cfg: &FleetConfig, policy: &mut dyn OffloadPolicy) -> FleetReport {
    match try_simulate_fleet_with(cfg, policy) {
        Ok(report) => report,
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_simulate_fleet_with is the non-panicking form")
        Err(e) => panic!("{e}"),
    }
}

/// [`simulate_fleet_with`] with an invalid configuration or a policy that
/// routes to a nonexistent tier rejected as `Err` instead of a panic.
pub fn try_simulate_fleet_with(
    cfg: &FleetConfig,
    policy: &mut dyn OffloadPolicy,
) -> Result<FleetReport, String> {
    simulate_fleet_core(cfg, policy, None)
}

/// [`try_simulate_fleet`] with a [`SimObserver`] fed the event stream.
///
/// Observation is read-only: the report is bit-identical to the unobserved
/// run (pinned by `observed_fleet_matches_unobserved_bit_for_bit`); the
/// observer accumulates per-tier queue-depth gauges, sojourn/service/
/// transfer histograms, per-policy offload counters and a span-event trace
/// on the side.
pub fn try_simulate_fleet_observed(
    cfg: &FleetConfig,
    policy: OffloadPolicyKind,
    obs: &mut SimObserver,
) -> Result<FleetReport, String> {
    simulate_fleet_core(cfg, policy.build().as_mut(), Some(obs))
}

/// [`try_simulate_fleet_with`] with a [`SimObserver`] fed the event stream
/// (see [`try_simulate_fleet_observed`] for the read-only guarantee).
pub fn try_simulate_fleet_with_observed(
    cfg: &FleetConfig,
    policy: &mut dyn OffloadPolicy,
    obs: &mut SimObserver,
) -> Result<FleetReport, String> {
    simulate_fleet_core(cfg, policy, Some(obs))
}

/// [`try_simulate_fleet_with_observed`] plus a mid-run model-swap schedule:
/// each [`TierSwap`] atomically switches its tier's cost profile and active
/// model version between requests. Requests priced at the gateway before a
/// switch complete on the old model (pinned by the hot-swap conformance
/// tests); a swap whose profile equals the tier's current one leaves the
/// report bit-identical to a swap-free run. Returns the report and how many
/// swaps actually applied ([`SwapPolicy::DrainFirst`] swaps can stay
/// pending to the end of the run under sustained load).
pub fn try_simulate_fleet_with_swaps(
    cfg: &FleetConfig,
    policy: &mut dyn OffloadPolicy,
    swaps: &[TierSwap],
    obs: Option<&mut SimObserver>,
) -> Result<(FleetReport, usize), String> {
    let mut sim = FleetSim::new(cfg, RecordMode::Full)?;
    for s in swaps {
        sim.schedule_swap(s.clone())?;
    }
    sim.run(policy, obs)?;
    Ok((sim.report(), sim.swaps_applied()))
}

/// The one event loop behind every fleet entry point: build a Full-record
/// [`FleetSim`], run it once, report. `obs`, when present, is fed every
/// gateway/routing/admission/queue/service transition; it never feeds back
/// into routing or scheduling, so observed and unobserved runs are
/// bit-identical.
fn simulate_fleet_core(
    cfg: &FleetConfig,
    policy: &mut dyn OffloadPolicy,
    obs: Option<&mut SimObserver>,
) -> Result<FleetReport, String> {
    let mut sim = FleetSim::new(cfg, RecordMode::Full)?;
    sim.run(policy, obs)?;
    Ok(sim.report())
}

/// Reusable flat-index fleet simulator — [`crate::engine::EngineSim`]
/// lifted to a tiered topology. Construction validates the config,
/// generates the workload and preallocates every piece of mutable state;
/// [`FleetSim::run`] then executes allocation-free in steady state, and
/// [`FleetSim::reset`] rewinds for another run over the same workload
/// without releasing storage — what perf sweeps use to measure the loop
/// alone.
///
/// [`RecordMode::Full`] (what every `simulate_fleet*` entry point uses)
/// keeps per-request routing, outcomes and per-tier sojourn vectors and
/// produces the same [`FleetReport`] as the original `BinaryHeap` loop,
/// bit for bit. [`RecordMode::Lean`] replaces them with the streaming
/// histograms of [`FleetLeanStats`]; its report carries histogram-derived
/// percentiles and an empty `records` vector.
pub struct FleetSim {
    cfg: FleetConfig,
    mode: RecordMode,
    /// Workload slab sorted by gateway arrival (arrival processes emit
    /// cumulative times); gateway arrival `i` implicitly owns event seq `i`.
    requests: Vec<FleetRequest>,
    arena: RequestArena,
    heap: EventHeap<FleetEvent>,
    /// First flat-server index of each tier; the last entry is the fleet's
    /// total server count.
    server_offset: Vec<usize>,
    disciplines: Vec<Discipline>,
    queues: Vec<IndexQueue>,
    queued_work_ms: Vec<f64>,
    routed: Vec<usize>,
    tier_dropped: Vec<usize>,
    tier_completed: Vec<usize>,
    idle: Vec<bool>,
    busy_ms: Vec<f64>,
    /// The batch each busy server is running: (start, finish, chain).
    running: Vec<(f64, f64, Chain)>,
    /// Per-request routing decision (tier, service there, transfer paid).
    /// Full mode only — Lean re-derives the price on tier arrival (it is a
    /// pure function of tier and quantile) instead of holding an O(n) table.
    routing: Vec<(u32, f64, f64)>,
    /// Per-request outcomes, Full mode only.
    outcomes: Vec<Option<FleetOutcome>>,
    /// Per-tier end-to-end sojourns of completed requests, Full mode only.
    tier_sojourns: Vec<Vec<f64>>,
    lean: Option<FleetLeanStats>,
    /// Congestion-snapshot scratch, refilled in place per gateway event
    /// (the old loop allocated a fresh Vec per arrival).
    snapshots: Vec<TierSnapshot>,
    /// Scheduled mid-run model swaps, in schedule order. An applied swap's
    /// `profile` slot holds the *displaced* (old) profile — the two are
    /// exchanged in place — which is what `profile_at` consults to price
    /// requests that hit the gateway before the switch.
    swaps: Vec<TierSwap>,
    /// Per-swap application time; NaN while unapplied or pending.
    swap_applied_at: Vec<f64>,
    /// DrainFirst swaps whose switch is waiting for the tier to drain.
    swap_pending: Vec<bool>,
    /// Count of set bits in `swap_pending`, so the completion hot path can
    /// skip the pending scan with one compare.
    pending_swaps: usize,
    /// Indices into `swaps` in the order they actually applied; reset
    /// un-applies in reverse.
    swap_order: Vec<u32>,
    /// Per-tier active model version (0 until a swap applies).
    active_version: Vec<u64>,
    cursor: usize,
    seq: u64,
    dropped: usize,
    /// Completed-late count, streamed in Lean mode (Full counts at report).
    late: usize,
    makespan: f64,
    events: u64,
}

impl FleetSim {
    /// Validate the config, generate the workload (for Poisson arrivals
    /// this replays the engine's RNG draw order verbatim — the anchor of
    /// the single-tier conformance) and preallocate all simulation state.
    pub fn new(cfg: &FleetConfig, mode: RecordMode) -> Result<FleetSim, String> {
        cfg.try_valid()?;
        let n = cfg.requests;
        if n >= NIL as usize {
            return Err(format!("fleet is limited to {} requests, got {n}", NIL - 1));
        }
        let requests: Vec<FleetRequest> = cfg
            .arrivals
            .generate(n, cfg.seed)
            .into_iter()
            .enumerate()
            .map(|(id, (gateway_ms, quantile))| FleetRequest {
                id,
                gateway_ms,
                quantile,
            })
            .collect();
        debug_assert!(
            requests
                .windows(2)
                .all(|w| w[0].gateway_ms <= w[1].gateway_ms),
            "arrival processes emit non-decreasing times"
        );
        let tiers = cfg.tiers.len();
        let mut server_offset = Vec::with_capacity(tiers + 1);
        let mut total_servers = 0usize;
        for t in &cfg.tiers {
            server_offset.push(total_servers);
            total_servers += t.servers;
        }
        server_offset.push(total_servers);
        let disciplines = cfg
            .tiers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Discipline::from_kind(t.scheduler)
                    .map_err(|e| format!("tier {i} ({}): {e}", t.name))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FleetSim {
            mode,
            arena: RequestArena::with_capacity(n),
            // Outstanding dynamic events: at most one completion or timer
            // per server plus the offloads currently in transfer; the heap
            // grows to that high-water mark once and is then reused.
            heap: EventHeap::with_capacity(2 * total_servers + tiers + 8),
            server_offset,
            disciplines,
            queues: vec![IndexQueue::new(); tiers],
            queued_work_ms: vec![0.0; tiers],
            routed: vec![0; tiers],
            tier_dropped: vec![0; tiers],
            tier_completed: vec![0; tiers],
            idle: vec![true; total_servers],
            busy_ms: vec![0.0; total_servers],
            running: vec![(0.0, 0.0, Chain::EMPTY); total_servers],
            routing: match mode {
                RecordMode::Full => vec![(0, 0.0, 0.0); n],
                RecordMode::Lean => Vec::new(),
            },
            outcomes: match mode {
                RecordMode::Full => vec![None; n],
                RecordMode::Lean => Vec::new(),
            },
            tier_sojourns: vec![Vec::new(); tiers],
            lean: match mode {
                RecordMode::Full => None,
                RecordMode::Lean => Some(FleetLeanStats::new(cfg)),
            },
            snapshots: vec![
                TierSnapshot {
                    queue_len: 0,
                    queued_work_ms: 0.0,
                    in_flight_remaining_ms: 0.0,
                    servers: 0,
                };
                tiers
            ],
            swaps: Vec::new(),
            swap_applied_at: Vec::new(),
            swap_pending: Vec::new(),
            pending_swaps: 0,
            swap_order: Vec::new(),
            active_version: vec![0; tiers],
            cursor: 0,
            seq: n as u64,
            dropped: 0,
            late: 0,
            makespan: 0.0,
            events: 0,
            requests,
            cfg: cfg.clone(),
        })
    }

    /// Rewind to the pre-run state without releasing any storage, so sweeps
    /// can reuse one simulator across runs. Allocation-free.
    pub fn reset(&mut self) {
        self.heap.clear();
        for q in &mut self.queues {
            q.clear();
        }
        for w in &mut self.queued_work_ms {
            *w = 0.0;
        }
        for r in &mut self.routed {
            *r = 0;
        }
        for d in &mut self.tier_dropped {
            *d = 0;
        }
        for c in &mut self.tier_completed {
            *c = 0;
        }
        for i in &mut self.idle {
            *i = true;
        }
        for b in &mut self.busy_ms {
            *b = 0.0;
        }
        for r in &mut self.running {
            *r = (0.0, 0.0, Chain::EMPTY);
        }
        for r in &mut self.routing {
            *r = (0, 0.0, 0.0);
        }
        for o in &mut self.outcomes {
            *o = None;
        }
        for s in &mut self.tier_sojourns {
            s.clear();
        }
        if let Some(l) = &self.lean {
            l.reset();
        }
        // Un-apply swaps in reverse application order: each exchange puts
        // the displaced profile back, so the tier chain rewinds exactly.
        while let Some(k) = self.swap_order.pop() {
            let k = k as usize;
            let t = self.swaps[k].tier;
            std::mem::swap(&mut self.cfg.tiers[t].profile, &mut self.swaps[k].profile);
        }
        for a in &mut self.swap_applied_at {
            *a = f64::NAN;
        }
        for p in &mut self.swap_pending {
            *p = false;
        }
        self.pending_swaps = 0;
        for v in &mut self.active_version {
            *v = 0;
        }
        self.cursor = 0;
        self.seq = self.requests.len() as u64;
        self.dropped = 0;
        self.late = 0;
        self.makespan = 0.0;
        self.events = 0;
    }

    /// Events processed by the last [`FleetSim::run`] — gateway arrivals,
    /// tier arrivals, completions and batch timers; the numerator of the
    /// events/second throughput metric.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The streaming histograms of a [`RecordMode::Lean`] simulator
    /// (`None` in Full mode).
    pub fn lean_stats(&self) -> Option<&FleetLeanStats> {
        self.lean.as_ref()
    }

    /// The generated gateway workload, in arrival (id) order.
    pub fn requests(&self) -> &[FleetRequest] {
        &self.requests
    }

    /// Schedule a mid-run model swap; returns its index in schedule order.
    /// Must be called on a fresh (new or reset) simulator — the swap events
    /// are injected when [`FleetSim::run`] starts. Cold path: this is the
    /// only allocation the swap machinery performs; applying a swap during
    /// the run is allocation-free.
    pub fn schedule_swap(&mut self, swap: TierSwap) -> Result<usize, String> {
        if self.events != 0 {
            return Err("schedule_swap requires a fresh simulator: call reset() first".into());
        }
        if swap.tier >= self.cfg.tiers.len() {
            // lint:allow(hot-path-alloc, reason = "cold scheduling path: building the diagnostic for an out-of-range tier")
            return Err(format!(
                "swap targets nonexistent tier {} ({} tiers)",
                swap.tier,
                self.cfg.tiers.len()
            ));
        }
        if !(swap.at_ms.is_finite() && swap.at_ms >= 0.0) {
            // lint:allow(hot-path-alloc, reason = "cold scheduling path: building the diagnostic for a bad switch time")
            return Err(format!("swap time {} must be finite and >= 0", swap.at_ms));
        }
        swap.profile
            .try_valid()
            // lint:allow(hot-path-alloc, reason = "cold scheduling path: contextualizing the profile validation error")
            .map_err(|e| format!("swap for tier {}: {e}", swap.tier))?;
        self.swaps.push(swap);
        self.swap_applied_at.push(f64::NAN);
        self.swap_pending.push(false);
        // Reserve application-order capacity up front so the in-run
        // `swap_order.push` never allocates.
        if self.swap_order.capacity() < self.swaps.len() {
            let need = self.swaps.len() - self.swap_order.capacity();
            self.swap_order.reserve(need);
        }
        Ok(self.swaps.len() - 1)
    }

    /// The swap schedule, in schedule order. An applied swap's `profile`
    /// slot holds the profile it displaced.
    pub fn swaps(&self) -> &[TierSwap] {
        &self.swaps
    }

    /// How many scheduled swaps have applied so far this run (DrainFirst
    /// swaps can stay pending to the end under sustained load).
    pub fn swaps_applied(&self) -> usize {
        self.swap_order.len()
    }

    /// When swap `k` (schedule order) applied, or `None` while it has not.
    /// For [`SwapPolicy::DrainFirst`] this is the draining completion's
    /// time, not the scheduled `at_ms`.
    pub fn swap_applied_at(&self, k: usize) -> Option<f64> {
        self.swap_applied_at.get(k).copied().filter(|a| !a.is_nan())
    }

    /// The model version tier `t` currently serves — the last applied
    /// swap's version, or 0 before any swap (and for out-of-range `t`).
    pub fn active_version(&self, t: usize) -> u64 {
        self.active_version.get(t).copied().unwrap_or(0)
    }

    /// True when tier `t` holds no queued or in-flight work — the
    /// [`SwapPolicy::DrainFirst`] switch condition. Allocation-free.
    fn tier_drained(&self, t: usize) -> bool {
        if !self.queues[t].is_empty() {
            return false;
        }
        let base = self.server_offset[t];
        let servers = self.server_offset[t + 1] - base;
        self.idle[base..base + servers].iter().all(|&i| i)
    }

    /// Switch `swaps[k]`'s tier over: exchange the tier's cost profile with
    /// the swap's in place, adopt the new model version, and record the
    /// swap span. Makespan is deliberately untouched — a swap is a
    /// control-plane event, and a no-op swap must leave the report
    /// bit-identical to a swap-free run. Allocation-free.
    fn apply_swap(&mut self, k: usize, now: f64, obs: Option<&mut SimObserver>) {
        let t = self.swaps[k].tier;
        std::mem::swap(&mut self.cfg.tiers[t].profile, &mut self.swaps[k].profile);
        self.active_version[t] = self.swaps[k].version;
        self.swap_applied_at[k] = now;
        self.swap_order.push(k as u32);
        if let Some(o) = obs {
            o.on_swap(now, k, t, self.swaps[k].version);
        }
    }

    /// Apply any pending DrainFirst swaps of tier `t` whose drain condition
    /// now holds, in schedule order. Allocation-free.
    fn apply_pending_swaps(&mut self, t: usize, now: f64, mut obs: Option<&mut SimObserver>) {
        for k in 0..self.swaps.len() {
            if self.swap_pending[k] && self.swaps[k].tier == t && self.tier_drained(t) {
                self.swap_pending[k] = false;
                self.pending_swaps -= 1;
                self.apply_swap(k, now, obs.as_deref_mut());
            }
        }
    }

    /// The cost profile tier `t` was serving at gateway time `g_ms`: the
    /// current profile, unless a swap applied at or after `g_ms` — then the
    /// old profile that swap displaced (held in its schedule slot). Lean
    /// mode re-derives in-flight prices through this lookup so requests
    /// priced before a switch keep the old model's cost; Full mode reads
    /// the gateway-time routing table instead. Allocation-free.
    fn profile_at(&self, t: usize, g_ms: f64) -> &CostProfile {
        for &k in &self.swap_order {
            let k = k as usize;
            if self.swaps[k].tier == t && self.swap_applied_at[k] >= g_ms {
                return &self.swaps[k].profile;
            }
        }
        &self.cfg.tiers[t].profile
    }

    /// Refill the congestion-snapshot scratch for a routing decision at
    /// `now` — one [`TierSnapshot`] per tier, written in place.
    fn fill_snapshots(&mut self, now: f64) {
        for (t, tier) in self.cfg.tiers.iter().enumerate() {
            let base = self.server_offset[t];
            let mut in_flight = 0.0f64;
            for s in 0..tier.servers {
                if !self.idle[base + s] {
                    in_flight += (self.running[base + s].1 - now).max(0.0);
                }
            }
            self.snapshots[t] = TierSnapshot {
                queue_len: self.queues[t].len(),
                queued_work_ms: self.queued_work_ms[t].max(0.0),
                in_flight_remaining_ms: in_flight,
                servers: tier.servers,
            };
        }
    }

    /// Enqueue `id` at tier `t` at time `now` (post-transfer for remote
    /// tiers), subject to the tier's admission control.
    fn admit(
        &mut self,
        t: usize,
        id: u32,
        service_ms: f64,
        now: f64,
        obs: Option<&mut SimObserver>,
    ) {
        let queue_len = self.queues[t].len();
        if let Some(l) = &mut self.lean {
            l.tiers[t].queue_depth.observe_mut(queue_len as f64);
        }
        if self.cfg.tiers[t].admission.admits(queue_len) {
            self.arena.set(
                id,
                Request {
                    id: id as usize,
                    arrival_ms: now,
                    service_ms,
                },
            );
            self.queues[t].push_back(&mut self.arena, id);
            self.queued_work_ms[t] += service_ms;
            if let Some(o) = obs {
                o.on_admit(now, id as usize, t);
                o.on_queue_enter(now, id as usize, t);
            }
        } else {
            self.tier_dropped[t] += 1;
            self.dropped += 1;
            if self.mode == RecordMode::Full {
                self.outcomes[id as usize] = Some(FleetOutcome::Dropped);
            }
            if let Some(o) = obs {
                o.on_drop(now, id as usize, t, queue_len as f64);
            }
        }
    }

    /// Drain the workload: merge gateway arrivals (from the sorted slab,
    /// via `cursor`) with dynamic heap events in (time, seq) order and
    /// process each exactly as the original loop did. Steady-state
    /// execution is allocation-free. Errs if the policy routes to a
    /// nonexistent tier (partial state: call [`FleetSim::reset`] before
    /// reusing the simulator).
    pub fn run(
        &mut self,
        policy: &mut dyn OffloadPolicy,
        mut obs: Option<&mut SimObserver>,
    ) -> Result<(), String> {
        // Inject scheduled swaps on a fresh run. Their seqs n..n+k sit
        // below every dynamic seq minted later, so a swap at time T fires
        // before any completion/timer/tier-arrival at T — but after the
        // gateway arrival at T, whose implicit seq is below n. Shifting
        // every dynamic seq by a constant k preserves their relative order,
        // which is what makes a no-op swap bit-identical to no swap.
        if self.events == 0 {
            for k in 0..self.swaps.len() {
                self.heap.push(
                    self.swaps[k].at_ms,
                    self.seq,
                    FleetEvent::Swap { swap: k as u32 },
                );
                self.seq += 1;
            }
        }
        loop {
            let next_arrival = self.requests.get(self.cursor).map(|r| r.gateway_ms);
            let take_arrival = match (next_arrival, self.heap.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                // Gateway arrival `cursor` carries implicit seq `cursor`,
                // below every dynamic seq (those start at n) — so ties go
                // to the arrival, the old all-in-one heap's exact order.
                (Some(a), Some((t, _))) => !matches!(a.total_cmp(&t), std::cmp::Ordering::Greater),
            };
            self.events += 1;
            if take_arrival {
                let id = self.cursor as u32;
                self.cursor += 1;
                let req = self.requests[id as usize];
                let now = req.gateway_ms;
                self.makespan = self.makespan.max(now);
                // Congestion snapshots cost a scan of every tier's servers;
                // static policies opt out and receive an empty slice.
                let needs = policy.needs_snapshots();
                if needs {
                    self.fill_snapshots(now);
                }
                let snapshots: &[TierSnapshot] = if needs { &self.snapshots } else { &[] };
                let target = policy.route(req.quantile, &self.cfg.tiers, snapshots);
                if target >= self.cfg.tiers.len() {
                    // lint:allow(hot-path-alloc, reason = "cold abort path: a misrouting policy ends the run with an error, the steady-state loop never reaches this")
                    return Err(format!(
                        "offload policy routed to nonexistent tier {target} ({} tiers)",
                        self.cfg.tiers.len()
                    ));
                }
                let service_ms = self.cfg.tiers[target].profile.sample(req.quantile);
                let transfer_ms = self.cfg.tiers[target]
                    .link
                    .as_ref()
                    .map_or(0.0, |l| l.transfer_ms());
                if self.mode == RecordMode::Full {
                    self.routing[id as usize] = (target as u32, service_ms, transfer_ms);
                }
                self.routed[target] += 1;
                if let Some(o) = obs.as_deref_mut() {
                    o.on_arrival(now, req.id);
                    o.on_route(now, req.id, target, transfer_ms);
                }
                if target == 0 {
                    self.admit(0, id, service_ms, now, obs.as_deref_mut());
                    self.dispatch_tier(0, now, obs.as_deref_mut());
                } else {
                    self.heap.push(
                        now + transfer_ms,
                        self.seq,
                        FleetEvent::TierArrival {
                            tier: target as u32,
                            id,
                        },
                    );
                    self.seq += 1;
                }
            } else if let Some((now, _seq, kind)) = self.heap.pop() {
                match kind {
                    FleetEvent::TierArrival { tier, id } => {
                        let t = tier as usize;
                        self.makespan = self.makespan.max(now);
                        // The price was fixed at the gateway and is a pure
                        // function of (tier, quantile): Full reads it back,
                        // Lean re-derives it instead of holding the table.
                        let service_ms = match self.mode {
                            RecordMode::Full => self.routing[id as usize].1,
                            RecordMode::Lean => self
                                .profile_at(t, self.requests[id as usize].gateway_ms)
                                .sample(self.requests[id as usize].quantile),
                        };
                        self.admit(t, id, service_ms, now, obs.as_deref_mut());
                        self.dispatch_tier(t, now, obs.as_deref_mut());
                    }
                    FleetEvent::Completion { tier, server } => {
                        let t = tier as usize;
                        let s = server as usize;
                        self.makespan = self.makespan.max(now);
                        let flat = self.server_offset[t] + s;
                        let (start_ms, _, chain) = self.running[flat];
                        self.running[flat] = (0.0, 0.0, Chain::EMPTY);
                        let mut id = chain.head;
                        for _ in 0..chain.count {
                            let sojourn = now - self.requests[id as usize].gateway_ms;
                            match self.mode {
                                RecordMode::Full => {
                                    self.tier_sojourns[t].push(sojourn);
                                    self.outcomes[id as usize] = Some(FleetOutcome::Completed {
                                        server: s,
                                        start_ms,
                                        finish_ms: now,
                                    });
                                }
                                RecordMode::Lean => {
                                    if let Some(l) = &mut self.lean {
                                        l.tiers[t].sojourn_ms.observe_mut(sojourn);
                                        l.tiers[t]
                                            .service_ms
                                            .observe_mut(self.arena.get(id).service_ms);
                                        l.end_to_end_ms.observe_mut(sojourn);
                                    }
                                    if sojourn > self.cfg.slo_ms {
                                        self.late += 1;
                                    }
                                }
                            }
                            self.tier_completed[t] += 1;
                            if let Some(o) = obs.as_deref_mut() {
                                o.on_service_end(now, id as usize, t, s, now - start_ms);
                                o.on_complete(now, id as usize, t, sojourn);
                            }
                            id = self.arena.next_of(id);
                        }
                        self.idle[flat] = true;
                        self.dispatch_tier(t, now, obs.as_deref_mut());
                        // Only a completion can drain a tier, so this is
                        // the one place DrainFirst swaps are retried.
                        if self.pending_swaps > 0 {
                            self.apply_pending_swaps(t, now, obs.as_deref_mut());
                        }
                    }
                    FleetEvent::Timer { tier } => {
                        self.dispatch_tier(tier as usize, now, obs.as_deref_mut());
                    }
                    FleetEvent::Swap { swap } => {
                        // No makespan update: swaps are control-plane, and
                        // a swap past the last completion must not stretch
                        // the measured run.
                        let k = swap as usize;
                        let t = self.swaps[k].tier;
                        if self.swaps[k].policy == SwapPolicy::Immediate || self.tier_drained(t) {
                            self.apply_swap(k, now, obs.as_deref_mut());
                        } else {
                            self.swap_pending[k] = true;
                            self.pending_swaps += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Engine-identical dispatch loop, restricted to the one tier whose
    /// queue or servers the triggering event could have changed.
    fn dispatch_tier(&mut self, t: usize, now: f64, mut obs: Option<&mut SimObserver>) {
        let discipline = self.disciplines[t];
        let base = self.server_offset[t];
        let servers = self.server_offset[t + 1] - base;
        for s in 0..servers {
            if !self.idle[base + s] {
                continue;
            }
            match discipline.dispatch(&mut self.queues[t], &mut self.arena, now) {
                Action::Serve(chain) => {
                    debug_assert!(chain.count >= 1, "discipline dispatched an empty chain");
                    let mut service = f64::NEG_INFINITY;
                    let mut batch_work = 0.0f64;
                    let mut id = chain.head;
                    for _ in 0..chain.count {
                        let r = self.arena.get(id);
                        service = f64::max(service, r.service_ms);
                        batch_work += r.service_ms;
                        id = self.arena.next_of(id);
                    }
                    self.queued_work_ms[t] -= batch_work;
                    self.busy_ms[base + s] += service;
                    self.idle[base + s] = false;
                    if let Some(o) = obs.as_deref_mut() {
                        let mut id = chain.head;
                        for _ in 0..chain.count {
                            o.on_queue_leave(now, id as usize, t);
                            o.on_service_start(now, id as usize, t, s, chain.count as usize);
                            id = self.arena.next_of(id);
                        }
                    }
                    self.running[base + s] = (now, now + service, chain);
                    self.heap.push(
                        now + service,
                        self.seq,
                        FleetEvent::Completion {
                            tier: t as u32,
                            server: s as u32,
                        },
                    );
                    self.seq += 1;
                }
                Action::WaitUntil(tm) => {
                    self.heap
                        .push(tm, self.seq, FleetEvent::Timer { tier: t as u32 });
                    self.seq += 1;
                    break;
                }
                Action::Idle => break,
            }
        }
    }

    /// Assemble the [`FleetReport`] of the last run. In [`RecordMode::Full`]
    /// this is byte-for-byte the report the original `BinaryHeap` loop
    /// produced; in [`RecordMode::Lean`] sojourn percentiles come from the
    /// streaming histograms and `records` is empty.
    pub fn report(&self) -> FleetReport {
        let n = self.requests.len();
        let makespan = self.makespan;
        let records: Vec<FleetRecord> = match self.mode {
            RecordMode::Full => self
                .requests
                .iter()
                .map(|&request| {
                    let (tier, service_ms, transfer_ms) = self.routing[request.id];
                    // lint:allow(panic-in-lib, reason = "every admitted request completes and every rejected one is marked Dropped before the heap drains; a hole here is engine corruption, not user input")
                    let outcome = self.outcomes[request.id].expect("request resolves by drain");
                    FleetRecord {
                        request,
                        tier: tier as usize,
                        service_ms,
                        transfer_ms,
                        outcome,
                    }
                })
                .collect(),
            RecordMode::Lean => Vec::new(),
        };

        let mut tier_reports = Vec::with_capacity(self.cfg.tiers.len());
        let mut all_sojourns: Vec<f64> = Vec::new();
        let mut busy_all = 0.0f64;
        let mut energy_all = 0.0f64;
        for (t, tier_cfg) in self.cfg.tiers.iter().enumerate() {
            let base = self.server_offset[t];
            let busy = &self.busy_ms[base..base + tier_cfg.servers];
            let busy_total: f64 = busy.iter().sum();
            busy_all += busy_total;
            let (completed, serving) = if self.mode == RecordMode::Full {
                all_sojourns.extend_from_slice(&self.tier_sojourns[t]);
                (
                    self.tier_sojourns[t].len(),
                    finalize_report(
                        &tier_cfg.device,
                        self.tier_sojourns[t].clone(),
                        busy_total,
                        makespan,
                        tier_cfg.servers,
                    ),
                )
            } else {
                // lint:allow(panic-in-lib, reason = "a Lean simulator always carries its histograms; a hole here is engine corruption, not user input")
                let lean = self.lean.as_ref().expect("lean mode carries stats");
                (
                    self.tier_completed[t],
                    report_from_histogram(
                        &tier_cfg.device,
                        &lean.tiers[t].sojourn_ms,
                        busy_total,
                        makespan,
                        tier_cfg.servers,
                    ),
                )
            };
            energy_all += serving.energy_j;
            tier_reports.push(TierReport {
                name: tier_cfg.name.clone(),
                serving,
                routed: self.routed[t],
                completed,
                dropped: self.tier_dropped[t],
                per_server_utilization: busy
                    .iter()
                    .map(|&b| {
                        if makespan > 0.0 {
                            (b / makespan).min(1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect(),
                per_server_busy_ms: busy.to_vec(),
            });
        }

        let total_servers = self.server_offset[self.cfg.tiers.len()];
        let capacity_ms = makespan * total_servers as f64;
        let utilization = if capacity_ms > 0.0 {
            (busy_all / capacity_ms).min(1.0)
        } else {
            0.0
        };
        let (completed, late, end_to_end) = if self.mode == RecordMode::Full {
            let completed = all_sojourns.len();
            let late = all_sojourns
                .iter()
                .filter(|&&s| s > self.cfg.slo_ms)
                .count();
            all_sojourns.sort_by(f64::total_cmp);
            let end_to_end = ServingReport {
                mean_sojourn_ms: if all_sojourns.is_empty() {
                    0.0
                } else {
                    all_sojourns.iter().sum::<f64>() / all_sojourns.len() as f64
                },
                p50_ms: percentile_sorted(&all_sojourns, 0.50),
                p95_ms: percentile_sorted(&all_sojourns, 0.95),
                p99_ms: percentile_sorted(&all_sojourns, 0.99),
                utilization,
                makespan_ms: makespan,
                energy_j: energy_all,
            };
            (completed, late, end_to_end)
        } else {
            // lint:allow(panic-in-lib, reason = "a Lean simulator always carries its histograms; a hole here is engine corruption, not user input")
            let lean = self.lean.as_ref().expect("lean mode carries stats");
            let h = &lean.end_to_end_ms;
            let (mean, p50, p95, p99) = if h.count() == 0 {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                (
                    h.sum() / h.count() as f64,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                )
            };
            let end_to_end = ServingReport {
                mean_sojourn_ms: mean,
                p50_ms: p50,
                p95_ms: p95,
                p99_ms: p99,
                utilization,
                makespan_ms: makespan,
                energy_j: energy_all,
            };
            (self.tier_completed.iter().sum(), self.late, end_to_end)
        };
        let dropped = n - completed;
        let offloaded: usize = self.routed.iter().skip(1).sum();

        FleetReport {
            tiers: tier_reports,
            offered: n,
            completed,
            dropped,
            offloaded,
            slo_ms: self.cfg.slo_ms,
            slo_violations: late + dropped,
            end_to_end,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_engine, EngineConfig};
    use crate::pipeline::ServingConfig;

    fn rpi_tier(name: &str, servers: usize, profile: CostProfile) -> Tier {
        Tier {
            name: name.into(),
            device: DeviceModel::raspberry_pi4(),
            servers,
            profile,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
            link: None,
        }
    }

    fn cloud_tier(name: &str, servers: usize, profile: CostProfile, link: NetworkLink) -> Tier {
        Tier {
            name: name.into(),
            device: DeviceModel::gci_cpu(),
            servers,
            profile,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
            link: Some(link),
        }
    }

    fn two_tier(edge_profile: CostProfile, cloud_profile: CostProfile) -> FleetConfig {
        FleetConfig {
            tiers: vec![
                rpi_tier("edge", 2, edge_profile),
                cloud_tier("cloud", 2, cloud_profile, NetworkLink::wifi(3136)),
            ],
            arrivals: ArrivalProcess::poisson(200.0),
            requests: 8_000,
            seed: 17,
            slo_ms: 40.0,
        }
    }

    #[test]
    fn single_tier_always_local_matches_engine_bit_for_bit() {
        let d = DeviceModel::raspberry_pi4();
        for profile in [
            CostProfile::constant(2.4),
            CostProfile::bimodal(2.0, 13.0, 0.9),
            CostProfile::empirical(vec![1.0, 1.5, 2.0, 9.0, 12.5]),
        ] {
            for (servers, scheduler, admission) in [
                (1, SchedulerKind::Fifo, AdmissionPolicy::Unbounded),
                (
                    3,
                    SchedulerKind::ShortestService,
                    AdmissionPolicy::Bounded { max_queue: 32 },
                ),
                (
                    2,
                    SchedulerKind::Batch {
                        max_batch: 4,
                        max_wait_ms: 5.0,
                    },
                    AdmissionPolicy::Unbounded,
                ),
            ] {
                let engine_cfg = EngineConfig {
                    workload: ServingConfig {
                        arrival_rate_hz: 260.0,
                        profile: profile.clone(),
                        requests: 5_000,
                        seed: 42,
                    },
                    servers,
                    scheduler,
                    admission,
                };
                let engine = simulate_engine(&d, &engine_cfg);
                let fleet = simulate_fleet(
                    &FleetConfig::single_tier("edge", d, &engine_cfg, 50.0),
                    OffloadPolicyKind::AlwaysLocal,
                );
                let tier = &fleet.tiers[0];
                assert_eq!(tier.serving.mean_sojourn_ms, engine.serving.mean_sojourn_ms);
                assert_eq!(tier.serving.p50_ms, engine.serving.p50_ms);
                assert_eq!(tier.serving.p95_ms, engine.serving.p95_ms);
                assert_eq!(tier.serving.p99_ms, engine.serving.p99_ms);
                assert_eq!(tier.serving.utilization, engine.serving.utilization);
                assert_eq!(tier.serving.makespan_ms, engine.serving.makespan_ms);
                assert_eq!(tier.serving.energy_j, engine.serving.energy_j);
                assert_eq!(tier.per_server_busy_ms, engine.per_server_busy_ms);
                assert_eq!(tier.per_server_utilization, engine.per_server_utilization);
                assert_eq!(fleet.completed, engine.completed);
                assert_eq!(fleet.dropped, engine.dropped);
                assert_eq!(fleet.offloaded, 0);
                // End-to-end aggregates collapse to the tier's for one tier.
                assert_eq!(fleet.end_to_end.p99_ms, engine.serving.p99_ms);
                assert_eq!(fleet.end_to_end.utilization, engine.serving.utilization);
            }
        }
    }

    #[test]
    fn exit_confidence_offloads_exactly_the_hard_fraction() {
        let cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.8),
            CostProfile::bimodal(0.2, 1.3, 0.8),
        );
        let r = simulate_fleet(&cfg, OffloadPolicyKind::ExitConfidence);
        // Every request with quantile ≥ 0.8 — and only those — offloads.
        let hard = r
            .records
            .iter()
            .filter(|rec| rec.request.quantile >= 0.8)
            .count();
        assert_eq!(r.offloaded, hard);
        assert_eq!(r.tiers[1].routed, hard);
        assert!(
            (r.offload_rate() - 0.2).abs() < 0.02,
            "{}",
            r.offload_rate()
        );
        // Offloaded requests pay the link before the cloud queue.
        let transfer = NetworkLink::wifi(3136).transfer_ms();
        for rec in r.records.iter().filter(|rec| rec.tier == 1) {
            assert!((rec.transfer_ms - transfer).abs() < 1e-12);
            if let FleetOutcome::Completed { finish_ms, .. } = rec.outcome {
                let sojourn = finish_ms - rec.request.gateway_ms;
                assert!(sojourn >= transfer + rec.service_ms - 1e-9);
            }
        }
    }

    #[test]
    fn exit_confidence_never_offloads_constant_profiles() {
        // A CBNet-style constant local profile has easy fraction 1: every
        // request exits locally, so nothing ships.
        let cfg = two_tier(CostProfile::constant(2.4), CostProfile::constant(0.3));
        let r = simulate_fleet(&cfg, OffloadPolicyKind::ExitConfidence);
        assert_eq!(r.offloaded, 0);
        assert_eq!(r.tiers[1].routed, 0);
        assert_eq!(r.tiers[1].serving.utilization, 0.0);
    }

    #[test]
    fn slo_sojourn_sheds_load_and_cuts_violations_under_overload() {
        // One edge server at ρ ≈ 1.7 without offload: AlwaysLocal melts,
        // SloSojourn ships the overflow to the cloud pool.
        let mut cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.8),
            CostProfile::bimodal(0.2, 1.3, 0.8),
        );
        cfg.tiers[0].servers = 1;
        cfg.arrivals = ArrivalProcess::poisson(400.0);
        assert!(cfg.local_load_per_server() > 1.5);
        let local = simulate_fleet(&cfg, OffloadPolicyKind::AlwaysLocal);
        let slo = simulate_fleet(&cfg, OffloadPolicyKind::SloSojourn { slo_ms: cfg.slo_ms });
        assert!(slo.offloaded > 0);
        assert!(
            slo.slo_violation_rate() < 0.5 * local.slo_violation_rate(),
            "slo {} !< local {}",
            slo.slo_violation_rate(),
            local.slo_violation_rate()
        );
        assert!(slo.end_to_end.p99_ms < local.end_to_end.p99_ms);
    }

    #[test]
    fn conservation_holds_with_bounded_remote_admission() {
        let mut cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.6),
            CostProfile::constant(5.0),
        );
        cfg.tiers[0].servers = 1;
        cfg.tiers[1].servers = 1;
        cfg.tiers[1].admission = AdmissionPolicy::Bounded { max_queue: 4 };
        cfg.arrivals = ArrivalProcess::mmpp(100.0, 1200.0, 300.0, 150.0);
        let r = simulate_fleet(&cfg, OffloadPolicyKind::ExitConfidence);
        assert_eq!(r.completed + r.dropped, r.offered);
        assert_eq!(
            r.tiers.iter().map(|t| t.routed).sum::<usize>(),
            r.offered,
            "every request routes to exactly one tier"
        );
        for t in &r.tiers {
            assert_eq!(t.completed + t.dropped, t.routed);
        }
        assert_eq!(r.offloaded, r.tiers[1].routed);
        assert!(
            r.dropped > 0,
            "a 4-deep remote queue under bursts must shed"
        );
    }

    #[test]
    fn bursty_arrivals_hurt_tails_at_equal_mean_rate() {
        let mk = |arrivals: ArrivalProcess| {
            let mut cfg = two_tier(
                CostProfile::bimodal(2.0, 13.0, 0.8),
                CostProfile::constant(0.4),
            );
            cfg.arrivals = arrivals;
            simulate_fleet(&cfg, OffloadPolicyKind::AlwaysLocal)
        };
        let mmpp = ArrivalProcess::mmpp(40.0, 900.0, 400.0, 120.0);
        let poisson = ArrivalProcess::poisson(mmpp.mean_rate_hz());
        let bursty = mk(mmpp);
        let steady = mk(poisson);
        assert!(
            bursty.end_to_end.p99_ms > steady.end_to_end.p99_ms,
            "bursty p99 {} !> steady p99 {}",
            bursty.end_to_end.p99_ms,
            steady.end_to_end.p99_ms
        );
    }

    #[test]
    fn trace_arrivals_replay_deterministically() {
        let mut cfg = two_tier(CostProfile::constant(2.0), CostProfile::constant(0.3));
        cfg.arrivals = ArrivalProcess::trace(vec![1.0, 1.0, 50.0]);
        cfg.requests = 600;
        let a = simulate_fleet(&cfg, OffloadPolicyKind::SloSojourn { slo_ms: 10.0 });
        let b = simulate_fleet(&cfg, OffloadPolicyKind::SloSojourn { slo_ms: 10.0 });
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_to_end.p99_ms, b.end_to_end.p99_ms);
    }

    #[test]
    fn network_link_transfer_arithmetic() {
        // 1 MB at 8 Mb/s = 1 s of serialization, plus 10 ms latency.
        let l = NetworkLink::new(10.0, 8.0, 1_000_000);
        assert!((l.transfer_ms() - 1010.0).abs() < 1e-9);
        // Presets are ordered: LAN < WiFi < WAN for the same payload.
        let (lan, wifi, wan) = (
            NetworkLink::lan(3136).transfer_ms(),
            NetworkLink::wifi(3136).transfer_ms(),
            NetworkLink::wan(3136).transfer_ms(),
        );
        assert!(lan < wifi && wifi < wan, "{lan} {wifi} {wan}");
    }

    #[test]
    fn config_validation_catches_topology_mistakes() {
        let good = two_tier(CostProfile::constant(1.0), CostProfile::constant(0.2));
        assert!(good.try_valid().is_ok());

        let mut no_link = good.clone();
        no_link.tiers[1].link = None;
        assert!(no_link.try_valid().unwrap_err().contains("need a link"));

        let mut local_link = good.clone();
        local_link.tiers[0].link = Some(NetworkLink::lan(100));
        assert!(local_link
            .try_valid()
            .unwrap_err()
            .contains("must not have a link"));

        let mut bad_profile = good.clone();
        bad_profile.tiers[1].profile = CostProfile::Constant { service_ms: -1.0 };
        assert!(bad_profile.try_valid().unwrap_err().contains("tier 1"));

        let mut bad_slo = good.clone();
        bad_slo.slo_ms = 0.0;
        assert!(bad_slo.try_valid().unwrap_err().contains("SLO"));

        let mut no_tiers = good.clone();
        no_tiers.tiers.clear();
        assert!(no_tiers
            .try_valid()
            .unwrap_err()
            .contains("at least one tier"));
    }

    #[test]
    fn policy_labels_match_built_names() {
        for kind in [
            OffloadPolicyKind::AlwaysLocal,
            OffloadPolicyKind::ExitConfidence,
            OffloadPolicyKind::SloSojourn { slo_ms: 25.0 },
        ] {
            assert_eq!(kind.label(), kind.build().name());
        }
    }

    #[test]
    fn capacity_helpers_are_consistent() {
        let cfg = two_tier(CostProfile::constant(2.0), CostProfile::constant(0.5));
        // edge: 2 servers · 500/s, cloud: 2 · 2000/s.
        assert!((cfg.aggregate_capacity_hz() - 5000.0).abs() < 1e-9);
        // 200/s · 2 ms / 2 servers = 0.2.
        assert!((cfg.local_load_per_server() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn observed_fleet_matches_unobserved_bit_for_bit() {
        use crate::observe::SimObserver;
        use obs::{ObsMode, SpanKind};
        let mut cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.8),
            CostProfile::bimodal(0.4, 1.8, 0.8),
        );
        cfg.tiers[0].admission = AdmissionPolicy::Bounded { max_queue: 24 };
        cfg.requests = 4_000;
        let policy = OffloadPolicyKind::ExitConfidence;

        let base = try_simulate_fleet(&cfg, policy).unwrap();
        let mut obs =
            SimObserver::with_mode(ObsMode::Trace, &["edge", "cloud"], &policy.label(), 1 << 16);
        let observed = try_simulate_fleet_observed(&cfg, policy, &mut obs).unwrap();

        assert_eq!(base.completed, observed.completed);
        assert_eq!(base.dropped, observed.dropped);
        assert_eq!(base.offloaded, observed.offloaded);
        assert_eq!(base.end_to_end.p99_ms, observed.end_to_end.p99_ms);
        assert_eq!(base.end_to_end.energy_j, observed.end_to_end.energy_j);
        for (a, b) in base.tiers.iter().zip(&observed.tiers) {
            assert_eq!(a.serving.mean_sojourn_ms, b.serving.mean_sojourn_ms);
            assert_eq!(a.routed, b.routed);
            assert_eq!(a.dropped, b.dropped);
        }

        // Per-tier ledger agrees with the report.
        let r = obs.registry();
        for (i, name) in ["edge", "cloud"].iter().enumerate() {
            assert_eq!(
                r.counter_by_name(&format!("tier.{name}.routed")),
                Some(observed.tiers[i].routed as u64)
            );
            assert_eq!(
                r.counter_by_name(&format!("tier.{name}.completed")),
                Some(observed.tiers[i].completed as u64)
            );
            assert_eq!(
                r.histogram_by_name(&format!("tier.{name}.sojourn_ms"))
                    .unwrap()
                    .count(),
                observed.tiers[i].completed as u64
            );
        }
        let label = policy.label();
        assert_eq!(
            r.counter_by_name(&format!("policy.{label}.decision.offload")),
            Some(observed.offloaded as u64)
        );
        assert_eq!(
            r.histogram_by_name("tier.cloud.transfer_ms")
                .unwrap()
                .count(),
            observed.offloaded as u64
        );

        // The trace reconstructs tier paths: every offloaded request has an
        // OffloadHop on the cloud tier before its ServiceEnd there.
        let offloaded_req = observed
            .records
            .iter()
            .find(|rec| rec.tier == 1)
            .expect("exit-confidence offloads the hard fraction")
            .request
            .id as u64;
        let path: Vec<SpanKind> = obs
            .trace()
            .iter()
            .filter(|e| e.request == offloaded_req)
            .map(|e| e.kind)
            .collect();
        assert_eq!(path[0], SpanKind::Arrival);
        assert!(path.contains(&SpanKind::OffloadHop));
        let hop = path
            .iter()
            .position(|k| *k == SpanKind::OffloadHop)
            .unwrap();
        let end = path.iter().position(|k| *k == SpanKind::ServiceEnd);
        assert!(end.is_none_or(|e| hop < e), "hop precedes remote service");
    }

    #[test]
    fn noop_swap_is_bit_identical_to_swap_free_run() {
        let cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.8),
            CostProfile::bimodal(0.4, 1.8, 0.8),
        );
        let mut base_policy = OffloadPolicyKind::ExitConfidence.build();
        let base = try_simulate_fleet_with(&cfg, base_policy.as_mut()).unwrap();
        // Swap the cloud tier to an identical profile mid-run: control-plane
        // noise only, the serving report must not move a bit.
        let swap = TierSwap {
            tier: 1,
            at_ms: 500.0,
            profile: cfg.tiers[1].profile.clone(),
            version: 1,
            policy: SwapPolicy::Immediate,
        };
        let mut policy = OffloadPolicyKind::ExitConfidence.build();
        let (swapped, applied) =
            try_simulate_fleet_with_swaps(&cfg, policy.as_mut(), &[swap], None).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(base.records, swapped.records);
        assert_eq!(base.end_to_end.p99_ms, swapped.end_to_end.p99_ms);
        assert_eq!(base.end_to_end.makespan_ms, swapped.end_to_end.makespan_ms);
        assert_eq!(base.end_to_end.energy_j, swapped.end_to_end.energy_j);
        for (a, b) in base.tiers.iter().zip(&swapped.tiers) {
            assert_eq!(a.per_server_busy_ms, b.per_server_busy_ms);
            assert_eq!(a.serving.mean_sojourn_ms, b.serving.mean_sojourn_ms);
        }
    }

    #[test]
    fn inflight_requests_complete_on_the_old_version() {
        // Deterministic arrivals, all work offloaded to the cloud tier with
        // a 10ms -> 1ms rollout halfway: anything priced at the gateway
        // before the switch must complete at the old 10ms cost even if it
        // reaches the tier (post-transfer) after the swap applied.
        let mut cfg = two_tier(CostProfile::constant(50.0), CostProfile::constant(10.0));
        cfg.arrivals = ArrivalProcess::trace(vec![2.0; 400]);
        cfg.requests = 400;
        let swap_at = 401.0; // between gateway arrivals 200 (t=400) and 201 (t=402)
        let swap = TierSwap {
            tier: 1,
            at_ms: swap_at,
            profile: CostProfile::constant(1.0),
            version: 2,
            policy: SwapPolicy::Immediate,
        };
        let mut policy = OffloadPolicyKind::SloSojourn { slo_ms: 0.001 }.build();
        let (r, applied) =
            try_simulate_fleet_with_swaps(&cfg, policy.as_mut(), std::slice::from_ref(&swap), None)
                .unwrap();
        assert_eq!(applied, 1);
        let transfer = NetworkLink::wifi(3136).transfer_ms();
        assert!(
            transfer > 2.0,
            "transfer keeps requests in flight across the swap"
        );
        for rec in r.records.iter().filter(|rec| rec.tier == 1) {
            let expected = if rec.request.gateway_ms < swap_at {
                10.0
            } else {
                1.0
            };
            assert_eq!(
                rec.service_ms, expected,
                "request {} priced at t={} straddled the swap wrong",
                rec.request.id, rec.request.gateway_ms
            );
        }
        assert!(r
            .records
            .iter()
            .any(|rec| rec.tier == 1 && rec.service_ms == 10.0));
        assert!(r
            .records
            .iter()
            .any(|rec| rec.tier == 1 && rec.service_ms == 1.0));

        // Lean mode re-derives prices at tier arrival; the gateway-time
        // profile lookup must reproduce Full's accounting exactly.
        let mut sim = FleetSim::new(&cfg, RecordMode::Lean).unwrap();
        sim.schedule_swap(swap).unwrap();
        let mut lean_policy = OffloadPolicyKind::SloSojourn { slo_ms: 0.001 }.build();
        sim.run(lean_policy.as_mut(), None).unwrap();
        let lean = sim.report();
        assert_eq!(lean.completed, r.completed);
        assert_eq!(lean.dropped, r.dropped);
        assert_eq!(
            lean.end_to_end.mean_sojourn_ms, r.end_to_end.mean_sojourn_ms,
            "lean re-derivation must price in-flight requests on the old version"
        );
        assert_eq!(sim.active_version(1), 2);
        assert_eq!(sim.active_version(0), 0);
    }

    #[test]
    fn swap_conservation_and_reset_replay() {
        let mut cfg = two_tier(
            CostProfile::bimodal(2.0, 13.0, 0.6),
            CostProfile::constant(5.0),
        );
        cfg.tiers[1].admission = AdmissionPolicy::Bounded { max_queue: 4 };
        let mut sim = FleetSim::new(&cfg, RecordMode::Full).unwrap();
        sim.schedule_swap(TierSwap {
            tier: 1,
            at_ms: 2_000.0,
            profile: CostProfile::constant(0.5),
            version: 7,
            policy: SwapPolicy::Immediate,
        })
        .unwrap();
        let mut policy = OffloadPolicyKind::ExitConfidence.build();
        sim.run(policy.as_mut(), None).unwrap();
        let first = sim.report();
        assert_eq!(first.completed + first.dropped, first.offered);
        for t in &first.tiers {
            assert_eq!(t.completed + t.dropped, t.routed);
        }
        assert_eq!(sim.swaps_applied(), 1);
        assert_eq!(sim.swap_applied_at(0), Some(2_000.0));

        // Reset un-applies the swap (profiles rewind in place); a replay
        // must reproduce the run bit for bit, swap and all.
        sim.reset();
        assert_eq!(sim.swaps_applied(), 0);
        assert_eq!(sim.active_version(1), 0);
        let mut policy2 = OffloadPolicyKind::ExitConfidence.build();
        sim.run(policy2.as_mut(), None).unwrap();
        let second = sim.report();
        assert_eq!(first.records, second.records);
        assert_eq!(first.end_to_end.p99_ms, second.end_to_end.p99_ms);
    }

    #[test]
    fn drain_first_defers_until_the_tier_drains() {
        // One slow edge server with a deep backlog at swap time: the
        // DrainFirst switch must wait for the draining completion, while an
        // Immediate switch fires at the scheduled instant.
        let mut cfg = two_tier(CostProfile::constant(30.0), CostProfile::constant(1.0));
        cfg.tiers[0].servers = 1;
        cfg.arrivals = ArrivalProcess::trace(vec![1.0; 64]);
        cfg.requests = 64;
        for (policy_kind, expect_deferred) in [
            (SwapPolicy::Immediate, false),
            (SwapPolicy::DrainFirst, true),
        ] {
            let mut sim = FleetSim::new(&cfg, RecordMode::Full).unwrap();
            sim.schedule_swap(TierSwap {
                tier: 0,
                at_ms: 10.0,
                profile: CostProfile::constant(30.0),
                version: 3,
                policy: policy_kind,
            })
            .unwrap();
            let mut policy = OffloadPolicyKind::AlwaysLocal.build();
            sim.run(policy.as_mut(), None).unwrap();
            assert_eq!(sim.swaps_applied(), 1, "{policy_kind:?}");
            let applied_at = sim.swap_applied_at(0).unwrap();
            if expect_deferred {
                // 64 requests x 30ms on one server: drained only at the end.
                assert!(applied_at >= 64.0 * 30.0, "{policy_kind:?} at {applied_at}");
            } else {
                assert_eq!(applied_at, 10.0);
            }
            assert_eq!(sim.active_version(0), 3);
        }
    }

    #[test]
    fn schedule_swap_rejects_bad_schedules() {
        let cfg = two_tier(CostProfile::constant(2.0), CostProfile::constant(0.5));
        let mut sim = FleetSim::new(&cfg, RecordMode::Full).unwrap();
        let good = TierSwap {
            tier: 0,
            at_ms: 1.0,
            profile: CostProfile::constant(1.0),
            version: 1,
            policy: SwapPolicy::Immediate,
        };
        let mut bad_tier = good.clone();
        bad_tier.tier = 9;
        assert!(sim
            .schedule_swap(bad_tier)
            .unwrap_err()
            .contains("nonexistent tier 9"));
        let mut bad_time = good.clone();
        bad_time.at_ms = f64::NAN;
        assert!(sim.schedule_swap(bad_time).unwrap_err().contains("finite"));
        let mut bad_profile = good.clone();
        bad_profile.profile = CostProfile::Constant { service_ms: -2.0 };
        assert!(sim
            .schedule_swap(bad_profile)
            .unwrap_err()
            .contains("tier 0"));
        // Mid-run scheduling is rejected until reset.
        sim.schedule_swap(good.clone()).unwrap();
        let mut policy = OffloadPolicyKind::AlwaysLocal.build();
        sim.run(policy.as_mut(), None).unwrap();
        assert!(sim.schedule_swap(good).unwrap_err().contains("reset"));
    }
}
