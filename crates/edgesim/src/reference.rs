//! The pre-arena event loops, preserved verbatim as executable baselines.
//!
//! When the engine and fleet cores were rebuilt around flat indices
//! ([`crate::arena`], [`crate::events`]), the original
//! `std::collections::BinaryHeap` + `Box<dyn Scheduler>` +
//! `Vec<Request>`-batch loops moved here unchanged (observer plumbing
//! removed — observation never fed back into scheduling, so the event
//! sequence is identical). They serve two purposes:
//!
//! 1. **Conformance oracle.** `tests/trait_conformance.rs` runs every
//!    scheduler × admission × arrival combination through both loops and
//!    requires bit-identical reports — the strongest possible pin that the
//!    index rewrite changed representation, not semantics.
//! 2. **Live perf baseline.** `bench/src/bin/fleet_perf.rs` measures this
//!    loop on the same workload as the rebuilt engine, so the committed
//!    `BENCH_fleet.json` speedup factor is measured on the current machine
//!    rather than against a stale recorded number.
//!
//! These functions are deliberately *not* optimized — do not "fix" their
//! per-batch allocations; that cost is the baseline being measured.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::device::DeviceModel;
use crate::engine::{
    AdmissionPolicy, Dispatch, EngineReport, Outcome, Request, RequestRecord, SchedulerKind,
};
use crate::fleet::{
    FleetConfig, FleetOutcome, FleetRecord, FleetReport, FleetRequest, OffloadPolicy, TierReport,
    TierSnapshot,
};
use crate::pipeline::{finalize_report, percentile_sorted, ServingReport};

#[derive(Debug)]
enum EngineEventKind {
    Arrival(usize),
    Completion { server: usize },
    Timer,
}

#[derive(Debug)]
struct EngineEvent {
    time_ms: f64,
    seq: u64,
    kind: EngineEventKind,
}

impl PartialEq for EngineEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}
impl Eq for EngineEvent {}
impl PartialOrd for EngineEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EngineEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then the
        // earliest-scheduled event) pops first.
        other
            .time_ms
            .total_cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `run_engine` loop, verbatim: all arrivals seeded into a
/// `BinaryHeap`, boxed scheduler dispatch, owned `Vec<Request>` batches.
/// Same workload contract and same report as [`crate::engine::try_run_engine`]
/// — bit for bit (the conformance suites enforce it).
pub fn run_engine_reference(
    device: &DeviceModel,
    servers: usize,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    requests: Vec<Request>,
) -> Result<EngineReport, String> {
    if servers == 0 {
        return Err("need at least one server".into());
    }
    if requests.is_empty() {
        return Err("need at least one request".into());
    }
    for (i, r) in requests.iter().enumerate() {
        if r.id != i {
            return Err(format!(
                "request ids must be 0..n in arrival order (index {i} has id {})",
                r.id
            ));
        }
        if !(r.service_ms > 0.0 && r.service_ms.is_finite()) {
            return Err(format!(
                "service times must be positive and finite, got {} (request {i})",
                r.service_ms
            ));
        }
        if !(r.arrival_ms.is_finite() && r.arrival_ms >= 0.0) {
            return Err(format!(
                "arrival times must be non-negative and finite, got {} (request {i})",
                r.arrival_ms
            ));
        }
    }
    if !requests
        .windows(2)
        .all(|w| w[0].arrival_ms <= w[1].arrival_ms)
    {
        return Err("requests must arrive in non-decreasing time order".into());
    }
    let n_requests = requests.len();

    let mut scheduler = scheduler.build();
    let mut heap: BinaryHeap<EngineEvent> = BinaryHeap::with_capacity(n_requests + servers);
    let mut seq = 0u64;
    for r in &requests {
        heap.push(EngineEvent {
            time_ms: r.arrival_ms,
            seq,
            kind: EngineEventKind::Arrival(r.id),
        });
        seq += 1;
    }

    let mut idle = vec![true; servers];
    let mut busy_ms = vec![0.0f64; servers];
    let mut in_flight: Vec<(f64, Vec<Request>)> = vec![(0.0, Vec::new()); servers];
    let mut outcomes: Vec<Option<Outcome>> = vec![None; n_requests];
    let mut sojourns: Vec<f64> = Vec::new();
    let mut dropped = 0usize;
    let mut makespan = 0.0f64;

    while let Some(ev) = heap.pop() {
        let now = ev.time_ms;
        match ev.kind {
            EngineEventKind::Arrival(id) => {
                makespan = makespan.max(now);
                let queue_len = scheduler.queue_len();
                if admission.admits(queue_len) {
                    scheduler.enqueue(requests[id]);
                } else {
                    dropped += 1;
                    outcomes[id] = Some(Outcome::Dropped);
                }
            }
            EngineEventKind::Completion { server } => {
                makespan = makespan.max(now);
                let (start_ms, batch) =
                    std::mem::replace(&mut in_flight[server], (0.0, Vec::new()));
                for r in batch {
                    sojourns.push(now - r.arrival_ms);
                    outcomes[r.id] = Some(Outcome::Completed {
                        server,
                        start_ms,
                        finish_ms: now,
                    });
                }
                idle[server] = true;
            }
            EngineEventKind::Timer => {}
        }

        for s in 0..servers {
            if !idle[s] {
                continue;
            }
            match scheduler.dispatch(now) {
                Dispatch::Serve(batch) => {
                    assert!(!batch.is_empty(), "scheduler dispatched an empty batch");
                    let service = batch
                        .iter()
                        .map(|r| r.service_ms)
                        .fold(f64::NEG_INFINITY, f64::max);
                    busy_ms[s] += service;
                    idle[s] = false;
                    in_flight[s] = (now, batch);
                    heap.push(EngineEvent {
                        time_ms: now + service,
                        seq,
                        kind: EngineEventKind::Completion { server: s },
                    });
                    seq += 1;
                }
                Dispatch::WaitUntil(t) => {
                    heap.push(EngineEvent {
                        time_ms: t,
                        seq,
                        kind: EngineEventKind::Timer,
                    });
                    seq += 1;
                    break;
                }
                Dispatch::Idle => break,
            }
        }
    }

    let busy_total = busy_ms.iter().sum::<f64>();
    let per_server_utilization = busy_ms
        .iter()
        .map(|&b| {
            if makespan > 0.0 {
                (b / makespan).min(1.0)
            } else {
                0.0
            }
        })
        .collect();
    let records = requests
        .iter()
        .map(|&request| RequestRecord {
            request,
            // lint:allow(panic-in-lib, reason = "every admitted request completes and every rejected one is marked Dropped before the heap drains; a hole here is engine corruption, not user input")
            outcome: outcomes[request.id].expect("every request resolves by drain"),
        })
        .collect();
    let completed = n_requests - dropped;

    Ok(EngineReport {
        serving: finalize_report(device, sojourns, busy_total, makespan, servers),
        arrivals: n_requests,
        completed,
        dropped,
        per_server_busy_ms: busy_ms,
        per_server_utilization,
        records,
    })
}

#[derive(Debug)]
enum FleetEventKind {
    Gateway(usize),
    TierArrival { tier: usize, id: usize },
    Completion { tier: usize, server: usize },
    Timer { tier: usize },
}

#[derive(Debug)]
struct FleetEvent {
    time_ms: f64,
    seq: u64,
    kind: FleetEventKind,
}

impl PartialEq for FleetEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}
impl Eq for FleetEvent {}
impl PartialOrd for FleetEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FleetEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_ms
            .total_cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TierState {
    scheduler: Box<dyn crate::engine::Scheduler>,
    idle: Vec<bool>,
    busy_ms: Vec<f64>,
    in_flight: Vec<(f64, f64, Vec<Request>)>,
    queued_work_ms: f64,
    routed: usize,
    dropped: usize,
    sojourns: Vec<f64>,
}

/// The original `simulate_fleet` loop, verbatim: all gateway arrivals seeded
/// into a `BinaryHeap`, per-tier boxed schedulers, per-arrival snapshot
/// `Vec`s. Same configuration contract and same report as
/// [`crate::fleet::try_simulate_fleet_with`] — bit for bit (the conformance
/// suites enforce it).
pub fn simulate_fleet_reference(
    cfg: &FleetConfig,
    policy: &mut dyn OffloadPolicy,
) -> Result<FleetReport, String> {
    cfg.try_valid()?;
    let n = cfg.requests;

    let requests: Vec<FleetRequest> = cfg
        .arrivals
        .generate(n, cfg.seed)
        .into_iter()
        .enumerate()
        .map(|(id, (gateway_ms, quantile))| FleetRequest {
            id,
            gateway_ms,
            quantile,
        })
        .collect();

    let mut heap: BinaryHeap<FleetEvent> = BinaryHeap::with_capacity(n + cfg.tiers.len());
    let mut seq = 0u64;
    for r in &requests {
        heap.push(FleetEvent {
            time_ms: r.gateway_ms,
            seq,
            kind: FleetEventKind::Gateway(r.id),
        });
        seq += 1;
    }

    let mut tiers: Vec<TierState> = cfg
        .tiers
        .iter()
        .map(|t| TierState {
            scheduler: t.scheduler.build(),
            idle: vec![true; t.servers],
            busy_ms: vec![0.0; t.servers],
            in_flight: vec![(0.0, 0.0, Vec::new()); t.servers],
            queued_work_ms: 0.0,
            routed: 0,
            dropped: 0,
            sojourns: Vec::new(),
        })
        .collect();

    let mut routing: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0); n];
    let mut outcomes: Vec<Option<FleetOutcome>> = vec![None; n];
    let mut makespan = 0.0f64;

    let admit = |tiers: &mut Vec<TierState>,
                 outcomes: &mut Vec<Option<FleetOutcome>>,
                 cfg: &FleetConfig,
                 routing: &[(usize, f64, f64)],
                 t: usize,
                 id: usize,
                 now: f64| {
        let state = &mut tiers[t];
        let queue_len = state.scheduler.queue_len();
        if cfg.tiers[t].admission.admits(queue_len) {
            let service_ms = routing[id].1;
            state.scheduler.enqueue(Request {
                id,
                arrival_ms: now,
                service_ms,
            });
            state.queued_work_ms += service_ms;
        } else {
            state.dropped += 1;
            outcomes[id] = Some(FleetOutcome::Dropped);
        }
    };

    while let Some(ev) = heap.pop() {
        let now = ev.time_ms;
        let dispatch_tier: Option<usize> = match ev.kind {
            FleetEventKind::Gateway(id) => {
                makespan = makespan.max(now);
                let req = requests[id];
                let snapshots: Vec<TierSnapshot> = if policy.needs_snapshots() {
                    cfg.tiers
                        .iter()
                        .zip(&tiers)
                        .map(|(t, s)| TierSnapshot {
                            queue_len: s.scheduler.queue_len(),
                            queued_work_ms: s.queued_work_ms.max(0.0),
                            in_flight_remaining_ms: s
                                .in_flight
                                .iter()
                                .zip(&s.idle)
                                .filter(|(_, idle)| !**idle)
                                .map(|((_, finish, _), _)| (finish - now).max(0.0))
                                .sum(),
                            servers: t.servers,
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let target = policy.route(req.quantile, &cfg.tiers, &snapshots);
                if target >= cfg.tiers.len() {
                    return Err(format!(
                        "offload policy routed to nonexistent tier {target} ({} tiers)",
                        cfg.tiers.len()
                    ));
                }
                let service_ms = cfg.tiers[target].profile.sample(req.quantile);
                let transfer_ms = cfg.tiers[target]
                    .link
                    .as_ref()
                    .map_or(0.0, |l| l.transfer_ms());
                routing[id] = (target, service_ms, transfer_ms);
                tiers[target].routed += 1;
                if target == 0 {
                    admit(&mut tiers, &mut outcomes, cfg, &routing, 0, id, now);
                    Some(0)
                } else {
                    heap.push(FleetEvent {
                        time_ms: now + transfer_ms,
                        seq,
                        kind: FleetEventKind::TierArrival { tier: target, id },
                    });
                    seq += 1;
                    None
                }
            }
            FleetEventKind::TierArrival { tier, id } => {
                makespan = makespan.max(now);
                admit(&mut tiers, &mut outcomes, cfg, &routing, tier, id, now);
                Some(tier)
            }
            FleetEventKind::Completion { tier, server } => {
                makespan = makespan.max(now);
                let state = &mut tiers[tier];
                let (start_ms, _, batch) =
                    std::mem::replace(&mut state.in_flight[server], (0.0, 0.0, Vec::new()));
                for r in batch {
                    state.sojourns.push(now - requests[r.id].gateway_ms);
                    outcomes[r.id] = Some(FleetOutcome::Completed {
                        server,
                        start_ms,
                        finish_ms: now,
                    });
                }
                state.idle[server] = true;
                Some(tier)
            }
            FleetEventKind::Timer { tier } => Some(tier),
        };

        if let Some(t) = dispatch_tier {
            let state = &mut tiers[t];
            for s in 0..cfg.tiers[t].servers {
                if !state.idle[s] {
                    continue;
                }
                match state.scheduler.dispatch(now) {
                    Dispatch::Serve(batch) => {
                        assert!(!batch.is_empty(), "scheduler dispatched an empty batch");
                        let service = batch
                            .iter()
                            .map(|r| r.service_ms)
                            .fold(f64::NEG_INFINITY, f64::max);
                        state.queued_work_ms -= batch.iter().map(|r| r.service_ms).sum::<f64>();
                        state.busy_ms[s] += service;
                        state.idle[s] = false;
                        state.in_flight[s] = (now, now + service, batch);
                        heap.push(FleetEvent {
                            time_ms: now + service,
                            seq,
                            kind: FleetEventKind::Completion { tier: t, server: s },
                        });
                        seq += 1;
                    }
                    Dispatch::WaitUntil(tm) => {
                        heap.push(FleetEvent {
                            time_ms: tm,
                            seq,
                            kind: FleetEventKind::Timer { tier: t },
                        });
                        seq += 1;
                        break;
                    }
                    Dispatch::Idle => break,
                }
            }
        }
    }

    let records: Vec<FleetRecord> = requests
        .iter()
        .map(|&request| {
            let (tier, service_ms, transfer_ms) = routing[request.id];
            FleetRecord {
                request,
                tier,
                service_ms,
                transfer_ms,
                // lint:allow(panic-in-lib, reason = "every admitted request completes and every rejected one is marked Dropped before the heap drains; a hole here is engine corruption, not user input")
                outcome: outcomes[request.id].expect("every request resolves by drain"),
            }
        })
        .collect();

    let mut tier_reports = Vec::with_capacity(cfg.tiers.len());
    let mut all_sojourns: Vec<f64> = Vec::new();
    let mut busy_all = 0.0f64;
    let mut energy_all = 0.0f64;
    for (tier_cfg, state) in cfg.tiers.iter().zip(tiers) {
        let busy_total: f64 = state.busy_ms.iter().sum();
        busy_all += busy_total;
        all_sojourns.extend_from_slice(&state.sojourns);
        let completed = state.sojourns.len();
        let serving = finalize_report(
            &tier_cfg.device,
            state.sojourns,
            busy_total,
            makespan,
            tier_cfg.servers,
        );
        energy_all += serving.energy_j;
        tier_reports.push(TierReport {
            name: tier_cfg.name.clone(),
            serving,
            routed: state.routed,
            completed,
            dropped: state.dropped,
            per_server_utilization: state
                .busy_ms
                .iter()
                .map(|&b| {
                    if makespan > 0.0 {
                        (b / makespan).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            per_server_busy_ms: state.busy_ms,
        });
    }

    let completed = all_sojourns.len();
    let dropped = n - completed;
    let offloaded = records.iter().filter(|r| r.tier != 0).count();
    let late = all_sojourns.iter().filter(|&&s| s > cfg.slo_ms).count();

    all_sojourns.sort_by(f64::total_cmp);
    let total_servers: usize = cfg.tiers.iter().map(|t| t.servers).sum();
    let capacity_ms = makespan * total_servers as f64;
    let end_to_end = ServingReport {
        mean_sojourn_ms: if all_sojourns.is_empty() {
            0.0
        } else {
            all_sojourns.iter().sum::<f64>() / all_sojourns.len() as f64
        },
        p50_ms: percentile_sorted(&all_sojourns, 0.50),
        p95_ms: percentile_sorted(&all_sojourns, 0.95),
        p99_ms: percentile_sorted(&all_sojourns, 0.99),
        utilization: if capacity_ms > 0.0 {
            (busy_all / capacity_ms).min(1.0)
        } else {
            0.0
        },
        makespan_ms: makespan,
        energy_j: energy_all,
    };

    Ok(FleetReport {
        tiers: tier_reports,
        offered: n,
        completed,
        dropped,
        offloaded,
        slo_ms: cfg.slo_ms,
        slo_violations: late + dropped,
        end_to_end,
        records,
    })
}
