//! Arrival processes for the serving simulators.
//!
//! The legacy loop and the discrete-event engine both hardcode Poisson
//! arrivals. Real edge traffic is rarely that kind: cameras upload in
//! bursts, diurnal load swings by an order of magnitude, and replayed
//! production traces are the gold standard for capacity planning. An
//! [`ArrivalProcess`] abstracts the "when does the next request show up"
//! question so the engine and the [`crate::fleet`] simulator can be
//! stressed with non-stationary load:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant rate.
//!   Generation reproduces the legacy simulator's RNG draw order **exactly**
//!   (one inter-arrival uniform, then one service-quantile uniform, per
//!   request), which is what keeps the engine and fleet conformance chains
//!   bit-identical all the way down.
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process: the rate alternates between a base state and a burst state,
//!   with exponentially distributed dwell times in each. Mean rate equal to
//!   a Poisson process, but arrivals clump — the workload shape that turns
//!   early-exit service variance into deep queues.
//! * [`ArrivalProcess::Trace`] — deterministic replay of recorded
//!   inter-arrival gaps (cycled when the run is longer than the trace).
//!   Service quantiles are still drawn per request, so the same trace can
//!   stress different cost profiles.
//!
//! Every process yields `(arrival_ms, quantile)` pairs via
//! [`ArrivalProcess::generate`]: the quantile `u ∈ [0, 1)` is the request's
//! *difficulty* draw, mapped to a service time by each serving tier's own
//! [`crate::cost::CostProfile::sample`]. Sharing the quantile across tiers
//! is deliberate — a hard input is hard on every device, only the price
//! differs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When requests arrive. See the module docs for the three shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_hz: f64,
    },
    /// Two-state Markov-modulated Poisson process: exponential inter-arrivals
    /// whose rate depends on a background state that alternates between
    /// `base` and `burst`, each held for an exponentially distributed dwell.
    ///
    /// A gap that straddles a state switch is drawn at the rate of the state
    /// it started in (the switch takes effect from the next arrival) — a
    /// standard discretisation that keeps one uniform draw per arrival.
    Mmpp {
        /// Arrival rate in the quiet state, requests per second.
        base_rate_hz: f64,
        /// Arrival rate in the burst state, requests per second.
        burst_rate_hz: f64,
        /// Mean dwell in the quiet state, ms (exponentially distributed).
        base_dwell_ms: f64,
        /// Mean dwell in the burst state, ms (exponentially distributed).
        burst_dwell_ms: f64,
    },
    /// Deterministic replay of recorded inter-arrival gaps, cycled when the
    /// run outlives the trace.
    Trace {
        /// Inter-arrival gaps in ms, in replay order. All finite and
        /// non-negative, with a positive mean (a trace of all-zero gaps has
        /// no usable rate).
        gaps_ms: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// A Poisson process at `rate_hz` requests/second.
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn poisson(rate_hz: f64) -> Self {
        let p = ArrivalProcess::Poisson { rate_hz };
        p.assert_valid();
        p
    }

    /// A two-state MMPP (see [`ArrivalProcess::Mmpp`]).
    ///
    /// # Panics
    /// Panics unless both rates and both dwell means are positive and finite.
    pub fn mmpp(
        base_rate_hz: f64,
        burst_rate_hz: f64,
        base_dwell_ms: f64,
        burst_dwell_ms: f64,
    ) -> Self {
        let p = ArrivalProcess::Mmpp {
            base_rate_hz,
            burst_rate_hz,
            base_dwell_ms,
            burst_dwell_ms,
        };
        p.assert_valid();
        p
    }

    /// A deterministic trace replay of inter-arrival gaps.
    ///
    /// # Panics
    /// Panics on an empty trace, a negative/non-finite gap, or an all-zero
    /// trace.
    pub fn trace(gaps_ms: Vec<f64>) -> Self {
        let p = ArrivalProcess::Trace { gaps_ms };
        p.assert_valid();
        p
    }

    /// Validate invariants, returning a description of the first violation.
    pub fn try_valid(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                if !(*rate_hz > 0.0 && rate_hz.is_finite()) {
                    return Err(format!(
                        "arrival rate must be positive and finite, got {rate_hz}"
                    ));
                }
            }
            ArrivalProcess::Mmpp {
                base_rate_hz,
                burst_rate_hz,
                base_dwell_ms,
                burst_dwell_ms,
            } => {
                for (what, v) in [
                    ("base arrival rate", *base_rate_hz),
                    ("burst arrival rate", *burst_rate_hz),
                    ("base dwell", *base_dwell_ms),
                    ("burst dwell", *burst_dwell_ms),
                ] {
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(format!("{what} must be positive and finite, got {v}"));
                    }
                }
            }
            ArrivalProcess::Trace { gaps_ms } => {
                if gaps_ms.is_empty() {
                    return Err("trace needs at least one inter-arrival gap".into());
                }
                if let Some(bad) = gaps_ms.iter().find(|g| !(**g >= 0.0 && g.is_finite())) {
                    return Err(format!(
                        "trace gaps must be non-negative and finite, got {bad}"
                    ));
                }
                if gaps_ms.iter().sum::<f64>() <= 0.0 {
                    return Err("trace must contain at least one positive gap".into());
                }
            }
        }
        Ok(())
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics with the [`ArrivalProcess::try_valid`] message on violation.
    pub fn assert_valid(&self) {
        if let Err(e) = self.try_valid() {
            // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_valid is the non-panicking form")
            panic!("{e}");
        }
    }

    /// Long-run mean arrival rate, requests per second — what stability
    /// estimates (`ρ = λ·E[S]`) should use. For MMPP the states are weighted
    /// by their mean dwell; for a trace it is the replay-cycle average.
    pub fn mean_rate_hz(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_hz } => *rate_hz,
            ArrivalProcess::Mmpp {
                base_rate_hz,
                burst_rate_hz,
                base_dwell_ms,
                burst_dwell_ms,
            } => {
                (base_rate_hz * base_dwell_ms + burst_rate_hz * burst_dwell_ms)
                    / (base_dwell_ms + burst_dwell_ms)
            }
            ArrivalProcess::Trace { gaps_ms } => {
                1000.0 * gaps_ms.len() as f64 / gaps_ms.iter().sum::<f64>()
            }
        }
    }

    /// Display name for tables/CSV (`poisson`, `mmpp`, `trace`).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson".into(),
            ArrivalProcess::Mmpp { .. } => "mmpp".into(),
            ArrivalProcess::Trace { .. } => "trace".into(),
        }
    }

    /// Generate a workload: `requests` pairs of `(arrival_ms, quantile)` in
    /// arrival order, where `quantile ∈ [0, 1)` is the request's service
    /// difficulty draw (feed it to [`crate::cost::CostProfile::sample`]).
    ///
    /// For [`ArrivalProcess::Poisson`] the RNG draw order is exactly the
    /// legacy simulator's — one inter-arrival uniform then one quantile
    /// uniform per request — so workloads generated here are bit-identical
    /// to what [`crate::pipeline::simulate`] and
    /// [`crate::engine::simulate_engine`] consume internally.
    ///
    /// # Panics
    /// Panics on an invalid process or zero requests.
    pub fn generate(&self, requests: usize, seed: u64) -> Vec<(f64, f64)> {
        self.assert_valid();
        assert!(requests > 0, "need at least one request");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(requests);
        let mut arrival = 0.0f64;
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                let mean_gap_ms = 1000.0 / rate_hz;
                for _ in 0..requests {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    arrival += -mean_gap_ms * u.ln();
                    out.push((arrival, rng.gen::<f64>()));
                }
            }
            ArrivalProcess::Mmpp {
                base_rate_hz,
                burst_rate_hz,
                base_dwell_ms,
                burst_dwell_ms,
            } => {
                let exp = |rng: &mut StdRng, mean: f64| -> f64 {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -mean * u.ln()
                };
                // State 0 = quiet, state 1 = burst; start quiet.
                let mut burst = false;
                let mut dwell_left = exp(&mut rng, *base_dwell_ms);
                for _ in 0..requests {
                    let rate = if burst { *burst_rate_hz } else { *base_rate_hz };
                    let gap = exp(&mut rng, 1000.0 / rate);
                    arrival += gap;
                    dwell_left -= gap;
                    while dwell_left <= 0.0 {
                        burst = !burst;
                        let mean = if burst {
                            *burst_dwell_ms
                        } else {
                            *base_dwell_ms
                        };
                        dwell_left += exp(&mut rng, mean);
                    }
                    out.push((arrival, rng.gen::<f64>()));
                }
            }
            ArrivalProcess::Trace { gaps_ms } => {
                for i in 0..requests {
                    arrival += gaps_ms[i % gaps_ms.len()];
                    out.push((arrival, rng.gen::<f64>()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_matches_legacy_draw_order() {
        // The generate() stream must replay the legacy loop verbatim.
        let rate = 120.0;
        let generated = ArrivalProcess::poisson(rate).generate(500, 42);
        let mut rng = StdRng::seed_from_u64(42);
        let mean = 1000.0 / rate;
        let mut arrival = 0.0f64;
        for (a, q) in generated {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            arrival += -mean * u.ln();
            let quantile = rng.gen::<f64>();
            assert_eq!(a, arrival);
            assert_eq!(q, quantile);
        }
    }

    #[test]
    fn arrivals_are_monotone_and_quantiles_in_range() {
        for p in [
            ArrivalProcess::poisson(200.0),
            ArrivalProcess::mmpp(50.0, 800.0, 400.0, 80.0),
            ArrivalProcess::trace(vec![1.0, 0.0, 4.5, 2.0]),
        ] {
            let w = p.generate(2_000, 7);
            assert_eq!(w.len(), 2_000);
            for pair in w.windows(2) {
                assert!(
                    pair[1].0 >= pair[0].0,
                    "{}: arrivals not monotone",
                    p.label()
                );
            }
            assert!(w.iter().all(|&(_, q)| (0.0..1.0).contains(&q)));
        }
    }

    #[test]
    fn mmpp_mean_rate_is_dwell_weighted() {
        let p = ArrivalProcess::mmpp(100.0, 900.0, 300.0, 100.0);
        assert!((p.mean_rate_hz() - (100.0 * 300.0 + 900.0 * 100.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp_clumps_more_than_poisson() {
        // Same mean rate, but the MMPP's inter-arrival gaps have a higher
        // coefficient of variation than the exponential's ≈1.
        let cv = |w: &[(f64, f64)]| {
            let gaps: Vec<f64> = w.windows(2).map(|p| p[1].0 - p[0].0).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let mmpp = ArrivalProcess::mmpp(50.0, 950.0, 500.0, 500.0);
        let pois = ArrivalProcess::poisson(mmpp.mean_rate_hz());
        let n = 20_000;
        assert!(cv(&mmpp.generate(n, 3)) > 1.2 * cv(&pois.generate(n, 3)));
    }

    #[test]
    fn trace_replays_and_cycles() {
        let p = ArrivalProcess::trace(vec![2.0, 3.0]);
        let w = p.generate(5, 0);
        let arrivals: Vec<f64> = w.iter().map(|&(a, _)| a).collect();
        assert_eq!(arrivals, vec![2.0, 5.0, 7.0, 10.0, 12.0]);
        assert!((p.mean_rate_hz() - 1000.0 * 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        for p in [
            ArrivalProcess::poisson(300.0),
            ArrivalProcess::mmpp(100.0, 600.0, 200.0, 50.0),
            ArrivalProcess::trace(vec![0.5, 1.5]),
        ] {
            assert_eq!(p.generate(1_000, 11), p.generate(1_000, 11));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalProcess::poisson(1.0).label(), "poisson");
        assert_eq!(ArrivalProcess::mmpp(1.0, 2.0, 1.0, 1.0).label(), "mmpp");
        assert_eq!(ArrivalProcess::trace(vec![1.0]).label(), "trace");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_rate() {
        let _ = ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one positive gap")]
    fn rejects_all_zero_trace() {
        let _ = ArrivalProcess::trace(vec![0.0, 0.0]);
    }

    #[test]
    fn try_valid_reports_errors_without_panicking() {
        assert!(ArrivalProcess::Poisson { rate_hz: -1.0 }
            .try_valid()
            .is_err());
        assert!(ArrivalProcess::Trace { gaps_ms: vec![] }
            .try_valid()
            .is_err());
        assert!(ArrivalProcess::Mmpp {
            base_rate_hz: 1.0,
            burst_rate_hz: f64::NAN,
            base_dwell_ms: 1.0,
            burst_dwell_ms: 1.0,
        }
        .try_valid()
        .is_err());
        assert!(ArrivalProcess::poisson(10.0).try_valid().is_ok());
    }
}
