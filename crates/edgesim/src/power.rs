//! The paper's power-consumption models, implemented verbatim (§IV-C).

use crate::device::Device;

/// Eq. (1): Google Cloud instance CPU power.
///
/// `P = (n/N) · (Pidle + (Ppeak − Pidle) · u^β)` with the paper's constants:
/// n = 2 allocated vCPUs, N = 18 host cores, Haswell Pidle = 40 W,
/// Ppeak = 180 W, β = 0.75.
pub const GCI_VCPUS: f64 = 2.0;
/// Host physical cores (N in Eq. 1).
pub const GCI_HOST_CORES: f64 = 18.0;
/// Haswell idle power (W), from Wang et al. \[33\].
pub const GCI_P_IDLE: f64 = 40.0;
/// Haswell peak power (W), from Wang et al. \[33\].
pub const GCI_P_PEAK: f64 = 180.0;
/// Eq. (1) exponent.
pub const GCI_BETA: f64 = 0.75;

/// Eq. (2): Raspberry Pi 4 power (PowerPi \[16\]), β = 1.
pub const RPI_P_IDLE: f64 = 2.7;
/// Raspberry Pi 4 peak power (W).
pub const RPI_P_PEAK: f64 = 6.4;

/// Average GPU power measured via nvidia-smi in the paper (§IV-E).
pub const GPU_AVG_POWER: f64 = 79.0;
/// Average CPU power alongside the GPU (§IV-E).
pub const GPU_HOST_CPU_POWER: f64 = 17.7;

/// A device's power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerModel {
    /// Eq. (2), PowerPi.
    RaspberryPi4,
    /// Eq. (1), vCPU-scaled Haswell.
    GciCpu,
    /// Constant measured averages (GPU + host CPU).
    GciGpu,
}

impl PowerModel {
    /// The model for a device.
    pub fn for_device(device: Device) -> Self {
        match device {
            Device::RaspberryPi4 => PowerModel::RaspberryPi4,
            Device::GciCpu => PowerModel::GciCpu,
            Device::GciGpu => PowerModel::GciGpu,
        }
    }

    /// Power draw in watts at CPU utilization `u ∈ [0, 1]`.
    ///
    /// For the GPU model, `u` is ignored: the paper reports constant
    /// averages (79 W GPU + 17.7 W CPU) across models and datasets.
    ///
    /// # Panics
    /// Panics unless `u ∈ [0, 1]`.
    pub fn watts(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0, 1]");
        match self {
            PowerModel::RaspberryPi4 => RPI_P_IDLE + (RPI_P_PEAK - RPI_P_IDLE) * u,
            PowerModel::GciCpu => {
                (GCI_VCPUS / GCI_HOST_CORES)
                    * (GCI_P_IDLE + (GCI_P_PEAK - GCI_P_IDLE) * u.powf(GCI_BETA))
            }
            PowerModel::GciGpu => GPU_AVG_POWER + GPU_HOST_CPU_POWER,
        }
    }

    /// Idle power draw in watts.
    pub fn idle_watts(&self) -> f64 {
        match self {
            PowerModel::RaspberryPi4 => RPI_P_IDLE,
            PowerModel::GciCpu => (GCI_VCPUS / GCI_HOST_CORES) * GCI_P_IDLE,
            // nvidia-smi reports nonzero idle draw; the paper folds it into
            // the averages, so idle ≈ host CPU idle share.
            PowerModel::GciGpu => (GCI_VCPUS / GCI_HOST_CORES) * GCI_P_IDLE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi_power_endpoints() {
        let m = PowerModel::RaspberryPi4;
        assert_eq!(m.watts(0.0), 2.7);
        assert_eq!(m.watts(1.0), 6.4);
        // β = 1 ⇒ linear midpoint.
        assert!((m.watts(0.5) - 4.55).abs() < 1e-9);
    }

    #[test]
    fn gci_power_matches_equation_one() {
        let m = PowerModel::GciCpu;
        // u = 0: (2/18)·40 = 4.444…
        assert!((m.watts(0.0) - 40.0 * 2.0 / 18.0).abs() < 1e-9);
        // u = 1: (2/18)·180 = 20
        assert!((m.watts(1.0) - 20.0).abs() < 1e-9);
        // β = 0.75 concavity: watts(0.5) above the linear midpoint.
        let linear_mid = (m.watts(0.0) + m.watts(1.0)) / 2.0;
        assert!(m.watts(0.5) > linear_mid);
    }

    #[test]
    fn gci_utilization_081_reproduces_paper_mean_power() {
        // §IV-E: "the average CPU power consumption is 17.7 Watts".
        let m = PowerModel::GciCpu;
        let p = m.watts(0.81);
        assert!((p - 17.7).abs() < 0.3, "GCI power at u=0.81 is {p:.2} W");
    }

    #[test]
    fn gpu_power_is_constant_measured_average() {
        let m = PowerModel::GciGpu;
        assert_eq!(m.watts(0.2), 96.7);
        assert_eq!(m.watts(0.9), 96.7);
        // §IV-E calls the 79 W GPU draw "six times higher" than the 17.7 W
        // CPU draw; the actual ratio of the paper's own constants is ≈4.5×.
        // We reproduce the constants, not the prose arithmetic.
        let ratio = GPU_AVG_POWER / GPU_HOST_CPU_POWER;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        for m in [PowerModel::RaspberryPi4, PowerModel::GciCpu] {
            let mut prev = 0.0;
            for i in 0..=10 {
                let p = m.watts(i as f64 / 10.0);
                assert!(p >= prev);
                prev = p;
            }
        }
    }

    #[test]
    fn idle_below_active() {
        for d in Device::ALL {
            let m = PowerModel::for_device(d);
            assert!(m.idle_watts() <= m.watts(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_bad_utilization() {
        let _ = PowerModel::RaspberryPi4.watts(1.5);
    }
}
