//! # edgesim — analytical edge-device latency, power and energy models
//!
//! The paper's evaluation runs on three physical platforms: a Raspberry Pi 4
//! (Chameleon CHI@Edge), a Google Cloud N1 instance (2 vCPU), and the same
//! instance with an Nvidia Tesla K80. None of those are available here, so
//! this crate substitutes **calibrated analytical models**:
//!
//! * [`device`] — per-layer latency: `dispatch + flops / throughput(kind)`,
//!   with separate effective throughputs for convolution and dense layers
//!   (the paper's Keras stack runs small-image convolutions orders of
//!   magnitude less efficiently than BLAS GEMMs — that asymmetry is exactly
//!   why a 1M-parameter dense autoencoder can cost less than a 50k-parameter
//!   CNN, the fact CBNet exploits). Presets are calibrated to the paper's
//!   measured LeNet per-image latencies (12.735 ms RPi / 1.322 ms GCI /
//!   0.266 ms K80, Table II).
//! * [`power`] — the paper's own power models, implemented verbatim:
//!   Eq. (1) for the GCI (n/N scaling, β = 0.75, Haswell 40 W idle / 180 W
//!   peak) and Eq. (2) (PowerPi, 2.7 W idle / 6.4 W peak, β = 1) for the
//!   Raspberry Pi; constant measured averages for the GPU case (§IV-E:
//!   17.7 W CPU, 79 W GPU).
//! * [`energy`] — `E = P · Δt` accounting and savings-vs-baseline helpers.
//! * [`pipeline`] — serving workload/report types and the legacy
//!   single-server FIFO simulator (the conformance baseline): an extension
//!   beyond the paper's batch experiments that shows how exit-rate variance
//!   turns into queueing delay.
//! * [`engine`] — the discrete-event multi-server engine behind it:
//!   [`engine::EngineSim`], a flat-index event loop (requests in a
//!   [`arena::RequestArena`] slab, dynamic events in a preallocated
//!   [`events::EventHeap`], queues as intrusive chains, disciplines
//!   monomorphized — FIFO / shortest-expected-service / batch-accumulate)
//!   with [`AdmissionPolicy`] load shedding and drop accounting.
//!   Steady-state execution is allocation-free; per-request records are the
//!   default ([`engine::RecordMode::Full`]) with streaming-histogram
//!   [`engine::RecordMode::Lean`] for million-request sweeps. Its 1-server
//!   FIFO configuration reproduces [`pipeline::simulate`] bit for bit.
//! * [`arena`] / [`events`] — the flat-index substrate: the request slab
//!   with its intrusive link array, detached batch [`arena::Chain`]s, and
//!   the Vec-backed binary event heap with the engine's (time, seq) order.
//! * [`mod@reference`] — the original `BinaryHeap` + `Box<dyn Scheduler>`
//!   engine and fleet loops, preserved verbatim as conformance oracles and
//!   live perf baselines for the index rewrite.
//! * [`arrivals`] — pluggable arrival processes: Poisson (bit-identical to
//!   the legacy RNG draw order), two-state MMPP bursts, and deterministic
//!   trace replay, all yielding `(arrival, difficulty-quantile)` workloads.
//! * [`fleet`] — tiered edge–cloud offload simulation: heterogeneous
//!   serving pools connected by [`fleet::NetworkLink`]s, with pluggable
//!   per-request [`fleet::OffloadPolicy`] routing (always-local /
//!   exit-confidence / SLO-predicted-sojourn) and per-tier + end-to-end
//!   reports. A single-tier fleet under [`fleet::AlwaysLocal`] reproduces
//!   [`engine::simulate_engine`] bit for bit.
//! * [`observe`] — opt-in observability: a [`SimObserver`] fed the event
//!   stream of either simulator records queue-depth gauges, sojourn/
//!   service/transfer histograms, offload counters and a per-request
//!   span-event trace (`CBNET_OBS=off|metrics|trace`), without perturbing
//!   the simulation — observed runs are bit-identical to unobserved ones.
//!
//! Because the paper reports *relative* speedups and savings, anchoring the
//! baseline latency and applying the same per-layer accounting to every
//! model preserves every comparison the paper makes while staying honest
//! about absolute numbers (see DESIGN.md §1).

#![forbid(unsafe_code)]

pub mod arena;
pub mod arrivals;
pub mod cost;
pub mod device;
pub mod energy;
pub mod engine;
pub mod events;
pub mod fleet;
pub mod observe;
pub mod partition;
pub mod pipeline;
pub mod power;
pub mod reference;

pub use arena::{Chain, Discipline, IndexQueue, RequestArena, NIL};
pub use arrivals::ArrivalProcess;
pub use cost::CostProfile;
pub use device::{Device, DeviceModel, LatencyBreakdown};
pub use energy::{energy_joules, savings_percent, EnergyReport};
pub use engine::{
    run_engine, simulate_engine, AdmissionPolicy, EngineConfig, EngineReport, EngineSim,
    RecordMode, Scheduler, SchedulerKind,
};
pub use events::EventHeap;
pub use fleet::{
    simulate_fleet, simulate_fleet_with, try_simulate_fleet_with_swaps, FleetConfig,
    FleetLeanStats, FleetReport, FleetSim, NetworkLink, OffloadPolicy, OffloadPolicyKind,
    SwapPolicy, Tier, TierReport, TierSwap,
};
pub use observe::SimObserver;
pub use partition::{best_split, Uplink};
pub use pipeline::percentile_sorted;
pub use power::PowerModel;
