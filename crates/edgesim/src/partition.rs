//! Neurosurgeon-style DNN partitioning \[15\] between an edge device and the
//! cloud.
//!
//! The paper positions CBNet against DNN partitioning (§I, §II-C): offloading
//! layers to the cloud "can be affected by network delays and intermittent
//! connections". This module makes that comparison quantitative: given an
//! architecture, an edge device model, a cloud device model, and an uplink
//! (round-trip latency + bandwidth), it evaluates every layer-granularity
//! split point and returns the optimum — exactly Neurosurgeon's search,
//! over our cost models.
//!
//! Split semantics for split point `k ∈ 0..=n`: layers `[0, k)` run on the
//! edge, the activation after layer `k−1` (or the raw input for `k = 0`)
//! is uploaded, layers `[k, n)` run in the cloud, and the (tiny) result
//! returns. `k = n` is pure on-device execution with no network use.

use nn::LayerSpec;

use crate::device::DeviceModel;

/// Network-link model between edge and cloud.
#[derive(Debug, Clone, Copy)]
pub struct Uplink {
    /// One-way request latency added per transfer, milliseconds.
    pub latency_ms: f64,
    /// Effective bandwidth, megabytes per second.
    pub bandwidth_mbps: f64,
}

impl Uplink {
    /// Transfer time for `n` f32 features, in milliseconds.
    pub fn transfer_ms(&self, features: usize) -> f64 {
        let bytes = features as f64 * 4.0;
        self.latency_ms + bytes / (self.bandwidth_mbps * 1e6) * 1e3
    }

    /// A fast local WiFi link (5 ms RTT leg, 10 MB/s).
    pub fn wifi() -> Self {
        Uplink {
            latency_ms: 5.0,
            bandwidth_mbps: 10.0,
        }
    }

    /// A congested cellular link (60 ms leg, 0.5 MB/s).
    pub fn cellular() -> Self {
        Uplink {
            latency_ms: 60.0,
            bandwidth_mbps: 0.5,
        }
    }
}

/// The cost of one candidate split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCost {
    /// Split index `k` (layers before `k` run on the edge).
    pub split: usize,
    /// Edge compute, ms.
    pub edge_ms: f64,
    /// Network transfer (activation upload + result download), ms.
    pub network_ms: f64,
    /// Cloud compute, ms.
    pub cloud_ms: f64,
}

impl SplitCost {
    /// End-to-end latency of this split.
    pub fn total_ms(&self) -> f64 {
        self.edge_ms + self.network_ms + self.cloud_ms
    }
}

/// Evaluate every split point; returns costs indexed by split `k ∈ 0..=n`.
pub fn evaluate_splits(
    specs: &[LayerSpec],
    edge: &DeviceModel,
    cloud: &DeviceModel,
    link: &Uplink,
    classes: usize,
) -> Vec<SplitCost> {
    let n = specs.len();
    // Prefix sums of per-layer cost on each device.
    let mut edge_prefix = vec![0.0f64; n + 1];
    let mut cloud_prefix = vec![0.0f64; n + 1];
    for (i, s) in specs.iter().enumerate() {
        edge_prefix[i + 1] = edge_prefix[i] + edge.layer_ms(s);
        cloud_prefix[i + 1] = cloud_prefix[i] + cloud.layer_ms(s);
    }
    let input_features = specs.first().map_or(0, |s| match s {
        LayerSpec::Dense { in_dim, .. } => *in_dim,
        LayerSpec::Conv2d { geom, .. } => geom.in_channels * geom.in_h * geom.in_w,
        other => other.out_features(),
    });
    (0..=n)
        .map(|k| {
            let network_ms = if k == n {
                0.0 // fully on-device
            } else {
                let upload_features = if k == 0 {
                    input_features
                } else {
                    specs[k - 1].out_features()
                };
                link.transfer_ms(upload_features) + link.transfer_ms(classes)
            };
            SplitCost {
                split: k,
                edge_ms: edge_prefix[k],
                network_ms,
                cloud_ms: cloud_prefix[n] - cloud_prefix[k],
            }
        })
        .collect()
}

/// The minimum-latency split (Neurosurgeon's output).
pub fn best_split(
    specs: &[LayerSpec],
    edge: &DeviceModel,
    cloud: &DeviceModel,
    link: &Uplink,
    classes: usize,
) -> SplitCost {
    evaluate_splits(specs, edge, cloud, link, classes)
        .into_iter()
        .min_by(|a, b| a.total_ms().total_cmp(&b.total_ms()))
        // lint:allow(panic-in-lib, reason = "evaluate_splits always yields the on-device split, so the iterator is non-empty by construction")
        .expect("at least the on-device split exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::ActivationKind;

    fn toy_specs() -> Vec<LayerSpec> {
        vec![
            LayerSpec::Dense {
                in_dim: 784,
                out_dim: 256,
            },
            LayerSpec::Activation {
                kind: ActivationKind::Relu,
                dim: 256,
            },
            LayerSpec::Dense {
                in_dim: 256,
                out_dim: 10,
            },
        ]
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let l = Uplink {
            latency_ms: 10.0,
            bandwidth_mbps: 1.0,
        };
        // 250k floats = 1 MB at 1 MB/s = 1000 ms + 10 ms latency.
        assert!((l.transfer_ms(250_000) - 1010.0).abs() < 1.0);
        assert!((l.transfer_ms(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn split_count_and_endpoints() {
        let specs = toy_specs();
        let edge = DeviceModel::raspberry_pi4();
        let cloud = DeviceModel::gci_cpu();
        let costs = evaluate_splits(&specs, &edge, &cloud, &Uplink::wifi(), 10);
        assert_eq!(costs.len(), 4);
        // k = n: pure edge, no network, no cloud.
        let last = costs.last().unwrap();
        assert_eq!(last.network_ms, 0.0);
        assert_eq!(last.cloud_ms, 0.0);
        assert!(last.edge_ms > 0.0);
        // k = 0: pure cloud; edge does nothing.
        assert_eq!(costs[0].edge_ms, 0.0);
        assert!(costs[0].network_ms > 0.0);
        assert!(costs[0].cloud_ms > 0.0);
    }

    #[test]
    fn fast_link_prefers_offloading_slow_link_stays_local() {
        let specs = toy_specs();
        let edge = DeviceModel::raspberry_pi4();
        let cloud = DeviceModel::gci_gpu();
        // Absurdly fast link: offloading early must win (cloud ≫ edge).
        let fast = Uplink {
            latency_ms: 0.001,
            bandwidth_mbps: 10_000.0,
        };
        let best_fast = best_split(&specs, &edge, &cloud, &fast, 10);
        assert!(best_fast.split < specs.len(), "fast link should offload");
        // Terrible link: staying on-device must win.
        let slow = Uplink {
            latency_ms: 500.0,
            bandwidth_mbps: 0.01,
        };
        let best_slow = best_split(&specs, &edge, &cloud, &slow, 10);
        assert_eq!(best_slow.split, specs.len(), "slow link should stay local");
    }

    #[test]
    fn best_split_is_minimum() {
        let specs = toy_specs();
        let edge = DeviceModel::raspberry_pi4();
        let cloud = DeviceModel::gci_cpu();
        let link = Uplink::wifi();
        let all = evaluate_splits(&specs, &edge, &cloud, &link, 10);
        let best = best_split(&specs, &edge, &cloud, &link, 10);
        assert!(all.iter().all(|c| best.total_ms() <= c.total_ms() + 1e-12));
    }

    #[test]
    fn late_splits_upload_smaller_activations() {
        // Splitting after the 256-wide layer uploads less than uploading the
        // 784-wide input.
        let specs = toy_specs();
        let edge = DeviceModel::raspberry_pi4();
        let cloud = DeviceModel::gci_cpu();
        let link = Uplink::cellular();
        let costs = evaluate_splits(&specs, &edge, &cloud, &link, 10);
        assert!(costs[1].network_ms < costs[0].network_ms);
    }
}
