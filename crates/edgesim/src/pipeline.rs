//! Serving simulation front door: workload/report types, the legacy
//! single-server closed-form loop, and the extension points of the
//! discrete-event engine.
//!
//! The paper evaluates batch inference (total time over a test set). Real
//! edge deployments serve a *stream* of requests, where early-exit variance
//! has a second-order effect the batch numbers hide: hard images hold the
//! device busy 5–10× longer than easy ones, so bursts of hard inputs build
//! queues. This module — an extension beyond the paper, flagged as such in
//! DESIGN.md — simulates serving under Poisson arrivals with per-request
//! service times drawn from a [`CostProfile`], and reports sojourn-time
//! percentiles and energy (busy power while serving, idle power otherwise).
//!
//! # Two simulators, one report
//!
//! * [`simulate`] — the original closed-form single-server FIFO recurrence
//!   (`finish_i = max(arrival_i, finish_{i-1}) + service_i`). It is kept
//!   verbatim as the conformance baseline: the event engine's 1-server FIFO
//!   configuration must reproduce its [`ServingReport`] **bit for bit**
//!   (`tests/trait_conformance.rs` and the edgesim proptests enforce this).
//! * [`crate::engine::simulate_engine`] — the discrete-event engine: an
//!   event heap driving N parallel servers, with two extension points:
//!
//!   * [`crate::engine::Scheduler`] — the queue discipline a free server
//!     consults. Shipped implementations: FIFO, shortest-expected-service,
//!     and batch-accumulate with a max-wait deadline (see
//!     [`crate::engine::SchedulerKind`]). Implement the trait to add a new
//!     discipline; the engine only ever calls `enqueue` / `dispatch` /
//!     `queue_len`, so a scheduler owns its queue representation outright.
//!   * [`crate::engine::AdmissionPolicy`] — consulted once per arrival with
//!     the current queue length. `Unbounded` admits everything; `Bounded`
//!     sheds load with per-request drop accounting (reported as
//!     `drop_rate`, never silently).
//!
//! One level up, [`crate::fleet::simulate_fleet`] composes engine-identical
//! per-tier loops into a tiered edge–cloud topology with network links,
//! pluggable [`crate::fleet::OffloadPolicy`] routing and non-Poisson
//! [`crate::arrivals::ArrivalProcess`]es; its single-tier always-local
//! configuration reproduces the engine (and hence, for 1-server FIFO, this
//! module's [`simulate`]) bit for bit.
//!
//! # Where profiles come from
//!
//! The profile is the bridge to the model layer: `InferenceModel::
//! cost_profile()` prices a *trained* network on a device, and that exact
//! distribution drives the queue — no hand-picked service constants. For
//! measured workloads, `InferenceModel::sample_costs()` runs a real
//! evaluation batch and prices **each input by the execution path it
//! actually took** (e.g. which exit a BranchyNet sample left through);
//! [`CostProfile::empirical`] turns those per-sample latencies into a
//! replayable histogram, which is how the `serving` bench bin drives every
//! sweep.
//!
//! Both simulators are deterministic given their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::CostProfile;
use crate::device::DeviceModel;
use crate::power::PowerModel;

/// Workload + service parameters for one simulation run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Mean arrival rate, requests per second (Poisson process).
    pub arrival_rate_hz: f64,
    /// Per-request service-time distribution (from a model's
    /// `cost_profile()` on the simulated device, or hand-built for what-if
    /// studies).
    pub profile: CostProfile,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregate results of one serving simulation.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Mean sojourn (queue + service) time, ms.
    pub mean_sojourn_ms: f64,
    /// Median sojourn, ms.
    pub p50_ms: f64,
    /// 95th percentile sojourn, ms.
    pub p95_ms: f64,
    /// 99th percentile sojourn, ms.
    pub p99_ms: f64,
    /// Fraction of wall-clock time the server was busy.
    pub utilization: f64,
    /// Total simulated wall-clock time, ms.
    pub makespan_ms: f64,
    /// Total energy over the run, joules (busy + idle power integrated).
    pub energy_j: f64,
}

/// Run the single-server FIFO simulation.
///
/// # Panics
/// Panics on a non-positive arrival rate, an invalid profile (see
/// [`CostProfile::assert_valid`]), or zero requests.
pub fn simulate(device: &DeviceModel, cfg: &ServingConfig) -> ServingReport {
    assert!(cfg.arrival_rate_hz > 0.0, "arrival rate must be positive");
    cfg.profile.assert_valid();
    assert!(cfg.requests > 0, "need at least one request");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mean_interarrival_ms = 1000.0 / cfg.arrival_rate_hz;

    let mut arrival = 0.0f64; // arrival time of the current request
    let mut server_free_at = 0.0f64;
    let mut busy_ms = 0.0f64;
    let mut sojourns: Vec<f64> = Vec::with_capacity(cfg.requests);

    for _ in 0..cfg.requests {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        arrival += -mean_interarrival_ms * u.ln();
        let service = cfg.profile.sample(rng.gen::<f64>());
        let start = arrival.max(server_free_at);
        let finish = start + service;
        sojourns.push(finish - arrival);
        busy_ms += service;
        server_free_at = finish;
    }

    finalize_report(device, sojourns, busy_ms, server_free_at, 1)
}

/// Aggregate sojourn samples plus busy-time accounting into a
/// [`ServingReport`]. Shared by the legacy closed-form loop and the
/// discrete-event engine so the single-server FIFO configurations of the
/// two stay bit-identical: the sort, percentile indexing, mean summation
/// and energy arithmetic happen in exactly one place. `busy_ms` is summed
/// across all `servers`; capacity is `servers × makespan`.
pub(crate) fn finalize_report(
    device: &DeviceModel,
    mut sojourns: Vec<f64>,
    busy_ms: f64,
    makespan: f64,
    servers: usize,
) -> ServingReport {
    sojourns.sort_by(f64::total_cmp);
    let pct = |p: f64| percentile_sorted(&sojourns, p);
    let mean = if sojourns.is_empty() {
        0.0
    } else {
        sojourns.iter().sum::<f64>() / sojourns.len() as f64
    };
    report_from_quantiles(
        device,
        mean,
        pct(0.50),
        pct(0.95),
        pct(0.99),
        busy_ms,
        makespan,
        servers,
    )
}

/// Assemble a [`ServingReport`] from pre-computed sojourn statistics — the
/// shared tail of [`finalize_report`] (exact percentiles from a sorted
/// sample vector) and [`report_from_histogram`] (approximate percentiles
/// from a lean-mode histogram), so the utilization and energy arithmetic
/// exists in exactly one place.
#[allow(clippy::too_many_arguments)]
pub(crate) fn report_from_quantiles(
    device: &DeviceModel,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    busy_ms: f64,
    makespan: f64,
    servers: usize,
) -> ServingReport {
    let capacity_ms = makespan * servers as f64;
    let power = PowerModel::for_device(device.device);
    let busy_w = power.watts(device.inference_utilization);
    let idle_w = power.idle_watts();
    let idle_ms = (capacity_ms - busy_ms).max(0.0);
    let energy_j = (busy_w * busy_ms + idle_w * idle_ms) / 1000.0;

    ServingReport {
        mean_sojourn_ms: mean,
        p50_ms: p50,
        p95_ms: p95,
        p99_ms: p99,
        utilization: if capacity_ms > 0.0 {
            (busy_ms / capacity_ms).min(1.0)
        } else {
            0.0
        },
        makespan_ms: makespan,
        energy_j,
    }
}

/// [`finalize_report`] for lean record mode: sojourn statistics come from a
/// preallocated [`obs::Histogram`] (mean exact from the running sum;
/// percentiles bucketed, documented ≈2% error at the default 4% bucket
/// growth) instead of an O(n) sample vector. Busy/energy/utilization
/// arithmetic is exact and identical to full mode via
/// [`report_from_quantiles`]. An empty histogram reports zeros, matching
/// [`percentile_sorted`]'s empty-slice convention.
pub(crate) fn report_from_histogram(
    device: &DeviceModel,
    sojourn_ms: &obs::Histogram,
    busy_ms: f64,
    makespan: f64,
    servers: usize,
) -> ServingReport {
    let (mean, p50, p95, p99) = if sojourn_ms.count() == 0 {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        (
            sojourn_ms.sum() / sojourn_ms.count() as f64,
            sojourn_ms.quantile(0.50),
            sojourn_ms.quantile(0.95),
            sojourn_ms.quantile(0.99),
        )
    };
    report_from_quantiles(device, mean, p50, p95, p99, busy_ms, makespan, servers)
}

/// Percentile of an ascending-sorted sample set, in the simulators' shared
/// nearest-rank-by-rounding convention (`idx = round((len−1)·p)`). Every
/// report path (legacy loop, engine, fleet) goes through this one function
/// so their percentile semantics cannot drift apart, and
/// `obs::Histogram::quantile` pins its rank convention against it
/// (`tests/obs_conformance.rs`). Returns `0.0` for an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    fn base_cfg() -> ServingConfig {
        ServingConfig {
            arrival_rate_hz: 50.0,
            profile: CostProfile::bimodal(2.0, 13.0, 0.95),
            requests: 5_000,
            seed: 7,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = DeviceModel::raspberry_pi4();
        let a = simulate(&d, &base_cfg());
        let b = simulate(&d, &base_cfg());
        assert_eq!(a.mean_sojourn_ms, b.mean_sojourn_ms);
        assert_eq!(a.p99_ms, b.p99_ms);
    }

    #[test]
    fn sojourn_at_least_service_time() {
        let d = DeviceModel::raspberry_pi4();
        let r = simulate(&d, &base_cfg());
        assert!(r.p50_ms >= 2.0 - 1e-9);
        assert!(r.mean_sojourn_ms >= 2.0);
        assert!(r.p99_ms >= r.p95_ms && r.p95_ms >= r.p50_ms);
    }

    #[test]
    fn light_load_has_no_queueing() {
        let d = DeviceModel::raspberry_pi4();
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0, // mean gap 1000 ms ≫ service
            ..base_cfg()
        };
        let r = simulate(&d, &cfg);
        // Essentially every request is served immediately.
        assert!(r.p50_ms <= 13.0 + 1e-9);
        assert!(r.utilization < 0.05, "utilization {}", r.utilization);
    }

    #[test]
    fn hard_fraction_increases_tail_latency() {
        // The serving-level consequence of the paper's Fig. 3: more hard
        // images ⇒ longer busy periods ⇒ heavier tails.
        let d = DeviceModel::raspberry_pi4();
        let mostly_easy = simulate(
            &d,
            &ServingConfig {
                profile: CostProfile::bimodal(2.0, 13.0, 0.95),
                ..base_cfg()
            },
        );
        let mostly_hard = simulate(
            &d,
            &ServingConfig {
                profile: CostProfile::bimodal(2.0, 13.0, 0.60),
                ..base_cfg()
            },
        );
        assert!(
            mostly_hard.p95_ms > mostly_easy.p95_ms,
            "hard-heavy p95 {} should exceed easy-heavy p95 {}",
            mostly_hard.p95_ms,
            mostly_easy.p95_ms
        );
        assert!(mostly_hard.utilization > mostly_easy.utilization);
    }

    #[test]
    fn constant_profile_has_no_service_variance() {
        // A CBNet-style constant profile: every sojourn is queueing + the
        // same service time, so at light load all percentiles collapse.
        let d = DeviceModel::raspberry_pi4();
        let r = simulate(
            &d,
            &ServingConfig {
                arrival_rate_hz: 5.0,
                profile: CostProfile::constant(2.4),
                requests: 5_000,
                seed: 3,
            },
        );
        assert!((r.p50_ms - 2.4).abs() < 1e-9);
        assert!(
            r.p99_ms < 2.4 * 3.0,
            "p99 {} should stay near service",
            r.p99_ms
        );
    }

    #[test]
    fn overload_grows_queues() {
        let d = DeviceModel::raspberry_pi4();
        // Offered load ρ = λ·E[S] ≈ 200/s · 2.55 ms ≈ 0.51 vs 400/s ≈ 1.02.
        let stable = simulate(
            &d,
            &ServingConfig {
                arrival_rate_hz: 200.0,
                ..base_cfg()
            },
        );
        let overloaded = simulate(
            &d,
            &ServingConfig {
                arrival_rate_hz: 400.0,
                ..base_cfg()
            },
        );
        assert!(overloaded.mean_sojourn_ms > 2.0 * stable.mean_sojourn_ms);
        assert!(overloaded.utilization > 0.95);
    }

    #[test]
    fn energy_accounts_busy_and_idle() {
        let d = DeviceModel::raspberry_pi4();
        let r = simulate(&d, &base_cfg());
        // Bounds: everything at idle power vs everything at busy power.
        let lo = 2.7 * r.makespan_ms / 1000.0;
        let hi = 5.845 * r.makespan_ms / 1000.0;
        assert!(
            r.energy_j >= lo && r.energy_j <= hi,
            "energy {}",
            r.energy_j
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_bad_rate() {
        let d = DeviceModel::raspberry_pi4();
        let _ = simulate(
            &d,
            &ServingConfig {
                arrival_rate_hz: 0.0,
                ..base_cfg()
            },
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_invalid_profile() {
        let d = DeviceModel::raspberry_pi4();
        let _ = simulate(
            &d,
            &ServingConfig {
                profile: CostProfile::Constant { service_ms: -1.0 },
                ..base_cfg()
            },
        );
    }
}
