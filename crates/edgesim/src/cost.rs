//! Per-request service-time distributions.
//!
//! A [`CostProfile`] is *the* currency between trained models and the serving
//! layer: every `InferenceModel` prices itself on a device as a profile, and
//! the discrete-event simulators ([`crate::pipeline`], [`crate::engine`])
//! draw per-request service times from it. Three shapes cover every model in
//! the paper and every measurement of one:
//!
//! * [`CostProfile::Constant`] — input-independent latency. LeNet, CBNet,
//!   AdaDeep and SubFlow pay the same cost for every image (the property the
//!   paper's Table II/Fig. 5 comparisons hinge on for CBNet).
//! * [`CostProfile::Bimodal`] — early-exit latency. A BranchyNet request is
//!   *easy* with the measured exit probability (paying trunk + branch), or
//!   *hard* (additionally paying the tail). The mixture weight comes from the
//!   trained network's measured exit rate, not an assumed one.
//! * [`CostProfile::Empirical`] — a histogram of **measured per-sample
//!   latencies** (`InferenceModel::sample_costs` prices each input of an
//!   evaluation batch by the execution path it actually took). Sampling is
//!   the inverse empirical CDF, so replaying the profile reproduces the
//!   exact per-sample variance the closed-form shapes summarise away.
//!   Measurement runs through the planned executor, so the samples price
//!   whichever compute backend (`tensor::backend`) is active — swapping
//!   scalar for SIMD kernels moves these profiles automatically.

/// A per-request service-time distribution on one device, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum CostProfile {
    /// Every request takes exactly `service_ms`.
    Constant {
        /// Per-request service time, ms.
        service_ms: f64,
    },
    /// A two-point easy/hard mixture (early-exit execution).
    Bimodal {
        /// Service time of an easy (early-exiting) request, ms.
        easy_ms: f64,
        /// Service time of a hard (full-path) request, ms.
        hard_ms: f64,
        /// Probability a request is easy (the measured exit rate).
        easy_fraction: f64,
    },
    /// Measured per-sample latencies (an empirical histogram; each stored
    /// sample is one equal-mass bin of the inverse CDF).
    Empirical {
        /// Per-sample service times, sorted ascending, all positive/finite.
        samples_ms: Vec<f64>,
    },
}

impl CostProfile {
    /// An input-independent profile.
    ///
    /// # Panics
    /// Panics unless `service_ms > 0`.
    pub fn constant(service_ms: f64) -> Self {
        let p = CostProfile::Constant { service_ms };
        p.assert_valid();
        p
    }

    /// An easy/hard mixture profile.
    ///
    /// # Panics
    /// Panics unless both times are positive and `easy_fraction ∈ [0, 1]`.
    pub fn bimodal(easy_ms: f64, hard_ms: f64, easy_fraction: f64) -> Self {
        let p = CostProfile::Bimodal {
            easy_ms,
            hard_ms,
            easy_fraction,
        };
        p.assert_valid();
        p
    }

    /// A measured profile from per-sample latencies (any order; sorted
    /// internally). This is how trained models feed the serving layer their
    /// real variance: one entry per evaluation input, priced by the
    /// execution path that input actually took.
    ///
    /// # Panics
    /// Panics when `samples_ms` is empty or contains a non-positive or
    /// non-finite value.
    pub fn empirical(mut samples_ms: Vec<f64>) -> Self {
        assert!(
            samples_ms.iter().all(|s| s.is_finite()),
            "service times must be positive and finite"
        );
        samples_ms.sort_by(f64::total_cmp);
        let p = CostProfile::Empirical { samples_ms };
        p.assert_valid();
        p
    }

    /// Validate invariants (service times positive and finite, mixture
    /// weight in `[0, 1]`, empirical samples sorted and non-empty),
    /// returning a description of the first violation instead of panicking —
    /// what sweep drivers use to reject a bad configuration up front and
    /// keep going, rather than dying mid-matrix.
    pub fn try_valid(&self) -> Result<(), String> {
        match *self {
            CostProfile::Constant { service_ms } => {
                if !(service_ms > 0.0 && service_ms.is_finite()) {
                    return Err(format!(
                        "service times must be positive and finite, got {service_ms}"
                    ));
                }
            }
            CostProfile::Bimodal {
                easy_ms,
                hard_ms,
                easy_fraction,
            } => {
                if !(easy_ms > 0.0 && easy_ms.is_finite() && hard_ms > 0.0 && hard_ms.is_finite()) {
                    return Err(format!(
                        "service times must be positive and finite, got easy {easy_ms} / hard {hard_ms}"
                    ));
                }
                if !(0.0..=1.0).contains(&easy_fraction) {
                    return Err(format!(
                        "easy fraction must be in [0, 1], got {easy_fraction}"
                    ));
                }
            }
            CostProfile::Empirical { ref samples_ms } => {
                if samples_ms.is_empty() {
                    return Err("empirical profile needs samples".into());
                }
                if let Some(bad) = samples_ms.iter().find(|s| !(**s > 0.0 && s.is_finite())) {
                    return Err(format!(
                        "service times must be positive and finite, got {bad}"
                    ));
                }
                if !samples_ms.windows(2).all(|w| w[0] <= w[1]) {
                    return Err("empirical samples must be sorted ascending".into());
                }
            }
        }
        Ok(())
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics with the [`CostProfile::try_valid`] message on violation — the
    /// serving simulator calls this up front so a hand-constructed profile
    /// fails loudly rather than corrupting a run.
    pub fn assert_valid(&self) {
        if let Err(e) = self.try_valid() {
            // lint:allow(panic-in-lib, reason = "documented # Panics contract; try_valid is the non-panicking form")
            panic!("{e}");
        }
    }

    /// Mean service time, ms.
    pub fn mean_ms(&self) -> f64 {
        match self {
            CostProfile::Constant { service_ms } => *service_ms,
            CostProfile::Bimodal {
                easy_ms,
                hard_ms,
                easy_fraction,
            } => easy_fraction * easy_ms + (1.0 - easy_fraction) * hard_ms,
            CostProfile::Empirical { samples_ms } => {
                samples_ms.iter().sum::<f64>() / samples_ms.len() as f64
            }
        }
    }

    /// Smallest possible service time, ms.
    pub fn min_ms(&self) -> f64 {
        match self {
            CostProfile::Constant { service_ms } => *service_ms,
            CostProfile::Bimodal {
                easy_ms, hard_ms, ..
            } => easy_ms.min(*hard_ms),
            CostProfile::Empirical { samples_ms } => samples_ms[0],
        }
    }

    /// Largest possible service time, ms.
    pub fn max_ms(&self) -> f64 {
        match self {
            CostProfile::Constant { service_ms } => *service_ms,
            CostProfile::Bimodal {
                easy_ms, hard_ms, ..
            } => easy_ms.max(*hard_ms),
            CostProfile::Empirical { samples_ms } => samples_ms[samples_ms.len() - 1],
        }
    }

    /// Probability a request takes the cheap path: 1 for constant profiles,
    /// the mixture weight for bimodal ones, and the measured fraction of
    /// samples at the minimum latency for empirical ones (for an early-exit
    /// model measured per input, that *is* its observed exit rate).
    pub fn easy_fraction(&self) -> f64 {
        match self {
            CostProfile::Constant { .. } => 1.0,
            CostProfile::Bimodal { easy_fraction, .. } => *easy_fraction,
            CostProfile::Empirical { samples_ms } => {
                let min = samples_ms[0];
                samples_ms.iter().take_while(|&&s| s == min).count() as f64
                    / samples_ms.len() as f64
            }
        }
    }

    /// Draw one service time from the distribution via a uniform variate
    /// `u ∈ [0, 1)` (inverse-CDF sampling; callers own the RNG). For
    /// empirical profiles this indexes the sorted measurement histogram, so
    /// replayed workloads carry exactly the measured per-sample variance.
    ///
    /// # Panics
    /// Panics unless `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> f64 {
        assert!((0.0..1.0).contains(&u), "uniform variate must be in [0, 1)");
        match self {
            CostProfile::Constant { service_ms } => *service_ms,
            CostProfile::Bimodal {
                easy_ms,
                hard_ms,
                easy_fraction,
            } => {
                if u < *easy_fraction {
                    *easy_ms
                } else {
                    *hard_ms
                }
            }
            CostProfile::Empirical { samples_ms } => {
                let idx = (u * samples_ms.len() as f64) as usize;
                samples_ms[idx.min(samples_ms.len() - 1)]
            }
        }
    }

    /// The offered-load utilization `ρ = λ · E[S]` this profile implies at an
    /// arrival rate (requests/s). `ρ ≥ 1` means the queue is unstable.
    pub fn offered_load(&self, arrival_rate_hz: f64) -> f64 {
        arrival_rate_hz * self.mean_ms() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_stats() {
        let p = CostProfile::constant(2.4);
        assert_eq!(p.mean_ms(), 2.4);
        assert_eq!(p.min_ms(), 2.4);
        assert_eq!(p.max_ms(), 2.4);
        assert_eq!(p.easy_fraction(), 1.0);
        assert_eq!(p.sample(0.0), 2.4);
        assert_eq!(p.sample(0.999), 2.4);
    }

    #[test]
    fn bimodal_profile_stats() {
        let p = CostProfile::bimodal(2.0, 12.0, 0.75);
        assert!((p.mean_ms() - (0.75 * 2.0 + 0.25 * 12.0)).abs() < 1e-12);
        assert_eq!(p.min_ms(), 2.0);
        assert_eq!(p.max_ms(), 12.0);
        assert_eq!(p.easy_fraction(), 0.75);
        assert_eq!(p.sample(0.5), 2.0);
        assert_eq!(p.sample(0.75), 12.0);
        assert_eq!(p.sample(0.9), 12.0);
    }

    #[test]
    fn empirical_profile_stats() {
        // Unsorted on purpose: the constructor sorts.
        let p = CostProfile::empirical(vec![4.0, 1.0, 1.0, 2.0]);
        assert_eq!(p.min_ms(), 1.0);
        assert_eq!(p.max_ms(), 4.0);
        assert!((p.mean_ms() - 2.0).abs() < 1e-12);
        assert!((p.easy_fraction() - 0.5).abs() < 1e-12);
        // Inverse empirical CDF: quartile boundaries hit the sorted samples.
        assert_eq!(p.sample(0.0), 1.0);
        assert_eq!(p.sample(0.49), 1.0);
        assert_eq!(p.sample(0.5), 2.0);
        assert_eq!(p.sample(0.75), 4.0);
        assert_eq!(p.sample(0.999999), 4.0);
    }

    #[test]
    fn empirical_single_sample_acts_constant() {
        let p = CostProfile::empirical(vec![3.25]);
        assert_eq!(p.mean_ms(), 3.25);
        assert_eq!(p.easy_fraction(), 1.0);
        assert_eq!(p.sample(0.9), 3.25);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn rejects_empty_empirical() {
        let _ = CostProfile::empirical(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_empirical_sample() {
        let _ = CostProfile::empirical(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_hand_built_empirical() {
        // Direct construction bypasses the sorting constructor; assert_valid
        // must still catch it.
        CostProfile::Empirical {
            samples_ms: vec![2.0, 1.0],
        }
        .assert_valid();
    }

    #[test]
    fn try_valid_reports_errors_without_panicking() {
        assert!(CostProfile::constant(1.0).try_valid().is_ok());
        assert!(CostProfile::Constant { service_ms: -2.0 }
            .try_valid()
            .unwrap_err()
            .contains("positive"));
        assert!(CostProfile::Bimodal {
            easy_ms: 1.0,
            hard_ms: 2.0,
            easy_fraction: 1.5,
        }
        .try_valid()
        .unwrap_err()
        .contains("easy fraction"));
        assert!(CostProfile::Empirical { samples_ms: vec![] }
            .try_valid()
            .unwrap_err()
            .contains("needs samples"));
        assert!(CostProfile::Empirical {
            samples_ms: vec![2.0, 1.0],
        }
        .try_valid()
        .unwrap_err()
        .contains("sorted"));
    }

    #[test]
    fn offered_load_is_rate_times_mean() {
        let p = CostProfile::constant(5.0);
        assert!((p.offered_load(100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_service() {
        let _ = CostProfile::constant(0.0);
    }

    #[test]
    #[should_panic(expected = "easy fraction")]
    fn rejects_bad_fraction() {
        let _ = CostProfile::bimodal(1.0, 2.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "uniform variate")]
    fn rejects_bad_variate() {
        let _ = CostProfile::constant(1.0).sample(1.0);
    }
}
