//! Property-based tests for the tiered fleet simulator: request
//! conservation (`completed + dropped == offered`, per tier and fleet-wide,
//! with offloads counted as routing, never as loss) across heterogeneous
//! multi-tier topologies, offload policies and arrival processes.

use edgesim::fleet::{simulate_fleet, FleetOutcome, NetworkLink, Tier};
use edgesim::{
    AdmissionPolicy, ArrivalProcess, CostProfile, Device, DeviceModel, FleetConfig,
    OffloadPolicyKind, SchedulerKind,
};
use proptest::prelude::*;

fn arbitrary_profile() -> impl Strategy<Value = CostProfile> {
    prop_oneof![
        (0.1f64..20.0).prop_map(CostProfile::constant),
        (0.1f64..5.0, 5.0f64..25.0, 0.0f64..1.0)
            .prop_map(|(e, h, f)| CostProfile::bimodal(e, h, f)),
        proptest::collection::vec(0.1f64..20.0, 1..24).prop_map(CostProfile::empirical),
    ]
}

fn arbitrary_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Fifo),
        Just(SchedulerKind::ShortestService),
        (2usize..8, 0.0f64..10.0).prop_map(|(max_batch, max_wait_ms)| SchedulerKind::Batch {
            max_batch,
            max_wait_ms
        }),
    ]
}

fn arbitrary_admission() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Unbounded),
        (1usize..64).prop_map(|max_queue| AdmissionPolicy::Bounded { max_queue }),
    ]
}

fn arbitrary_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (10.0f64..800.0).prop_map(ArrivalProcess::poisson),
        (
            10.0f64..200.0,
            200.0f64..1500.0,
            10.0f64..500.0,
            10.0f64..500.0
        )
            .prop_map(|(b, p, db, dp)| ArrivalProcess::mmpp(b, p, db, dp)),
        // One appended strictly positive gap keeps any generated trace valid.
        (proptest::collection::vec(0.0f64..25.0, 1..40), 0.1f64..25.0).prop_map(
            |(mut gaps, extra)| {
                gaps.push(extra);
                ArrivalProcess::trace(gaps)
            }
        ),
    ]
}

fn arbitrary_policy() -> impl Strategy<Value = OffloadPolicyKind> {
    prop_oneof![
        Just(OffloadPolicyKind::AlwaysLocal),
        Just(OffloadPolicyKind::ExitConfidence),
        (1.0f64..100.0).prop_map(|slo_ms| OffloadPolicyKind::SloSojourn { slo_ms }),
    ]
}

fn arbitrary_tier(index: usize) -> impl Strategy<Value = Tier> {
    let device = match index % 3 {
        0 => Device::RaspberryPi4,
        1 => Device::GciCpu,
        _ => Device::GciGpu,
    };
    (
        1usize..4,
        arbitrary_profile(),
        arbitrary_scheduler(),
        arbitrary_admission(),
        0.0f64..30.0,
        1.0f64..200.0,
    )
        .prop_map(
            move |(servers, profile, scheduler, admission, latency, mbps)| Tier {
                name: format!("tier{index}"),
                device: DeviceModel::preset(device),
                servers,
                profile,
                scheduler,
                admission,
                link: (index > 0).then(|| NetworkLink::new(latency, mbps, 3136)),
            },
        )
}

fn arbitrary_fleet() -> impl Strategy<Value = FleetConfig> {
    (
        (arbitrary_tier(0), arbitrary_tier(1), arbitrary_tier(2)),
        1usize..=3,
        arbitrary_arrivals(),
        200usize..1200,
        0u64..u64::MAX,
        1.0f64..200.0,
    )
        .prop_map(
            |((t0, t1, t2), n_tiers, arrivals, requests, seed, slo_ms)| {
                let mut tiers = vec![t0, t1, t2];
                tiers.truncate(n_tiers);
                FleetConfig {
                    tiers,
                    arrivals,
                    requests,
                    seed,
                    slo_ms,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn requests_are_conserved_across_tiers(
        cfg in arbitrary_fleet(),
        policy in arbitrary_policy(),
    ) {
        prop_assert!(cfg.try_valid().is_ok());
        let r = simulate_fleet(&cfg, policy);

        // Fleet-wide conservation: offloading re-routes, it never loses.
        prop_assert_eq!(r.offered, cfg.requests);
        prop_assert_eq!(r.completed + r.dropped, r.offered);
        prop_assert_eq!(r.records.len(), r.offered);

        // Every request routes to exactly one tier, and each tier conserves.
        prop_assert_eq!(r.tiers.iter().map(|t| t.routed).sum::<usize>(), r.offered);
        for t in &r.tiers {
            prop_assert_eq!(t.completed + t.dropped, t.routed);
        }
        prop_assert_eq!(
            r.offloaded,
            r.tiers.iter().skip(1).map(|t| t.routed).sum::<usize>()
        );
        prop_assert_eq!(
            r.completed,
            r.tiers.iter().map(|t| t.completed).sum::<usize>()
        );
        prop_assert_eq!(r.dropped, r.tiers.iter().map(|t| t.dropped).sum::<usize>());

        // SLO ledger: violations = late completions + every drop.
        let late = r.records.iter().filter(|rec| match rec.outcome {
            FleetOutcome::Completed { finish_ms, .. } =>
                finish_ms - rec.request.gateway_ms > r.slo_ms,
            FleetOutcome::Dropped => false,
        }).count();
        prop_assert_eq!(r.slo_violations, late + r.dropped);
    }

    #[test]
    fn completed_sojourns_cover_transfer_and_service(
        cfg in arbitrary_fleet(),
        policy in arbitrary_policy(),
    ) {
        let r = simulate_fleet(&cfg, policy);
        for rec in &r.records {
            prop_assert!(rec.tier < cfg.tiers.len());
            // The routed tier prices the request by its own profile at the
            // request's difficulty quantile.
            let expect = cfg.tiers[rec.tier].profile.sample(rec.request.quantile);
            prop_assert_eq!(rec.service_ms, expect);
            if let FleetOutcome::Completed { start_ms, finish_ms, .. } = rec.outcome {
                let sojourn = finish_ms - rec.request.gateway_ms;
                // End-to-end time covers the link plus the tier's service
                // (batch fusion can only lengthen a member's stay).
                prop_assert!(sojourn >= rec.transfer_ms + rec.service_ms - 1e-9);
                prop_assert!(start_ms >= rec.request.gateway_ms + rec.transfer_ms - 1e-9);
                prop_assert!(finish_ms >= start_ms);
            }
        }
    }

    #[test]
    fn always_local_never_offloads_and_uses_only_tier0(
        cfg in arbitrary_fleet(),
    ) {
        let r = simulate_fleet(&cfg, OffloadPolicyKind::AlwaysLocal);
        prop_assert_eq!(r.offloaded, 0);
        prop_assert_eq!(r.tiers[0].routed, r.offered);
        for t in r.tiers.iter().skip(1) {
            prop_assert_eq!(t.routed, 0);
            prop_assert_eq!(t.per_server_busy_ms.iter().sum::<f64>(), 0.0);
        }
    }
}
