//! Property-based tests for the device, power and queueing models, and for
//! the discrete-event engine (FIFO order, sojourn ≥ service, conservation,
//! legacy equivalence).

use edgesim::engine::{simulate_engine, EngineConfig, Outcome, SchedulerKind};
use edgesim::pipeline::{simulate, ServingConfig};
use edgesim::{AdmissionPolicy, CostProfile, Device, DeviceModel, PowerModel};
use nn::{ActivationKind, LayerSpec};
use proptest::prelude::*;

fn arbitrary_specs() -> impl Strategy<Value = Vec<LayerSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..512, 1usize..512).prop_map(|(i, o)| LayerSpec::Dense {
                in_dim: i,
                out_dim: o
            }),
            (1usize..64).prop_map(|d| LayerSpec::Activation {
                kind: ActivationKind::Relu,
                dim: d
            }),
            (1usize..8, 2usize..8).prop_map(|(c, s)| LayerSpec::MaxPool2 {
                channels: c,
                in_h: s * 2,
                in_w: s * 2,
                window: 2
            }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latency_is_positive_and_additive(specs in arbitrary_specs()) {
        for dev in Device::ALL {
            let m = DeviceModel::preset(dev);
            let b = m.price_specs(&specs);
            prop_assert!(b.total_ms > 0.0);
            let sum: f64 = b.per_layer_ms.iter().map(|(_, t)| t).sum();
            prop_assert!((sum - b.total_ms).abs() < 1e-9);
            // Adding a layer never reduces latency.
            let mut bigger = specs.clone();
            bigger.push(LayerSpec::Dense { in_dim: 8, out_dim: 8 });
            prop_assert!(m.price_specs(&bigger).total_ms > b.total_ms);
        }
    }

    #[test]
    fn device_ordering_holds_for_any_architecture(specs in arbitrary_specs()) {
        // RPi is the slowest platform for every architecture in our presets.
        let rpi = DeviceModel::raspberry_pi4().price_specs(&specs).total_ms;
        let gci = DeviceModel::gci_cpu().price_specs(&specs).total_ms;
        prop_assert!(rpi > gci, "rpi {rpi} !> gci {gci}");
    }

    #[test]
    fn mixture_bounded_by_endpoints(easy in 0.01f64..10.0, tail in 0.01f64..10.0, rate in 0.0f64..1.0) {
        let m = DeviceModel::raspberry_pi4();
        let v = m.early_exit_mixture_ms(easy, tail, rate);
        prop_assert!(v >= easy - 1e-12);
        prop_assert!(v <= easy + tail + 1e-12);
    }

    #[test]
    fn power_within_idle_peak_envelope(u in 0.0f64..1.0) {
        for dev in Device::ALL {
            let p = PowerModel::for_device(dev);
            let w = p.watts(u);
            prop_assert!(w >= p.idle_watts() - 1e-9, "{dev}: {w} below idle");
            prop_assert!(w <= p.watts(1.0) + 1e-9);
        }
    }

    #[test]
    fn energy_scales_linearly_with_latency(lat in 0.1f64..100.0) {
        let m = DeviceModel::gci_cpu();
        let r1 = edgesim::EnergyReport::from_latency(&m, lat);
        let r2 = edgesim::EnergyReport::from_latency(&m, 2.0 * lat);
        prop_assert!((r2.energy_j - 2.0 * r1.energy_j).abs() < 1e-9);
    }

    #[test]
    fn queueing_mean_at_least_service_mean(
        rate in 10.0f64..200.0, easy_frac in 0.0f64..1.0, seed in 0u64..500
    ) {
        let m = DeviceModel::raspberry_pi4();
        let profile = CostProfile::bimodal(2.0, 13.0, easy_frac);
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            profile: profile.clone(),
            requests: 2_000,
            seed,
        };
        let r = simulate(&m, &cfg);
        // Sojourn ≥ service on average; allow sampling slack on the mix.
        prop_assert!(r.mean_sojourn_ms >= profile.mean_ms() * 0.8,
            "mean sojourn {} below service mean {}", r.mean_sojourn_ms, profile.mean_ms());
        prop_assert!(r.utilization <= 1.0 + 1e-9);
        prop_assert!(r.p99_ms >= r.p50_ms);
        prop_assert!(r.energy_j > 0.0);
    }

    #[test]
    fn faster_service_reduces_sojourn(rate in 20.0f64..100.0, seed in 0u64..500) {
        let m = DeviceModel::raspberry_pi4();
        let base = ServingConfig {
            arrival_rate_hz: rate,
            profile: CostProfile::constant(4.0),
            requests: 3_000,
            seed,
        };
        let slow = simulate(&m, &base);
        let fast = simulate(&m, &ServingConfig { profile: CostProfile::constant(2.0), ..base });
        prop_assert!(fast.mean_sojourn_ms < slow.mean_sojourn_ms);
    }

    #[test]
    fn cost_profile_sampling_matches_configured_mixture(
        easy in 0.5f64..5.0, extra in 0.5f64..20.0, frac in 0.0f64..1.0, seed in 0u64..500
    ) {
        // Empirical mean and mixture of inverse-CDF samples must track the
        // analytic mean_ms()/easy_fraction() of the profile.
        use rand::{Rng, SeedableRng};
        let hard = easy + extra;
        let p = CostProfile::bimodal(easy, hard, frac);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut sum = 0.0;
        let mut easy_count = 0usize;
        for _ in 0..n {
            let s = p.sample(rng.gen::<f64>());
            prop_assert!(s == easy || s == hard, "sample {s} outside support");
            if s == easy { easy_count += 1; }
            sum += s;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - p.mean_ms()).abs() < 0.15 * (hard - easy).max(0.2),
            "empirical mean {mean} vs analytic {}", p.mean_ms());
        let measured_frac = easy_count as f64 / n as f64;
        prop_assert!((measured_frac - frac).abs() < 0.02,
            "empirical easy fraction {measured_frac} vs configured {frac}");

        // Constant profiles: every sample is the mean.
        let c = CostProfile::constant(easy);
        for _ in 0..100 {
            prop_assert!((c.sample(rng.gen::<f64>()) - easy).abs() < 1e-12);
        }
    }

    #[test]
    fn engine_single_server_fifo_equals_legacy(
        rate in 10.0f64..300.0, easy_frac in 0.0f64..1.0, seed in 0u64..500
    ) {
        // The tentpole conformance property: the event engine in its
        // 1-server FIFO unbounded configuration reproduces the legacy
        // closed-form simulator bit for bit — same seed, same percentiles,
        // same energy.
        let m = DeviceModel::raspberry_pi4();
        let w = ServingConfig {
            arrival_rate_hz: rate,
            profile: CostProfile::bimodal(2.0, 13.0, easy_frac),
            requests: 1_500,
            seed,
        };
        let legacy = simulate(&m, &w);
        let engine = simulate_engine(&m, &EngineConfig::single_fifo(w));
        prop_assert_eq!(engine.serving.mean_sojourn_ms, legacy.mean_sojourn_ms);
        prop_assert_eq!(engine.serving.p50_ms, legacy.p50_ms);
        prop_assert_eq!(engine.serving.p95_ms, legacy.p95_ms);
        prop_assert_eq!(engine.serving.p99_ms, legacy.p99_ms);
        prop_assert_eq!(engine.serving.utilization, legacy.utilization);
        prop_assert_eq!(engine.serving.makespan_ms, legacy.makespan_ms);
        prop_assert_eq!(engine.serving.energy_j, legacy.energy_j);
        prop_assert_eq!(engine.dropped, 0);
    }

    #[test]
    fn engine_preserves_fifo_order_per_server(
        rate in 50.0f64..400.0, servers in 1usize..5, seed in 0u64..500
    ) {
        // Under the FIFO discipline, the requests any one server runs must
        // start in arrival (id) order — parallel servers may interleave
        // globally, but never reorder within a server.
        let m = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: ServingConfig {
                arrival_rate_hz: rate,
                profile: CostProfile::bimodal(2.0, 13.0, 0.85),
                requests: 1_200,
                seed,
            },
            servers,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Unbounded,
        };
        let r = simulate_engine(&m, &cfg);
        let mut last_start = vec![f64::NEG_INFINITY; servers];
        let mut last_id = vec![0usize; servers];
        let mut seen = vec![false; servers];
        for rec in &r.records {
            let Outcome::Completed { server, start_ms, .. } = rec.outcome else {
                panic!("unbounded admission never drops");
            };
            if seen[server] {
                prop_assert!(start_ms >= last_start[server],
                    "server {server} started {start_ms} before {}", last_start[server]);
                prop_assert!(rec.request.id > last_id[server],
                    "server {server} reordered ids {} -> {}", last_id[server], rec.request.id);
            }
            seen[server] = true;
            last_start[server] = start_ms;
            last_id[server] = rec.request.id;
        }
    }

    #[test]
    fn engine_sojourn_at_least_service_per_request(
        rate in 50.0f64..600.0, servers in 1usize..5, sched in 0usize..3, seed in 0u64..500
    ) {
        // Every completed request's sojourn covers at least its own service
        // requirement, whatever the discipline (a batch is as slow as its
        // slowest member, so members never finish early).
        let m = DeviceModel::gci_cpu();
        let scheduler = [
            SchedulerKind::Fifo,
            SchedulerKind::ShortestService,
            SchedulerKind::Batch { max_batch: 4, max_wait_ms: 1.5 },
        ][sched];
        let cfg = EngineConfig {
            workload: ServingConfig {
                arrival_rate_hz: rate,
                profile: CostProfile::bimodal(0.4, 1.4, 0.75),
                requests: 1_000,
                seed,
            },
            servers,
            scheduler,
            admission: AdmissionPolicy::Unbounded,
        };
        let r = simulate_engine(&m, &cfg);
        for rec in &r.records {
            let Outcome::Completed { start_ms, finish_ms, .. } = rec.outcome else {
                panic!("unbounded admission never drops");
            };
            prop_assert!(start_ms >= rec.request.arrival_ms - 1e-9);
            prop_assert!(finish_ms - rec.request.arrival_ms
                >= rec.request.service_ms - 1e-9,
                "request {} sojourn below its own service", rec.request.id);
        }
    }

    #[test]
    fn engine_conserves_requests(
        rate in 100.0f64..800.0, servers in 1usize..4, max_queue in 1usize..64, seed in 0u64..500
    ) {
        // Conservation under admission control: every generated arrival is
        // either completed or dropped, exactly once, and the report's
        // counters agree with the per-request records.
        let m = DeviceModel::raspberry_pi4();
        let cfg = EngineConfig {
            workload: ServingConfig {
                arrival_rate_hz: rate,
                profile: CostProfile::bimodal(2.0, 13.0, 0.6),
                requests: 1_000,
                seed,
            },
            servers,
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Bounded { max_queue },
        };
        let r = simulate_engine(&m, &cfg);
        prop_assert_eq!(r.arrivals, 1_000);
        prop_assert_eq!(r.records.len(), 1_000);
        let completed = r.records.iter()
            .filter(|rec| matches!(rec.outcome, Outcome::Completed { .. }))
            .count();
        let dropped = r.records.len() - completed;
        prop_assert_eq!(completed, r.completed);
        prop_assert_eq!(dropped, r.dropped);
        prop_assert_eq!(r.completed + r.dropped, r.arrivals);
        prop_assert!(r.per_server_utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }
}
