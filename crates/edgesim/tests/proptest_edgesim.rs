//! Property-based tests for the device, power and queueing models.

use edgesim::pipeline::{simulate, ServingConfig};
use edgesim::{CostProfile, Device, DeviceModel, PowerModel};
use nn::{ActivationKind, LayerSpec};
use proptest::prelude::*;

fn arbitrary_specs() -> impl Strategy<Value = Vec<LayerSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..512, 1usize..512).prop_map(|(i, o)| LayerSpec::Dense {
                in_dim: i,
                out_dim: o
            }),
            (1usize..64).prop_map(|d| LayerSpec::Activation {
                kind: ActivationKind::Relu,
                dim: d
            }),
            (1usize..8, 2usize..8).prop_map(|(c, s)| LayerSpec::MaxPool2 {
                channels: c,
                in_h: s * 2,
                in_w: s * 2,
                window: 2
            }),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latency_is_positive_and_additive(specs in arbitrary_specs()) {
        for dev in Device::ALL {
            let m = DeviceModel::preset(dev);
            let b = m.price_specs(&specs);
            prop_assert!(b.total_ms > 0.0);
            let sum: f64 = b.per_layer_ms.iter().map(|(_, t)| t).sum();
            prop_assert!((sum - b.total_ms).abs() < 1e-9);
            // Adding a layer never reduces latency.
            let mut bigger = specs.clone();
            bigger.push(LayerSpec::Dense { in_dim: 8, out_dim: 8 });
            prop_assert!(m.price_specs(&bigger).total_ms > b.total_ms);
        }
    }

    #[test]
    fn device_ordering_holds_for_any_architecture(specs in arbitrary_specs()) {
        // RPi is the slowest platform for every architecture in our presets.
        let rpi = DeviceModel::raspberry_pi4().price_specs(&specs).total_ms;
        let gci = DeviceModel::gci_cpu().price_specs(&specs).total_ms;
        prop_assert!(rpi > gci, "rpi {rpi} !> gci {gci}");
    }

    #[test]
    fn mixture_bounded_by_endpoints(easy in 0.01f64..10.0, tail in 0.01f64..10.0, rate in 0.0f64..1.0) {
        let m = DeviceModel::raspberry_pi4();
        let v = m.early_exit_mixture_ms(easy, tail, rate);
        prop_assert!(v >= easy - 1e-12);
        prop_assert!(v <= easy + tail + 1e-12);
    }

    #[test]
    fn power_within_idle_peak_envelope(u in 0.0f64..1.0) {
        for dev in Device::ALL {
            let p = PowerModel::for_device(dev);
            let w = p.watts(u);
            prop_assert!(w >= p.idle_watts() - 1e-9, "{dev}: {w} below idle");
            prop_assert!(w <= p.watts(1.0) + 1e-9);
        }
    }

    #[test]
    fn energy_scales_linearly_with_latency(lat in 0.1f64..100.0) {
        let m = DeviceModel::gci_cpu();
        let r1 = edgesim::EnergyReport::from_latency(&m, lat);
        let r2 = edgesim::EnergyReport::from_latency(&m, 2.0 * lat);
        prop_assert!((r2.energy_j - 2.0 * r1.energy_j).abs() < 1e-9);
    }

    #[test]
    fn queueing_mean_at_least_service_mean(
        rate in 10.0f64..200.0, easy_frac in 0.0f64..1.0, seed in 0u64..500
    ) {
        let m = DeviceModel::raspberry_pi4();
        let profile = CostProfile::bimodal(2.0, 13.0, easy_frac);
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            profile,
            requests: 2_000,
            seed,
        };
        let r = simulate(&m, &cfg);
        // Sojourn ≥ service on average; allow sampling slack on the mix.
        prop_assert!(r.mean_sojourn_ms >= profile.mean_ms() * 0.8,
            "mean sojourn {} below service mean {}", r.mean_sojourn_ms, profile.mean_ms());
        prop_assert!(r.utilization <= 1.0 + 1e-9);
        prop_assert!(r.p99_ms >= r.p50_ms);
        prop_assert!(r.energy_j > 0.0);
    }

    #[test]
    fn faster_service_reduces_sojourn(rate in 20.0f64..100.0, seed in 0u64..500) {
        let m = DeviceModel::raspberry_pi4();
        let base = ServingConfig {
            arrival_rate_hz: rate,
            profile: CostProfile::constant(4.0),
            requests: 3_000,
            seed,
        };
        let slow = simulate(&m, &base);
        let fast = simulate(&m, &ServingConfig { profile: CostProfile::constant(2.0), ..base });
        prop_assert!(fast.mean_sojourn_ms < slow.mean_sojourn_ms);
    }

    #[test]
    fn cost_profile_sampling_matches_configured_mixture(
        easy in 0.5f64..5.0, extra in 0.5f64..20.0, frac in 0.0f64..1.0, seed in 0u64..500
    ) {
        // Empirical mean and mixture of inverse-CDF samples must track the
        // analytic mean_ms()/easy_fraction() of the profile.
        use rand::{Rng, SeedableRng};
        let hard = easy + extra;
        let p = CostProfile::bimodal(easy, hard, frac);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut sum = 0.0;
        let mut easy_count = 0usize;
        for _ in 0..n {
            let s = p.sample(rng.gen::<f64>());
            prop_assert!(s == easy || s == hard, "sample {s} outside support");
            if s == easy { easy_count += 1; }
            sum += s;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - p.mean_ms()).abs() < 0.15 * (hard - easy).max(0.2),
            "empirical mean {mean} vs analytic {}", p.mean_ms());
        let measured_frac = easy_count as f64 / n as f64;
        prop_assert!((measured_frac - frac).abs() < 0.02,
            "empirical easy fraction {measured_frac} vs configured {frac}");

        // Constant profiles: every sample is the mean.
        let c = CostProfile::constant(easy);
        for _ in 0..100 {
            prop_assert!((c.sample(rng.gen::<f64>()) - easy).abs() < 1e-12);
        }
    }
}
