//! Million-request scale properties — `#[ignore]` by default, run in
//! release mode by an explicit CI step (`cargo test --release -- --ignored`).
//!
//! These pin the invariants that only show up at fleet scale: conservation
//! (every one of 10⁶ offered requests is completed or dropped exactly
//! once), per-server FIFO order across a million dispatches, and that a
//! [`RecordMode::Lean`] run streams the same aggregate counts without
//! holding per-request records.

use edgesim::engine::{EngineSim, Outcome, Request};
use edgesim::fleet::{FleetSim, NetworkLink, Tier};
use edgesim::{
    AdmissionPolicy, ArrivalProcess, CostProfile, DeviceModel, FleetConfig, OffloadPolicyKind,
    RecordMode, SchedulerKind,
};
use proptest::prelude::*;

const MILLION: usize = 1_000_000;

fn million_requests(rate_hz: f64, seed: u64) -> Vec<Request> {
    let profile = CostProfile::bimodal(2.0, 13.0, 0.7);
    ArrivalProcess::poisson(rate_hz)
        .generate(MILLION, seed)
        .into_iter()
        .enumerate()
        .map(|(id, (arrival_ms, quantile))| Request {
            id,
            arrival_ms,
            service_ms: profile.sample(quantile),
        })
        .collect()
}

proptest! {
    // Three seeds is plenty: each case replays a full 10⁶-request run.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    #[ignore = "million-request scale run; release-mode CI step executes it explicitly"]
    fn million_request_engine_conserves_and_keeps_fifo_order(seed in 0u64..1000) {
        let requests = million_requests(900.0, seed);
        let mut sim = EngineSim::new(
            4,
            SchedulerKind::Fifo,
            AdmissionPolicy::Bounded { max_queue: 48 },
            requests,
            RecordMode::Full,
        )
        .expect("valid engine config");
        sim.run(None);
        let report = sim.report(&DeviceModel::raspberry_pi4());

        // Conservation: completed + dropped == offered, and the counters
        // agree with the per-request records.
        prop_assert_eq!(report.arrivals, MILLION);
        prop_assert_eq!(report.records.len(), MILLION);
        prop_assert_eq!(report.completed + report.dropped, MILLION);
        let completed = report
            .records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }))
            .count();
        prop_assert_eq!(completed, report.completed);

        // Per-server FIFO order: within any one server, service starts in
        // arrival (id) order — a million dispatches, zero reorderings.
        let mut last_id = [usize::MAX; 4];
        let mut last_start = [f64::NEG_INFINITY; 4];
        for rec in &report.records {
            let Outcome::Completed { server, start_ms, .. } = rec.outcome else {
                continue;
            };
            if last_id[server] != usize::MAX {
                prop_assert!(
                    rec.request.id > last_id[server],
                    "server {server} reordered ids {} -> {}",
                    last_id[server],
                    rec.request.id
                );
                prop_assert!(start_ms >= last_start[server]);
            }
            last_id[server] = rec.request.id;
            last_start[server] = start_ms;
        }
    }

    #[test]
    #[ignore = "million-request scale run; release-mode CI step executes it explicitly"]
    fn million_request_fleet_lean_conserves_without_records(seed in 0u64..1000) {
        let cfg = FleetConfig {
            tiers: vec![
                Tier {
                    name: "edge".into(),
                    device: DeviceModel::raspberry_pi4(),
                    servers: 2,
                    profile: CostProfile::bimodal(4.0, 14.0, 0.7),
                    scheduler: SchedulerKind::Fifo,
                    admission: AdmissionPolicy::Bounded { max_queue: 32 },
                    link: None,
                },
                Tier {
                    name: "cloud-cpu".into(),
                    device: DeviceModel::gci_cpu(),
                    servers: 4,
                    profile: CostProfile::bimodal(1.0, 3.5, 0.7),
                    scheduler: SchedulerKind::Batch { max_batch: 8, max_wait_ms: 1.5 },
                    admission: AdmissionPolicy::Unbounded,
                    link: Some(NetworkLink::wifi(16 * 1024)),
                },
                Tier {
                    name: "cloud-gpu".into(),
                    device: DeviceModel::gci_gpu(),
                    servers: 1,
                    profile: CostProfile::constant(0.8),
                    scheduler: SchedulerKind::ShortestService,
                    admission: AdmissionPolicy::Unbounded,
                    link: Some(NetworkLink::wan(16 * 1024)),
                },
            ],
            arrivals: ArrivalProcess::poisson(1_500.0),
            requests: MILLION,
            seed,
            slo_ms: 30.0,
        };
        let mut policy = OffloadPolicyKind::SloSojourn { slo_ms: 18.0 }.build();
        let mut sim = FleetSim::new(&cfg, RecordMode::Lean).expect("valid fleet config");
        sim.run(policy.as_mut(), None).expect("routing stays in range");
        let report = sim.report();

        // Conservation from three independent accountings: the aggregate
        // counters, the per-tier sums, and the streamed histogram.
        prop_assert_eq!(report.offered, MILLION);
        prop_assert_eq!(report.completed + report.dropped, MILLION);
        let routed: usize = report.tiers.iter().map(|t| t.routed).sum();
        prop_assert_eq!(routed, MILLION);
        let tier_completed: usize = report.tiers.iter().map(|t| t.completed).sum();
        let tier_dropped: usize = report.tiers.iter().map(|t| t.dropped).sum();
        prop_assert_eq!(tier_completed, report.completed);
        prop_assert_eq!(tier_dropped, report.dropped);
        let lean = sim.lean_stats().expect("lean mode carries histograms");
        prop_assert_eq!(lean.end_to_end_ms.count() as usize, report.completed);

        // The point of Lean mode: no O(n) record storage at scale.
        prop_assert!(report.records.is_empty(), "lean run holds no per-request records");
    }
}
