//! [`InferenceModel`] implementations for the `models` crate's networks.
//!
//! Each adapter borrows its network mutably for the duration of an
//! evaluation, so the same trained weights can also be used directly (for
//! threshold sweeps, retraining, serialisation) between evaluations. The
//! CBNet adapter lives in the `cbnet` crate next to `CbnetModel` itself.

use edgesim::{CostProfile, DeviceModel};
use models::branchynet::BranchyNet;
use models::metrics::ExitStats;
use models::subflow::SubFlow;
use nn::Network;
use tensor::Tensor;

use crate::model::InferenceModel;

/// A plain sequential classifier (LeNet, an AdaDeep search winner, …):
/// every image pays the full network, so the cost profile is constant.
pub struct ClassifierModel<'a> {
    name: String,
    net: &'a mut Network,
}

impl<'a> ClassifierModel<'a> {
    /// Wrap a trained network under a display name.
    pub fn new(name: impl Into<String>, net: &'a mut Network) -> Self {
        ClassifierModel {
            name: name.into(),
            net,
        }
    }
}

impl InferenceModel for ClassifierModel<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_batch(&mut self, x: &Tensor) -> Vec<usize> {
        // Planned forward: repeated evaluation batches (empirical-profile
        // measurement, serving sweeps) reuse the network's cached plan. The
        // plan runs on the process-resolved compute backend
        // (`CBNET_BACKEND`, auto-detected SIMD otherwise) and rebuilds when
        // that resolution changes, so measured profiles always price the
        // kernels actually in use.
        self.net.predict_planned(x).argmax_rows()
    }

    fn cost_profile(&self, device: &DeviceModel) -> CostProfile {
        CostProfile::constant(device.price_network(self.net).total_ms)
    }

    fn sample_costs(&mut self, x: &Tensor, device: &DeviceModel) -> Vec<f64> {
        // Input-independent: every row pays the full network, no prediction
        // pass needed to price it.
        vec![device.price_network(self.net).total_ms; x.dims()[0]]
    }
}

/// A trained BranchyNet: bimodal cost — every sample pays trunk + branch +
/// the exit-decision sync; samples that miss the exit additionally pay the
/// tail. The mixture weight is the exit rate **measured by the most recent
/// [`predict_batch`](InferenceModel::predict_batch)** (the legacy
/// `evaluate_branchynet` semantics); before any prediction it conservatively
/// assumes no early exits (the all-hard upper bound).
pub struct BranchyNetModel<'a> {
    net: &'a mut BranchyNet,
    measured_exit_rate: Option<f32>,
}

impl<'a> BranchyNetModel<'a> {
    /// Wrap a trained BranchyNet.
    pub fn new(net: &'a mut BranchyNet) -> Self {
        BranchyNetModel {
            net,
            measured_exit_rate: None,
        }
    }

    /// The exit rate measured by the most recent `predict_batch`, if any.
    pub fn measured_exit_rate(&self) -> Option<f32> {
        self.measured_exit_rate
    }

    /// The underlying network (threshold sweeps between evaluations).
    pub fn network_mut(&mut self) -> &mut BranchyNet {
        self.net
    }

    /// The two execution-path prices on a device: `(easy, hard)` ms. The
    /// single source for both `cost_profile` and `sample_costs`, so the
    /// bimodal and empirical views can never diverge.
    fn easy_hard_ms(&self, device: &DeviceModel) -> (f64, f64) {
        let (trunk, branch, tail) = self.net.stages();
        let easy_ms = device.price_network(trunk).total_ms
            + device.price_network(branch).total_ms
            + device.exit_sync_ms;
        let hard_ms = easy_ms + device.price_network(tail).total_ms;
        (easy_ms, hard_ms)
    }
}

impl InferenceModel for BranchyNetModel<'_> {
    fn name(&self) -> &str {
        "BranchyNet"
    }

    fn predict_batch(&mut self, x: &Tensor) -> Vec<usize> {
        let outputs = self.net.infer(x);
        self.measured_exit_rate = Some(ExitStats::from_outputs(&outputs).early_rate());
        outputs.into_iter().map(|o| o.prediction).collect()
    }

    fn cost_profile(&self, device: &DeviceModel) -> CostProfile {
        let (easy_ms, hard_ms) = self.easy_hard_ms(device);
        let easy_fraction = self.measured_exit_rate.unwrap_or(0.0) as f64;
        CostProfile::bimodal(easy_ms, hard_ms, easy_fraction)
    }

    /// Per-sample costs from the **actual** exit decisions: each row is
    /// charged the easy path or the full path by where it really left the
    /// network on this batch (also updating the measured exit rate, like
    /// `predict_batch`).
    fn sample_costs(&mut self, x: &Tensor, device: &DeviceModel) -> Vec<f64> {
        let outputs = self.net.infer(x);
        self.measured_exit_rate = Some(ExitStats::from_outputs(&outputs).early_rate());
        let (easy_ms, hard_ms) = self.easy_hard_ms(device);
        outputs
            .into_iter()
            .map(|o| match o.exit {
                models::branchynet::ExitDecision::Early => easy_ms,
                models::branchynet::ExitDecision::Main => hard_ms,
            })
            .collect()
    }

    fn exit_rate(&self) -> Option<f32> {
        self.measured_exit_rate
    }
}

/// A SubFlow executor at a fixed utilization: the induced subgraph executes
/// every layer (dispatch applies) on a fraction of the units, so the cost is
/// constant per request, priced from the effective per-layer FLOPs.
pub struct SubFlowModel<'a> {
    sf: &'a SubFlow,
    utilization: f32,
}

impl<'a> SubFlowModel<'a> {
    /// Wrap a SubFlow executor at `utilization ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics when the utilization is out of range.
    pub fn new(sf: &'a SubFlow, utilization: f32) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        SubFlowModel { sf, utilization }
    }
}

impl InferenceModel for SubFlowModel<'_> {
    fn name(&self) -> &str {
        "SubFlow"
    }

    fn predict_batch(&mut self, x: &Tensor) -> Vec<usize> {
        self.sf.predict(self.utilization, x)
    }

    fn cost_profile(&self, device: &DeviceModel) -> CostProfile {
        let specs = self.sf.backbone().specs();
        let eff = self.sf.effective_layer_flops(self.utilization);
        CostProfile::constant(device.price_specs_with_flops(&specs, &eff).total_ms)
    }

    fn sample_costs(&mut self, x: &Tensor, device: &DeviceModel) -> Vec<f64> {
        // The induced subgraph runs every layer for every input at the fixed
        // utilization — input-independent cost.
        vec![self.cost_profile(device).mean_ms(); x.dims()[0]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{evaluate, Scenario};
    use datasets::{generate_pair, Family};
    use edgesim::Device;
    use models::branchynet::BranchyNetConfig;
    use models::lenet::build_lenet;
    use tensor::random::rng_from_seed;

    #[test]
    fn classifier_profile_is_constant_network_price() {
        let mut rng = rng_from_seed(0);
        let mut net = build_lenet(&mut rng);
        let device = DeviceModel::raspberry_pi4();
        let expect = device.price_network(&net).total_ms;
        let model = ClassifierModel::new("LeNet", &mut net);
        match model.cost_profile(&device) {
            CostProfile::Constant { service_ms } => {
                assert!((service_ms - expect).abs() < 1e-12)
            }
            other => panic!("expected constant profile, got {other:?}"),
        }
    }

    #[test]
    fn branchynet_profile_uses_measured_rate() {
        let mut rng = rng_from_seed(1);
        let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
        let split = generate_pair(Family::MnistLike, 10, 40, 5);
        let device = DeviceModel::raspberry_pi4();

        bn.set_threshold(f32::INFINITY); // all early
        let mut model = BranchyNetModel::new(&mut bn);
        assert_eq!(model.cost_profile(&device).easy_fraction(), 0.0); // unmeasured
        let _ = model.predict_batch(&split.test.images);
        assert_eq!(model.exit_rate(), Some(1.0));
        let all_early = model.cost_profile(&device);
        assert_eq!(all_early.easy_fraction(), 1.0);
        assert!((all_early.mean_ms() - all_early.min_ms()).abs() < 1e-12);

        model.network_mut().set_threshold(0.0); // none early
        let _ = model.predict_batch(&split.test.images);
        let none_early = model.cost_profile(&device);
        assert_eq!(none_early.easy_fraction(), 0.0);
        assert!(
            none_early.mean_ms() > all_early.mean_ms() * 3.0,
            "full path {} should dwarf easy path {}",
            none_early.mean_ms(),
            all_early.mean_ms()
        );
    }

    #[test]
    fn generic_evaluate_produces_sane_report() {
        let mut rng = rng_from_seed(0);
        let mut net = build_lenet(&mut rng);
        let split = generate_pair(Family::MnistLike, 10, 50, 3);
        let mut model = ClassifierModel::new("LeNet", &mut net);
        let scenario = Scenario::new(Family::MnistLike, Device::RaspberryPi4);
        let r = evaluate(&mut model, &split.test, &scenario);
        assert_eq!(r.model, "LeNet");
        assert_eq!(r.scenario, "MNIST @ Raspberry Pi 4");
        assert!(r.latency_ms > 10.0 && r.latency_ms < 16.0);
        assert!((0.0..=100.0).contains(&r.accuracy_pct));
        assert!(r.energy_j > 0.0);
        assert!(r.exit_rate.is_none());
    }

    #[test]
    fn branchynet_sample_costs_follow_actual_exits() {
        let mut rng = rng_from_seed(5);
        let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
        bn.set_threshold(1.2); // mixed exits
        let split = generate_pair(Family::FmnistLike, 10, 50, 7);
        let device = DeviceModel::raspberry_pi4();
        let mut model = BranchyNetModel::new(&mut bn);
        let costs = model.sample_costs(&split.test.images, &device);
        assert_eq!(costs.len(), 50);

        // The per-sample costs take exactly the two mixture values, and the
        // measured easy share equals the updated exit rate.
        let profile = model.cost_profile(&device);
        let (easy, hard) = (profile.min_ms(), profile.max_ms());
        assert!(costs.iter().all(|&c| c == easy || c == hard));
        let easy_share = costs.iter().filter(|&&c| c == easy).count() as f32 / costs.len() as f32;
        assert_eq!(easy_share, model.exit_rate().expect("measured"));

        // Their empirical profile carries the same mean as the bimodal one.
        let emp = CostProfile::empirical(costs);
        assert!((emp.mean_ms() - profile.mean_ms()).abs() < 1e-9);
    }

    #[test]
    fn classifier_sample_costs_are_constant_rows() {
        let mut rng = rng_from_seed(6);
        let mut net = build_lenet(&mut rng);
        let split = generate_pair(Family::MnistLike, 10, 20, 8);
        let device = DeviceModel::gci_cpu();
        let mut model = ClassifierModel::new("LeNet", &mut net);
        let costs = model.sample_costs(&split.test.images, &device);
        let expect = model.cost_profile(&device).mean_ms();
        assert_eq!(costs.len(), 20);
        assert!(costs.iter().all(|&c| c == expect));
    }

    #[test]
    fn subflow_full_utilization_matches_backbone_price() {
        let mut rng = rng_from_seed(2);
        let net = build_lenet(&mut rng);
        let device = DeviceModel::gci_cpu();
        let backbone_ms = device.price_network(&net).total_ms;
        let sf = SubFlow::new(net);
        let full = SubFlowModel::new(&sf, 1.0);
        assert!((full.cost_profile(&device).mean_ms() - backbone_ms).abs() < 1e-9);
        let half = SubFlowModel::new(&sf, 0.5);
        assert!(half.cost_profile(&device).mean_ms() < backbone_ms);
    }
}
