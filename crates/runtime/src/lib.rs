//! # runtime — the unified model-serving API
//!
//! Before this crate existed, every layer of the workspace spoke to models
//! differently: `cbnet::evaluation` shipped one bespoke `evaluate_*` function
//! per architecture, the experiment drivers re-dispatched per model, and the
//! serving simulator was fed hand-picked latency constants. This crate is the
//! single interface they all use now:
//!
//! * [`InferenceModel`] — the trait every comparator implements: a name, a
//!   batch classifier, and a device-priced [`CostProfile`] (the per-request
//!   service-time distribution the serving simulator consumes);
//! * [`Scenario`] — *what* is being evaluated: dataset family × device, with
//!   a display label;
//! * [`evaluate`] — the one generic evaluation path, producing a
//!   [`ModelReport`] with the exact latency/accuracy/energy semantics the
//!   per-model functions used to implement separately;
//! * [`adapters`] — [`InferenceModel`] implementations for the `models`
//!   crate's networks ([`ClassifierModel`], [`BranchyNetModel`],
//!   [`SubFlowModel`]). The CBNet model implements the trait in the `cbnet`
//!   crate, next to its definition.
//!
//! ## Example
//!
//! ```
//! use runtime::{evaluate, ClassifierModel, Scenario};
//! use datasets::{generate_pair, Family};
//! use edgesim::Device;
//! use models::lenet::build_lenet;
//!
//! let split = generate_pair(Family::MnistLike, 50, 30, 1);
//! let mut rng = tensor::random::rng_from_seed(0);
//! let mut net = build_lenet(&mut rng);
//! let mut model = ClassifierModel::new("LeNet", &mut net);
//! let scenario = Scenario::new(Family::MnistLike, Device::RaspberryPi4);
//! let report = evaluate(&mut model, &split.test, &scenario);
//! assert_eq!(report.model, "LeNet");
//! assert!(report.latency_ms > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod adapters;
pub mod model;
pub mod report;

pub use adapters::{BranchyNetModel, ClassifierModel, SubFlowModel};
pub use edgesim::CostProfile;
pub use model::InferenceModel;
pub use report::{evaluate, evaluate_on, ModelReport, Scenario};
