//! The [`InferenceModel`] trait.

use edgesim::{CostProfile, DeviceModel};
use tensor::Tensor;

/// A deployable classifier with a device-priceable serving cost.
///
/// Everything the paper compares — LeNet, BranchyNet, CBNet, AdaDeep,
/// SubFlow — implements this trait, which is what lets the experiment
/// drivers, the generic [`evaluate`](crate::evaluate) path, and the serving
/// simulator treat all five uniformly.
///
/// # Contract
///
/// * [`predict_batch`](InferenceModel::predict_batch) classifies a
///   `(n, pixels)` batch and returns one class index per row.
/// * [`cost_profile`](InferenceModel::cost_profile) prices one request on a
///   device as a service-time *distribution*. For input-independent models it
///   is [`CostProfile::Constant`]; for early-exit models it is a
///   [`CostProfile::Bimodal`] mixture whose weight is the **measured** exit
///   rate of the most recent `predict_batch` — so call `predict_batch` on the
///   evaluation set first (the generic `evaluate` does). This preserves the
///   exact latency semantics of the legacy per-model evaluators.
/// * [`sample_costs`](InferenceModel::sample_costs) prices a concrete batch
///   **per input**: one service time per row, charged for the execution
///   path that row actually took (which exit it left through, for
///   early-exit models). [`CostProfile::empirical`] turns the result into a
///   replayable measured distribution for the serving engine.
/// * [`exit_rate`](InferenceModel::exit_rate) reports that measured rate for
///   early-exit models, `None` otherwise.
pub trait InferenceModel {
    /// Display name ("LeNet", "BranchyNet", "CBNet", …).
    fn name(&self) -> &str;

    /// Classify a `(n, pixels)` batch; one predicted class per row.
    fn predict_batch(&mut self, x: &Tensor) -> Vec<usize>;

    /// Per-request service-time distribution on `device`, milliseconds.
    fn cost_profile(&self, device: &DeviceModel) -> CostProfile;

    /// Measured per-sample service times on `device` for a concrete batch:
    /// one entry per row of `x`, priced by the path that row actually
    /// executes.
    ///
    /// The default runs the prediction pass (so the profile reflects the
    /// measured operating point) and charges every row the profile mean —
    /// exact for input-*independent* models, whose profile is constant.
    /// Models with input-dependent cost (early exits) **must** override this
    /// with their real per-input decisions; that per-sample variance is what
    /// [`CostProfile::Empirical`] exists to carry.
    fn sample_costs(&mut self, x: &Tensor, device: &DeviceModel) -> Vec<f64> {
        let n = x.dims()[0];
        let _ = self.predict_batch(x);
        vec![self.cost_profile(device).mean_ms(); n]
    }

    /// Measured early-exit rate where the model has one, else `None`.
    fn exit_rate(&self) -> Option<f32> {
        None
    }

    /// Bytes shipped over a network link when one input of `x` is offloaded
    /// to a remote serving tier: the per-sample feature payload at `f32`
    /// precision. This is what sizes `edgesim::fleet::NetworkLink`s in
    /// tiered edge–cloud sweeps — the offloaded unit is the raw model input,
    /// not the (tiny) prediction coming back.
    fn offload_payload_bytes(&self, x: &Tensor) -> u64 {
        let per_sample: usize = x.dims().iter().skip(1).product();
        (per_sample * std::mem::size_of::<f32>()) as u64
    }
}

impl<M: InferenceModel + ?Sized> InferenceModel for &mut M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn predict_batch(&mut self, x: &Tensor) -> Vec<usize> {
        (**self).predict_batch(x)
    }
    fn cost_profile(&self, device: &DeviceModel) -> CostProfile {
        (**self).cost_profile(device)
    }
    fn sample_costs(&mut self, x: &Tensor, device: &DeviceModel) -> Vec<f64> {
        (**self).sample_costs(x, device)
    }
    fn exit_rate(&self) -> Option<f32> {
        (**self).exit_rate()
    }
    fn offload_payload_bytes(&self, x: &Tensor) -> u64 {
        (**self).offload_payload_bytes(x)
    }
}
