//! Scenarios, reports, and the one generic evaluation path.

use datasets::{Dataset, Family};
use edgesim::{Device, DeviceModel, EnergyReport};
use models::metrics::accuracy;

use crate::model::InferenceModel;

/// An evaluation scenario: one dataset family on one device, with a display
/// label for tables and CSV output.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset family being evaluated.
    pub family: Family,
    /// Device the model is priced on.
    pub device: Device,
    /// Human-readable label, e.g. `"MNIST @ Raspberry Pi 4"`.
    pub label: String,
}

impl Scenario {
    /// A scenario with the default `"<family> @ <device>"` label.
    pub fn new(family: Family, device: Device) -> Self {
        Scenario {
            family,
            device,
            label: format!("{} @ {}", family.name(), device.name()),
        }
    }

    /// Replace the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The calibrated latency/power model for this scenario's device.
    pub fn device_model(&self) -> DeviceModel {
        DeviceModel::preset(self.device)
    }

    /// Every family × device combination, in the paper's presentation order.
    pub fn matrix() -> Vec<Scenario> {
        Family::ALL
            .iter()
            .flat_map(|f| Device::ALL.iter().map(|d| Scenario::new(*f, *d)))
            .collect()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// One row of Table II: a model evaluated under one scenario.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model display name.
    pub model: String,
    /// Scenario label this report was produced under (empty when
    /// constructed ad hoc).
    pub scenario: String,
    /// Mean per-image latency, milliseconds.
    pub latency_ms: f64,
    /// Classification accuracy on the evaluation set, percent.
    pub accuracy_pct: f32,
    /// Per-image energy, joules.
    pub energy_j: f64,
    /// Early-exit rate where applicable (BranchyNet), else `None`.
    pub exit_rate: Option<f32>,
}

impl ModelReport {
    /// Energy saving relative to a baseline report, percent.
    pub fn energy_savings_vs(&self, baseline: &ModelReport) -> f64 {
        edgesim::savings_percent(baseline.energy_j, self.energy_j)
    }

    /// Speedup of this model relative to a (slower) baseline.
    pub fn speedup_vs(&self, baseline: &ModelReport) -> f64 {
        baseline.latency_ms / self.latency_ms
    }
}

/// Evaluate any [`InferenceModel`] on a dataset under a scenario.
///
/// The single code path behind every table and figure: classify the set,
/// price the model's [cost profile](InferenceModel::cost_profile) on the
/// scenario's device (the profile reflects the measured operating point
/// because the prediction pass runs first), and convert mean latency to
/// energy with the device's power model.
pub fn evaluate(
    model: &mut dyn InferenceModel,
    data: &Dataset,
    scenario: &Scenario,
) -> ModelReport {
    evaluate_on(model, data, &scenario.device_model(), &scenario.label)
}

/// [`evaluate`] against an explicit (possibly custom-calibrated)
/// [`DeviceModel`] rather than a preset-backed [`Scenario`].
pub fn evaluate_on(
    model: &mut dyn InferenceModel,
    data: &Dataset,
    device: &DeviceModel,
    scenario_label: &str,
) -> ModelReport {
    let preds = model.predict_batch(&data.images);
    let accuracy_pct = accuracy(&preds, &data.labels) * 100.0;
    let profile = model.cost_profile(device);
    let latency_ms = profile.mean_ms();
    let energy_j = EnergyReport::from_latency(device, latency_ms).energy_j;
    ModelReport {
        model: model.name().to_string(),
        scenario: scenario_label.to_string(),
        latency_ms,
        accuracy_pct,
        energy_j,
        exit_rate: model.exit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels_and_matrix() {
        let s = Scenario::new(Family::MnistLike, Device::RaspberryPi4);
        assert_eq!(s.label, "MNIST @ Raspberry Pi 4");
        assert_eq!(s.to_string(), s.label);
        let relabelled = s.clone().with_label("custom");
        assert_eq!(relabelled.label, "custom");
        let m = Scenario::matrix();
        assert_eq!(m.len(), 9);
        assert_eq!(m[0].family, Family::MnistLike);
        assert_eq!(m[8].device, Device::GciGpu);
    }

    #[test]
    fn speedup_and_savings_relations() {
        let a = ModelReport {
            model: "fast".into(),
            scenario: String::new(),
            latency_ms: 2.0,
            accuracy_pct: 90.0,
            energy_j: 0.01,
            exit_rate: None,
        };
        let b = ModelReport {
            model: "slow".into(),
            scenario: String::new(),
            latency_ms: 10.0,
            accuracy_pct: 90.0,
            energy_j: 0.05,
            exit_rate: None,
        };
        assert!((a.speedup_vs(&b) - 5.0).abs() < 1e-9);
        assert!((a.energy_savings_vs(&b) - 80.0).abs() < 1e-9);
    }
}
