//! Property-based tests for the training stack: gradient correctness by
//! finite differences over random layer configurations, optimizer
//! invariants, and checkpoint roundtrips.

use nn::loss::{Loss, MseLoss, SoftmaxCrossEntropy};
use nn::{Activation, ActivationKind, Adam, Dense, Layer, MaxPool2, Network, Optimizer, Sgd};
use proptest::prelude::*;
use tensor::random::rng_from_seed;
use tensor::Tensor;

/// Central-difference check of dL/d(input) for L = Σ w_i · y_i with random
/// weights w, through an arbitrary layer.
fn input_grad_check(layer: &mut dyn Layer, input: &Tensor, seed: u64) -> (f32, f32) {
    let mut rng = rng_from_seed(seed);
    let out = layer.forward(input, true);
    let w = Tensor::rand_uniform(out.dims(), -1.0, 1.0, &mut rng);
    layer.zero_grads();
    let _ = layer.forward(input, true);
    let dx = layer.backward(&w);
    // Probe a random input element.
    let elem = (seed as usize) % input.len();
    let eps = 1e-2;
    let mut xp = input.clone();
    xp.data_mut()[elem] += eps;
    let mut xm = input.clone();
    xm.data_mut()[elem] -= eps;
    let lp: f32 = layer
        .forward(&xp, true)
        .data()
        .iter()
        .zip(w.data())
        .map(|(y, wv)| y * wv)
        .sum();
    let lm: f32 = layer
        .forward(&xm, true)
        .data()
        .iter()
        .zip(w.data())
        .map(|(y, wv)| y * wv)
        .sum();
    (dx.data()[elem], (lp - lm) / (2.0 * eps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_input_gradients_are_correct(
        in_dim in 1usize..12, out_dim in 1usize..12, batch in 1usize..4, seed in 0u64..500
    ) {
        let mut rng = rng_from_seed(seed);
        let mut layer = Dense::new(in_dim, out_dim, &mut rng);
        let x = Tensor::rand_uniform(&[batch, in_dim], -1.0, 1.0, &mut rng);
        let (analytic, numeric) = input_grad_check(&mut layer, &x, seed);
        prop_assert!(
            (analytic - numeric).abs() < 0.02 * numeric.abs().max(1.0),
            "dense grad {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn activation_gradients_are_correct(
        kind_idx in 0usize..4, dim in 1usize..16, seed in 0u64..500
    ) {
        // Relu excluded at the kink; inputs kept away from 0 to avoid it.
        let kind = [ActivationKind::Relu, ActivationKind::Sigmoid,
                    ActivationKind::Tanh, ActivationKind::Softmax][kind_idx];
        let mut rng = rng_from_seed(seed);
        let mut layer = Activation::new(kind, dim);
        let mut x = Tensor::rand_uniform(&[2, dim], 0.1, 1.0, &mut rng);
        if seed % 2 == 0 {
            x.scale_in_place(-1.0);
            x = x.add_scalar(-0.05); // strictly negative branch for relu
        }
        let (analytic, numeric) = input_grad_check(&mut layer, &x, seed);
        prop_assert!(
            (analytic - numeric).abs() < 0.02 * numeric.abs().max(1.0),
            "{kind:?} grad {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn maxpool_gradient_is_subgradient(
        ch in 1usize..3, side in 2usize..5, seed in 0u64..500
    ) {
        let h = side * 2;
        let mut rng = rng_from_seed(seed);
        let mut layer = MaxPool2::new(ch, h, h, 2);
        let x = Tensor::rand_uniform(&[1, ch * h * h], -1.0, 1.0, &mut rng);
        // The subgradient is only defined away from argmax ties: when the
        // top two elements of the probed element's pooling window are within
        // the finite-difference step, ±eps flips the argmax and the central
        // difference lands between the two one-sided derivatives. Reject
        // those kink points rather than asserting at a non-differentiable
        // input (eps in input_grad_check is 1e-2; require a 3e-2 margin).
        let elem = (seed as usize) % (ch * h * h);
        let c = elem / (h * h);
        let (ey, ex) = ((elem % (h * h)) / h, (elem % (h * h)) % h);
        let (py, px) = (ey / 2, ex / 2);
        let mut window: Vec<f32> = (0..2)
            .flat_map(|dy| (0..2).map(move |dx| (py * 2 + dy, px * 2 + dx)))
            .map(|(yy, xx)| x.data()[c * h * h + yy * h + xx])
            .collect();
        window.sort_by(|a, b| b.partial_cmp(a).unwrap());
        prop_assume!(window[0] - window[1] > 3e-2);
        let (analytic, numeric) = input_grad_check(&mut layer, &x, seed);
        prop_assert!(
            (analytic - numeric).abs() < 0.05 * numeric.abs().max(1.0),
            "pool grad {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn mse_gradient_descends(seed in 0u64..500, dim in 1usize..8) {
        // One SGD step along the MSE gradient must not increase the loss.
        let mut rng = rng_from_seed(seed);
        let pred = Tensor::rand_uniform(&[1, dim], -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform(&[1, dim], -1.0, 1.0, &mut rng);
        let (l0, g) = MseLoss.loss(&pred, &target);
        let stepped = pred.sub(&g.scale(0.1));
        let (l1, _) = MseLoss.loss(&stepped, &target);
        prop_assert!(l1 <= l0 + 1e-6, "loss increased: {l0} -> {l1}");
    }

    #[test]
    fn cross_entropy_gradient_descends(seed in 0u64..500, classes in 2usize..8) {
        let mut rng = rng_from_seed(seed);
        let logits = Tensor::rand_uniform(&[1, classes], -2.0, 2.0, &mut rng);
        let label = (seed as usize) % classes;
        let (l0, g) = SoftmaxCrossEntropy.loss(&logits, &[label]);
        let stepped = logits.sub(&g.scale(0.5));
        let (l1, _) = SoftmaxCrossEntropy.loss(&stepped, &[label]);
        prop_assert!(l1 <= l0 + 1e-6, "CE loss increased: {l0} -> {l1}");
    }

    #[test]
    fn network_checkpoint_roundtrip(
        hidden in 1usize..32, seed in 0u64..500
    ) {
        let mut rng = rng_from_seed(seed);
        let mut net = Network::new()
            .push(Dense::new(6, hidden, &mut rng))
            .push(Activation::new(ActivationKind::Tanh, hidden))
            .push(Dense::new(hidden, 3, &mut rng));
        let x = Tensor::rand_uniform(&[2, 6], -1.0, 1.0, &mut rng);
        let y = net.predict(&x);
        let mut reloaded = Network::load(net.save()).unwrap();
        prop_assert!(reloaded.predict(&x).allclose(&y, 1e-6));
    }

    #[test]
    fn sgd_reduces_quadratic(lr in 0.01f32..0.4, start in -5.0f32..5.0) {
        // f(θ) = (θ − c)², any lr < 1 must strictly reduce |θ − c|.
        let c = 1.5f32;
        let mut theta = Tensor::from_slice(&[start]);
        let mut grad = Tensor::from_slice(&[2.0 * (start - c)]);
        let mut opt = Sgd::new(lr);
        let before = (start - c).abs();
        let mut pairs = vec![(&mut theta, &mut grad)];
        opt.step(&mut pairs);
        let after = (theta.data()[0] - c).abs();
        prop_assert!(after <= before + 1e-6);
    }

    #[test]
    fn adam_steps_are_bounded_by_lr(lr in 0.001f32..0.1, g0 in -100.0f32..100.0) {
        // Adam's bias-corrected first step has magnitude ≤ ~lr regardless of
        // gradient scale — the property that makes it robust to loss scale.
        prop_assume!(g0.abs() > 1e-3);
        let mut theta = Tensor::from_slice(&[0.0]);
        let mut grad = Tensor::from_slice(&[g0]);
        let mut opt = Adam::with_defaults(lr);
        let mut pairs = vec![(&mut theta, &mut grad)];
        opt.step(&mut pairs);
        prop_assert!(theta.data()[0].abs() <= lr * 1.01);
    }

    #[test]
    fn forward_is_deterministic(seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let mut net = Network::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(Activation::new(ActivationKind::Relu, 8))
            .push(Dense::new(8, 2, &mut rng));
        let x = Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng);
        let a = net.predict(&x);
        let b = net.predict(&x);
        prop_assert_eq!(a, b);
    }
}
