//! First-order optimizers.
//!
//! The paper trains every model with Adam \[18\]; SGD and momentum are provided
//! as ablation baselines. Optimizers operate on the flattened
//! `(param, grad)` list a [`crate::Network`] (or any composite of networks)
//! exposes, keyed positionally — per-parameter state vectors are created
//! lazily on first `step` and must thereafter see the same parameter list
//! order, which `Network` guarantees.

use tensor::Tensor;

/// An optimizer updating parameters in place from accumulated gradients.
///
/// Two equivalent driving modes:
///
/// * [`Optimizer::step`] over a collected `&mut [(param, grad)]` slice — the
///   original API, still used by tests and one-off callers;
/// * [`step_with`] over a *visitor* — the training-loop hot path, which
///   walks the network's parameters in place without collecting a `Vec`
///   every step.
///
/// Both are built from the same three primitives: [`Optimizer::begin_step`]
/// (once per step), [`Optimizer::apply`] (once per pair, positionally
/// keyed), [`Optimizer::end_step`] (once per step, with the pair count).
pub trait Optimizer {
    /// Start a new update step (advance step counters).
    fn begin_step(&mut self) {}

    /// Update one `(parameter, gradient)` pair. `index` is the pair's
    /// position in the network's stable parameter order; stateful optimizers
    /// key their per-parameter state by it.
    fn apply(&mut self, index: usize, param: &mut Tensor, grad: &mut Tensor);

    /// Finish a step after `count` pairs were applied. Stateful optimizers
    /// verify the parameter list kept its shape.
    fn end_step(&mut self, count: usize) {
        let _ = count;
    }

    /// Apply one update step. `params` is the positional list of
    /// `(parameter, gradient)` pairs; gradients are *not* zeroed here.
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        self.begin_step();
        for (i, (p, g)) in params.iter_mut().enumerate() {
            self.apply(i, p, g);
        }
        self.end_step(params.len());
    }

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Drive one optimizer step from a parameter visitor without collecting the
/// `(param, grad)` list into a `Vec` — the allocation-free training-loop
/// path:
///
/// ```ignore
/// step_with(&mut opt, |f| net.visit_params_and_grads(f));
/// ```
pub fn step_with<O: Optimizer + ?Sized>(
    opt: &mut O,
    visit: impl FnOnce(&mut dyn FnMut(&mut Tensor, &mut Tensor)),
) {
    opt.begin_step();
    let mut count = 0usize;
    visit(&mut |p, g| {
        opt.apply(count, p, g);
        count += 1;
    });
    opt.end_step(count);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn apply(&mut self, _index: usize, param: &mut Tensor, grad: &mut Tensor) {
        param.axpy(-self.lr, grad);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum: `v ← μv + g; θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: Vec<Tensor>,
    /// Pair count recorded after the first full step; later steps must match.
    expected: Option<usize>,
}

impl Momentum {
    /// New momentum optimizer with coefficient `mu` (typically 0.9).
    pub fn new(lr: f32, mu: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0,1)");
        Momentum {
            lr,
            mu,
            velocity: Vec::new(),
            expected: None,
        }
    }
}

impl Optimizer for Momentum {
    fn apply(&mut self, index: usize, param: &mut Tensor, grad: &mut Tensor) {
        if let Some(expected) = self.expected {
            assert!(
                index < expected,
                "parameter list changed shape between steps"
            );
        }
        if index == self.velocity.len() {
            self.velocity.push(Tensor::zeros(param.dims()));
        }
        let v = &mut self.velocity[index];
        v.scale_in_place(self.mu);
        v.add_assign(grad);
        param.axpy(-self.lr, v);
    }

    fn end_step(&mut self, count: usize) {
        match self.expected {
            None => self.expected = Some(count),
            Some(expected) => assert_eq!(
                expected, count,
                "parameter list changed shape between steps"
            ),
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba \[18\]) with bias correction — the paper's optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    /// Pair count recorded after the first full step; later steps must match.
    expected: Option<usize>,
}

impl Adam {
    /// Adam with explicit hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            expected: None,
        }
    }

    /// Adam with the standard defaults (β₁=0.9, β₂=0.999, ε=1e-8) — the
    /// Keras configuration the paper used.
    pub fn with_defaults(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn apply(&mut self, index: usize, param: &mut Tensor, grad: &mut Tensor) {
        if let Some(expected) = self.expected {
            assert!(
                index < expected,
                "parameter list changed shape between steps"
            );
        }
        if index == self.m.len() {
            self.m.push(Tensor::zeros(param.dims()));
            self.v.push(Tensor::zeros(param.dims()));
        }
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.lr;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let pd = param.data_mut();
        let gd = grad.data();
        let md = self.m[index].data_mut();
        let vd = self.v[index].data_mut();
        for i in 0..pd.len() {
            md[i] = b1 * md[i] + (1.0 - b1) * gd[i];
            vd[i] = b2 * vd[i] + (1.0 - b2) * gd[i] * gd[i];
            let mhat = md[i] / b1t;
            let vhat = vd[i] / b2t;
            pd[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn end_step(&mut self, count: usize) {
        match self.expected {
            None => self.expected = Some(count),
            Some(expected) => assert_eq!(
                expected, count,
                "parameter list changed shape between steps"
            ),
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(θ) = (θ − 3)² from θ=0; every optimizer must converge.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut theta = Tensor::from_slice(&[0.0]);
        let mut grad = Tensor::from_slice(&[0.0]);
        for _ in 0..steps {
            grad.data_mut()[0] = 2.0 * (theta.data()[0] - 3.0);
            let mut pairs = vec![(&mut theta, &mut grad)];
            opt.step(&mut pairs);
        }
        theta.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let theta = run_quadratic(&mut opt, 200);
        assert!((theta - 3.0).abs() < 1e-3, "theta {theta}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Momentum::new(0.05, 0.9);
        let theta = run_quadratic(&mut opt, 300);
        assert!((theta - 3.0).abs() < 1e-2, "theta {theta}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::with_defaults(0.1);
        let theta = run_quadratic(&mut opt, 500);
        assert!((theta - 3.0).abs() < 1e-2, "theta {theta}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ≈ lr · sign(g).
        let mut opt = Adam::with_defaults(0.01);
        let mut theta = Tensor::from_slice(&[0.0]);
        let mut grad = Tensor::from_slice(&[5.0]);
        let mut pairs = vec![(&mut theta, &mut grad)];
        opt.step(&mut pairs);
        assert!((theta.data()[0] + 0.01).abs() < 1e-4, "{}", theta.data()[0]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn sgd_step_is_exactly_lr_times_grad() {
        let mut opt = Sgd::new(0.5);
        let mut theta = Tensor::from_slice(&[1.0, 2.0]);
        let mut grad = Tensor::from_slice(&[2.0, -4.0]);
        let mut pairs = vec![(&mut theta, &mut grad)];
        opt.step(&mut pairs);
        assert_eq!(theta.data(), &[0.0, 4.0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn adam_detects_param_list_change() {
        let mut opt = Adam::with_defaults(0.1);
        let mut a = Tensor::from_slice(&[0.0]);
        let mut ga = Tensor::from_slice(&[1.0]);
        {
            let mut pairs = vec![(&mut a, &mut ga)];
            opt.step(&mut pairs);
        }
        let mut b = Tensor::from_slice(&[0.0]);
        let mut gb = Tensor::from_slice(&[1.0]);
        let mut pairs = vec![(&mut a, &mut ga), (&mut b, &mut gb)];
        opt.step(&mut pairs);
    }
}
