//! Tensor-store checkpoints for [`Network`]: the safetensors-style format
//! from the `tensorstore` crate, wired to the layer stack.
//!
//! A network exports one tensor per parameter, named
//! `{prefix}layer{i}.p{j}` (layer index, then the layer's stable parameter
//! order), plus a `{prefix}arch` metadata string — the `;`-joined
//! [`LayerSpec::encode_compact`] list — so a file is self-describing.
//!
//! Two load paths with different allocation contracts:
//!
//! * [`Network::from_tensor_file`] **builds** a fresh network from the arch
//!   metadata and parameter tensors (allocates, cold path).
//! * [`SerializeTensors::import_tensors`] **refills** an existing network's
//!   parameter storage in place. After the architecture check it performs
//!   zero allocations on the success path — this is the hot-reload route a
//!   registry slot uses, proven by `tests/alloc_guard.rs`.

use tensor::conv::Conv2dGeom;
use tensorstore::{SerializeTensors, StoreError, TensorFile, TensorWriter};

use crate::activation::Activation;
use crate::batchnorm::BatchNorm1d;
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::layer::Layer;
use crate::network::Network;
use crate::pool::MaxPool2;
use crate::residual::ResidualConv;
use crate::spec::LayerSpec;

/// Split leading decimal digits off `s`; `None` when it starts with none.
fn split_usize(s: &str) -> Option<(usize, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

/// Parse `{prefix}layer{i}.p{j}` without allocating; `None` when the name
/// does not belong to `prefix`'s network.
fn parse_param_name(name: &str, prefix: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix(prefix)?.strip_prefix("layer")?;
    let (i, rest) = split_usize(rest)?;
    let rest = rest.strip_prefix(".p")?;
    let (j, rest) = split_usize(rest)?;
    rest.is_empty().then_some((i, j))
}

/// The `{prefix}arch` metadata value of `file`, found without building the
/// key string.
fn arch_metadata<'a>(file: &'a TensorFile<'_>, prefix: &str) -> Option<&'a str> {
    file.metadata_entries()
        .find(|(k, _)| k.strip_prefix(prefix) == Some("arch"))
        .map(|(_, v)| v)
}

/// Build one layer from its spec and the file's `{prefix}layer{i}.p{j}`
/// tensors (allocating construction path).
///
/// Every constraint a layer constructor would `assert!` is checked here
/// first and surfaced as a [`StoreError`] naming the layer — a corrupt
/// checkpoint (fuzzed arch metadata, flipped shape digits) must be a
/// diagnosable error, never a panic.
fn build_layer(
    file: &TensorFile<'_>,
    prefix: &str,
    i: usize,
    spec: &LayerSpec,
) -> tensorstore::Result<Box<dyn Layer>> {
    let param = |j: usize| -> tensorstore::Result<tensor::Tensor> {
        Ok(file.require(&format!("{prefix}layer{i}.p{j}"))?.to_tensor())
    };
    let shaped = |j: usize, want: &[usize]| -> tensorstore::Result<tensor::Tensor> {
        let t = param(j)?;
        if t.dims() != want {
            return Err(StoreError::Import(format!(
                "layer {i} ({}): `{prefix}layer{i}.p{j}` has shape {:?}, spec expects {:?}",
                spec.describe(),
                t.dims(),
                want
            )));
        }
        Ok(t)
    };
    let bad_spec =
        |why: &str| StoreError::Import(format!("layer {i} ({}): {why}", spec.describe()));
    let no_params = || -> tensorstore::Result<()> {
        match file.get(&format!("{prefix}layer{i}.p0")) {
            Some(_) => Err(StoreError::Import(format!(
                "layer {i} ({}) expects no parameters but the file has some",
                spec.describe()
            ))),
            None => Ok(()),
        }
    };
    Ok(match spec {
        LayerSpec::Dense { in_dim, out_dim } => {
            let w = shaped(0, &[*out_dim, *in_dim])?;
            let b = shaped(1, &[*out_dim])?;
            Box::new(Dense::from_params(w, b))
        }
        LayerSpec::Conv2d { geom, out_channels } => {
            if geom.stride == 0 || geom.k_h == 0 || geom.k_w == 0 {
                return Err(bad_spec("conv kernel and stride must be positive"));
            }
            let w = shaped(0, &[*out_channels, geom.patch_cols()])?;
            let b = shaped(1, &[*out_channels])?;
            Box::new(Conv2d::from_params(*geom, *out_channels, w, b))
        }
        LayerSpec::MaxPool2 {
            channels,
            in_h,
            in_w,
            window,
        } => {
            no_params()?;
            if *window == 0 || window > in_h || window > in_w {
                return Err(bad_spec("pool window does not fit the input"));
            }
            Box::new(MaxPool2::new(*channels, *in_h, *in_w, *window))
        }
        LayerSpec::Activation { kind, dim } => {
            no_params()?;
            Box::new(Activation::new(*kind, *dim))
        }
        LayerSpec::Dropout { p, dim } => {
            no_params()?;
            if !(0.0..1.0).contains(p) {
                return Err(bad_spec("dropout p must be in [0, 1)"));
            }
            Box::new(Dropout::new(*p, *dim, 0))
        }
        LayerSpec::BatchNorm1d { dim } => {
            let gamma = shaped(0, &[*dim])?;
            let beta = shaped(1, &[*dim])?;
            let mut bn = BatchNorm1d::new(*dim);
            {
                let mut pg = bn.params_and_grads();
                *pg[0].0 = gamma;
                *pg[1].0 = beta;
            }
            Box::new(bn)
        }
        LayerSpec::ResidualConv { channels, side } => {
            if *channels == 0 || *side == 0 {
                return Err(bad_spec("residual block needs positive channels and side"));
            }
            let g = Conv2dGeom {
                in_channels: *channels,
                in_h: *side,
                in_w: *side,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            };
            let cols = g.patch_cols();
            let c1 = Conv2d::from_params(
                g,
                *channels,
                shaped(0, &[*channels, cols])?,
                shaped(1, &[*channels])?,
            );
            let c2 = Conv2d::from_params(
                g,
                *channels,
                shaped(2, &[*channels, cols])?,
                shaped(3, &[*channels])?,
            );
            Box::new(ResidualConv::from_convs(c1, c2))
        }
    })
}

impl Network {
    /// Reconstruct a network from a parsed tensor file's `{prefix}arch`
    /// metadata and `{prefix}layer{i}.p{j}` tensors — the allocating
    /// construction path ([`SerializeTensors::import_tensors`] is the
    /// in-place refill).
    pub fn from_tensor_file(file: &TensorFile<'_>, prefix: &str) -> tensorstore::Result<Network> {
        let arch = arch_metadata(file, prefix).ok_or_else(|| {
            StoreError::Import(format!("file has no `{prefix}arch` metadata entry"))
        })?;
        let mut net = Network::new();
        if arch.is_empty() {
            return Ok(net);
        }
        for (i, seg) in arch.split(';').enumerate() {
            let spec = LayerSpec::decode_compact(seg).ok_or_else(|| {
                StoreError::Import(format!(
                    "`{prefix}arch` segment {i} (`{seg}`) is not a valid layer spec"
                ))
            })?;
            net.push_boxed(build_layer(file, prefix, i, &spec)?);
        }
        Ok(net)
    }
}

impl SerializeTensors for Network {
    /// Write `{prefix}arch` metadata and every parameter tensor as
    /// `{prefix}layer{i}.p{j}`. Cold path (allocates freely).
    fn export_tensors(&self, out: &mut TensorWriter, prefix: &str) -> tensorstore::Result<()> {
        let mut arch = String::new();
        for (i, layer) in self.layers().iter().enumerate() {
            if i > 0 {
                arch.push(';');
            }
            arch.push_str(&layer.spec().encode_compact());
        }
        out.set_metadata(&format!("{prefix}arch"), &arch);
        for (i, layer) in self.layers().iter().enumerate() {
            for (j, p) in layer.params().iter().enumerate() {
                out.add_tensor(&format!("{prefix}layer{i}.p{j}"), p)?;
            }
        }
        Ok(())
    }

    /// Refill this network's parameters in place from `file`.
    ///
    /// The file's `{prefix}arch` must match this network's architecture
    /// exactly, and every `{prefix}layer{i}.p{j}` tensor must match the
    /// corresponding parameter's shape and position. On the success path
    /// this performs **zero allocations**: tensors are matched positionally
    /// against the file's entry order and decoded straight into the
    /// existing parameter buffers (zero-copy reinterpretation when the
    /// span is aligned, byte-decode fallback otherwise). Errors name the
    /// offending tensor or arch segment.
    fn import_tensors(&mut self, file: &TensorFile<'_>, prefix: &str) -> tensorstore::Result<()> {
        // Architecture gate, allocation-free: decode each `;` segment (a
        // plain-data LayerSpec) and compare against the live stack.
        let arch = arch_metadata(file, prefix).ok_or_else(|| {
            StoreError::Import(format!("file has no `{prefix}arch` metadata entry"))
        })?;
        let mut segs = arch.split(';').filter(|s| !s.is_empty());
        for (i, layer) in self.layers().iter().enumerate() {
            match segs.next().and_then(LayerSpec::decode_compact) {
                Some(spec) if spec == layer.spec() => {}
                _ => {
                    return Err(StoreError::Import(format!(
                        "arch mismatch at layer {i}: network has {}, file says otherwise",
                        layer.spec().describe()
                    )))
                }
            }
        }
        if segs.next().is_some() {
            return Err(StoreError::Import(format!(
                "file arch has more layers than the network's {}",
                self.depth()
            )));
        }

        // Positional refill: the writer emits parameters in (layer, param)
        // order, so the prefix-filtered entry stream lines up with the
        // stack walk; the name check catches foreign files that reordered.
        let mut views = file
            .views()
            .filter(|v| parse_param_name(v.name(), prefix).is_some());
        let mut failure: Option<StoreError> = None;
        for (i, layer) in self.layers_mut().iter_mut().enumerate() {
            let mut j = 0usize;
            layer.visit_params_and_grads(&mut |p, _| {
                if failure.is_some() {
                    return;
                }
                let Some(v) = views.next() else {
                    failure = Some(StoreError::Import(format!(
                        "file ends before `{prefix}layer{i}.p{j}`"
                    )));
                    return;
                };
                if parse_param_name(v.name(), prefix) != Some((i, j)) {
                    failure = Some(StoreError::Import(format!(
                        "expected `{prefix}layer{i}.p{j}` next, file has `{}`",
                        v.name()
                    )));
                    return;
                }
                if v.shape() != p.dims() {
                    failure = Some(StoreError::Import(format!(
                        "`{}` has shape {:?}, parameter expects {:?}",
                        v.name(),
                        v.shape(),
                        p.dims()
                    )));
                    return;
                }
                if let Some(src) = v.as_f32s() {
                    p.data_mut().copy_from_slice(src);
                } else if let Err(e) = v.copy_into(p.data_mut()) {
                    failure = Some(e);
                }
                j += 1;
            });
        }
        if let Some(e) = failure {
            return Err(e);
        }
        if let Some(extra) = views.next() {
            return Err(StoreError::Import(format!(
                "file tensor `{}` has no matching parameter",
                extra.name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ActivationKind;
    use tensor::random::rng_from_seed;
    use tensor::Tensor;
    use tensorstore::AlignedBytes;

    fn sample_net(seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::new()
            .push(Conv2d::new(
                Conv2dGeom {
                    in_channels: 1,
                    in_h: 6,
                    in_w: 6,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 0,
                },
                2,
                &mut rng,
            ))
            .push(Activation::new(ActivationKind::Relu, 32))
            .push(MaxPool2::new(2, 4, 4, 2))
            .push(Dropout::new(0.2, 8, 9))
            .push(Dense::new(8, 3, &mut rng))
    }

    #[test]
    fn compact_specs_roundtrip() {
        for spec in sample_net(0).specs() {
            let s = spec.encode_compact();
            assert_eq!(LayerSpec::decode_compact(&s), Some(spec), "{s}");
        }
        assert_eq!(LayerSpec::decode_compact("warp(1,2)"), None);
        assert_eq!(LayerSpec::decode_compact("dense(1)"), None);
        assert_eq!(LayerSpec::decode_compact("dense(1,2,3)"), None);
        assert_eq!(LayerSpec::decode_compact("dense(1,x)"), None);
    }

    #[test]
    fn store_roundtrip_is_bitwise() {
        let mut net = sample_net(3);
        let bytes = net.save_tensors().unwrap();
        let buf = AlignedBytes::from_slice(&bytes);
        let file = TensorFile::parse(buf.as_slice()).unwrap();
        let mut loaded = Network::from_tensor_file(&file, "").unwrap();
        assert_eq!(loaded.specs(), net.specs());
        let mut rng = rng_from_seed(9);
        let x = Tensor::rand_uniform(&[2, 36], 0.0, 1.0, &mut rng);
        assert_eq!(net.predict(&x).data(), loaded.predict(&x).data());
    }

    #[test]
    fn import_refills_in_place() {
        let mut a = sample_net(1);
        let bytes = a.save_tensors().unwrap();
        let buf = AlignedBytes::from_slice(&bytes);
        let file = TensorFile::parse(buf.as_slice()).unwrap();
        // Same architecture, different weights.
        let mut b = sample_net(2);
        b.import_tensors(&file, "").unwrap();
        let mut rng = rng_from_seed(4);
        let x = Tensor::rand_uniform(&[3, 36], 0.0, 1.0, &mut rng);
        assert_eq!(a.predict(&x).data(), b.predict(&x).data());
    }

    #[test]
    fn import_rejects_arch_mismatch_with_context() {
        let a = sample_net(1);
        let bytes = a.save_tensors().unwrap();
        let buf = AlignedBytes::from_slice(&bytes);
        let file = TensorFile::parse(buf.as_slice()).unwrap();
        let mut rng = rng_from_seed(5);
        let mut other = Network::new().push(Dense::new(2, 3, &mut rng));
        let err = other.import_tensors(&file, "").unwrap_err().to_string();
        assert!(err.contains("arch mismatch at layer 0"), "{err}");
        assert!(err.contains("Dense(2→3)"), "{err}");
    }

    #[test]
    fn prefixes_namespace_two_networks_in_one_file() {
        let mut a = sample_net(6);
        let mut rng = rng_from_seed(7);
        let mut b = Network::new().push(Dense::new(4, 2, &mut rng));
        let mut w = TensorWriter::new();
        a.export_tensors(&mut w, "big.").unwrap();
        b.export_tensors(&mut w, "small.").unwrap();
        let bytes = w.finish();
        let buf = AlignedBytes::from_slice(&bytes);
        let file = TensorFile::parse(buf.as_slice()).unwrap();
        let mut a2 = Network::from_tensor_file(&file, "big.").unwrap();
        let mut b2 = Network::from_tensor_file(&file, "small.").unwrap();
        assert_eq!(a2.specs(), a.specs());
        assert_eq!(b2.specs(), b.specs());
        let mut rng = rng_from_seed(8);
        let x = Tensor::rand_uniform(&[2, 36], 0.0, 1.0, &mut rng);
        assert_eq!(a.predict(&x).data(), a2.predict(&x).data());
        let y = Tensor::rand_uniform(&[2, 4], 0.0, 1.0, &mut rng);
        assert_eq!(b.predict(&y).data(), b2.predict(&y).data());
    }

    #[test]
    fn corrupt_arch_is_an_error_not_a_panic() {
        // Tampered arch metadata that disagrees with the stored tensor
        // shapes (a flipped digit, a pool window that outgrew its input)
        // must surface as errors naming the layer — the constructors'
        // assertions are pre-checked on the load path.
        let a = sample_net(1);
        let good: String = a
            .specs()
            .iter()
            .map(|s| s.encode_compact())
            .collect::<Vec<_>>()
            .join(";");
        for (tamper, needle) in [
            ("dense(8,4)", "spec expects"),    // shape digit flipped
            ("maxpool(2,4,4,5)", "window"),    // window exceeds input
            ("drop(40a00000,8)", "dropout p"), // p = 5.0, out of range
        ] {
            let bad = match tamper.split_once('(').map(|(n, _)| n) {
                Some("dense") => good.replace("dense(8,3)", tamper),
                Some("maxpool") => good.replace("maxpool(2,4,4,2)", tamper),
                _ => good.replace(&format!("drop({:08x},8)", 0.2f32.to_bits()), tamper),
            };
            assert_ne!(good, bad, "tamper {tamper} must change the arch");
            let mut w = TensorWriter::new();
            a.export_tensors(&mut w, "").unwrap();
            w.set_metadata("arch", &bad);
            let bytes = w.finish();
            let buf = AlignedBytes::from_slice(&bytes);
            let file = TensorFile::parse(buf.as_slice()).unwrap();
            let err = match Network::from_tensor_file(&file, "") {
                Err(e) => e.to_string(),
                Ok(_) => panic!("tampered arch `{tamper}` must not load"),
            };
            assert!(err.contains(needle), "{tamper}: {err}");
        }
    }

    #[test]
    fn missing_tensor_errors_name_the_field() {
        let a = sample_net(1);
        let mut w = TensorWriter::new();
        a.export_tensors(&mut w, "").unwrap();
        // Claim one more layer than was exported.
        let mut arch = String::new();
        for (i, s) in a.specs().iter().enumerate() {
            if i > 0 {
                arch.push(';');
            }
            arch.push_str(&s.encode_compact());
        }
        arch.push_str(";dense(3,4)");
        w.set_metadata("arch", &arch);
        let bytes = w.finish();
        let buf = AlignedBytes::from_slice(&bytes);
        let file = TensorFile::parse(buf.as_slice()).unwrap();
        let err = match Network::from_tensor_file(&file, "") {
            Err(e) => e.to_string(),
            Ok(_) => panic!("over-long arch must not load"),
        };
        assert!(err.contains("layer5.p0"), "{err}");
    }
}
