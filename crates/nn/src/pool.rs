//! Max-pooling layer.

use tensor::conv::maxpool2_batch_into;
use tensor::Tensor;

use crate::layer::Layer;
use crate::spec::LayerSpec;

/// Square, non-overlapping max pooling (window == stride), the variant LeNet
/// and BranchyNet-LeNet use between convolution stages.
///
/// Input rows are CHW volumes; output spatial dims are floor-divided by the
/// window. The layer caches the argmax position of every pooled window so the
/// backward pass can route gradients to exactly the winning inputs.
pub struct MaxPool2 {
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    /// Flat input index (within a sample) of each pooled maximum, per sample.
    cached_argmax: Option<Vec<u32>>,
    cached_batch: usize,
}

impl MaxPool2 {
    /// New pooling layer.
    ///
    /// # Panics
    /// Panics if the window is zero or exceeds either spatial dim.
    pub fn new(channels: usize, in_h: usize, in_w: usize, window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        assert!(
            window <= in_h && window <= in_w,
            "pool window {window} exceeds input {in_h}×{in_w}"
        );
        MaxPool2 {
            channels,
            in_h,
            in_w,
            window,
            cached_argmax: None,
            cached_batch: 0,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }

    fn in_features(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_features(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.dims()[1], self.in_features(), "pool input mismatch");
        let n = input.dims()[0];
        let mut out = Tensor::zeros(&[n, self.out_features()]);
        let mut argmax = vec![0u32; n * self.out_features()];
        maxpool2_batch_into(
            input.data(),
            out.data_mut(),
            Some(&mut argmax),
            self.channels,
            self.in_h,
            self.in_w,
            self.window,
            n,
        );
        self.cached_argmax = Some(argmax);
        self.cached_batch = n;
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        _scratch: &mut [f32],
        _backend: tensor::backend::Backend,
    ) {
        // Inference path: no backward will follow, so skip the argmax cache.
        // Pooling is compare/select-bound; no backend dispatch.
        maxpool2_batch_into(
            input,
            out,
            None,
            self.channels,
            self.in_h,
            self.in_w,
            self.window,
            batch,
        );
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before forward");
        let n = self.cached_batch;
        let in_f = self.in_features();
        let out_f = self.out_features();
        debug_assert_eq!(grad_out.dims(), &[n, out_f]);
        let mut grad_in = Tensor::zeros(&[n, in_f]);
        for s in 0..n {
            let g = &grad_out.data()[s * out_f..(s + 1) * out_f];
            let am = &argmax[s * out_f..(s + 1) * out_f];
            let gi_base = s * in_f;
            for (i, &src) in am.iter().enumerate() {
                grad_in.data_mut()[gi_base + src as usize] += g[i];
            }
        }
        grad_in
    }

    fn in_dim(&self) -> usize {
        self.in_features()
    }

    fn out_dim(&self) -> usize {
        self.out_features()
    }

    fn flops_per_sample(&self) -> u64 {
        // One comparison per input element inside covered windows.
        (self.channels * self.out_h() * self.out_w() * self.window * self.window) as u64
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool2 {
            channels: self.channels,
            in_h: self.in_h,
            in_w: self.in_w,
            window: self.window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_window_maxima() {
        let mut p = MaxPool2::new(1, 4, 4, 2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 2.0,   3.0, 4.0,
            5.0, 6.0,   7.0, 8.0,

            9.0, 10.0,  11.0, 12.0,
            13.0, 14.0, 15.0, 16.0,
        ], &[1, 16]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut p = MaxPool2::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 4]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[9.0]);
        let dx = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1]));
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn multichannel_pooling_is_independent() {
        let mut p = MaxPool2::new(2, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0], &[1, 8]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[4.0, 40.0]);
    }

    #[test]
    fn odd_input_dims_floor() {
        let p = MaxPool2::new(1, 5, 5, 2);
        assert_eq!(p.out_h(), 2);
        assert_eq!(p.out_w(), 2);
        assert_eq!(p.out_dim(), 4);
    }

    #[test]
    fn batch_independence() {
        let mut p = MaxPool2::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], &[2, 4]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[4.0, 8.0]);
        let dx = p.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2, 1]));
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ties_resolve_to_first_occurrence() {
        let mut p = MaxPool2::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![7.0, 7.0, 7.0, 7.0], &[1, 4]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::from_vec(vec![1.0], &[1, 1]));
        assert_eq!(dx.data(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn oversized_window_rejected() {
        let _ = MaxPool2::new(1, 2, 2, 3);
    }

    #[test]
    fn spec_and_flops() {
        let p = MaxPool2::new(5, 24, 24, 2);
        assert_eq!(p.in_dim(), 5 * 24 * 24);
        assert_eq!(p.out_dim(), 5 * 12 * 12);
        assert_eq!(p.flops_per_sample(), (5 * 12 * 12 * 4) as u64);
        assert_eq!(p.name(), "maxpool2");
    }
}
