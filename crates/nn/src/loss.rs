//! Loss functions.
//!
//! * [`MseLoss`] — mean squared error, the converting autoencoder's
//!   reconstruction loss (§III-A.2 of the paper).
//! * [`SoftmaxCrossEntropy`] — fused softmax + cross-entropy for the
//!   classifiers (LeNet, BranchyNet exits, the lightweight DNN).
//! * [`ActivityL1`] — L1 activity regularisation on the encoder output, the
//!   paper's "activity regularizer … L1 penalty with a coefficient of 10e-8"
//!   (§III-A.3).
//!
//! Every loss returns `(scalar_loss, grad_wrt_input)` so training loops stay
//! uniform. Loss values are means over the batch; gradients carry the same
//! normalisation.

use tensor::ops::softmax_slice;
use tensor::Tensor;

/// A loss over tensor-valued targets.
pub trait Loss {
    /// Compute the scalar loss and its gradient with respect to `pred`.
    fn loss(&self, pred: &Tensor, target: &Tensor) -> (f32, Tensor);
}

/// Mean squared error: `L = mean((pred − target)²)`.
///
/// The mean runs over *all* elements (batch × features), matching Keras's
/// `mse` which the paper's autoencoder used.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl Loss for MseLoss {
    fn loss(&self, pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(pred.dims(), target.dims(), "MSE shape mismatch");
        let n = pred.len() as f32;
        let diff = pred.sub(target);
        let loss = diff.map(|v| v * v).sum() / n;
        let grad = diff.scale(2.0 / n);
        (loss, grad)
    }
}

/// Fused softmax + cross-entropy over integer class labels.
///
/// Operating on logits keeps the backward pass the numerically exact
/// `softmax(x) − onehot(y)` instead of chaining a softmax layer with a log
/// loss. Loss is the mean negative log-likelihood over the batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Loss and gradient with respect to the logits.
    ///
    /// # Panics
    /// Panics if `labels.len()` differs from the batch size or a label is out
    /// of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (probs, loss) = self.forward_probs(logits, labels);
        let n = labels.len();
        let classes = logits.dims()[1];
        let mut grad = probs;
        let scale = 1.0 / n as f32;
        for (s, &label) in labels.iter().enumerate() {
            let row = &mut grad.data_mut()[s * classes..(s + 1) * classes];
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= scale;
            }
        }
        (loss, grad)
    }

    /// Softmax probabilities and the scalar loss (no gradient).
    pub fn forward_probs(&self, logits: &Tensor, labels: &[usize]) -> (Tensor, f32) {
        assert_eq!(logits.rank(), 2, "logits must be a batch");
        let n = logits.dims()[0];
        let classes = logits.dims()[1];
        assert_eq!(labels.len(), n, "label count must equal batch size");
        let mut probs = Tensor::zeros(logits.dims());
        let mut nll = 0.0f64;
        for (s, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range");
            let lrow = &logits.data()[s * classes..(s + 1) * classes];
            let prow = &mut probs.data_mut()[s * classes..(s + 1) * classes];
            softmax_slice(lrow, prow);
            nll -= (prow[label].max(1e-12) as f64).ln();
        }
        (probs, (nll / n as f64) as f32)
    }
}

/// L1 activity regulariser: `L = λ · Σ |a|` over a layer's activations.
///
/// The paper applies this to the encoder's output layer ("adds penalties to
/// the reconstruction loss function in proportion to the magnitude of the
/// activations in the output of the Encoder layer", §III-A.3) with
/// λ = 10e-8 = 1e-7.
#[derive(Debug, Clone, Copy)]
pub struct ActivityL1 {
    /// Penalty coefficient λ.
    pub lambda: f32,
}

impl ActivityL1 {
    /// The paper's coefficient ("10e-8", i.e. 1e-7).
    pub const PAPER_LAMBDA: f32 = 1e-7;

    /// New regulariser with coefficient λ.
    pub fn new(lambda: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        ActivityL1 { lambda }
    }

    /// Penalty value and its gradient with respect to the activations.
    pub fn penalty(&self, activations: &Tensor) -> (f32, Tensor) {
        let loss = self.lambda * activations.l1_norm();
        // Subgradient 0 at the kink (f32::signum(0.0) is +1, which we do not
        // want).
        let grad = activations.map(|v| {
            if v == 0.0 {
                0.0
            } else {
                self.lambda * v.signum()
            }
        });
        (loss, grad)
    }
}

impl Default for ActivityL1 {
    fn default() -> Self {
        ActivityL1::new(Self::PAPER_LAMBDA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let p = Tensor::from_slice(&[1.0, 2.0]).reshape(&[1, 2]).unwrap();
        let (l, g) = MseLoss.loss(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let (l, g) = MseLoss.loss(&p, &t);
        assert!((l - 2.5).abs() < 1e-6); // (1+4)/2
        assert_eq!(g.data(), &[1.0, 2.0]); // 2·diff/2
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.0], &[2, 2]);
        let t = Tensor::from_vec(vec![0.0, 1.0, -1.0, 0.5], &[2, 2]);
        let (_, g) = MseLoss.loss(&p, &t);
        let eps = 1e-3;
        for i in 0..4 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let (lp, _) = MseLoss.loss(&pp, &t);
            let (lm, _) = MseLoss.loss(&pm, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]);
        let (l, _) = SoftmaxCrossEntropy.loss(&logits, &[0]);
        assert!(l < 1e-5);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_classes() {
        let logits = Tensor::zeros(&[1, 10]);
        let (l, _) = SoftmaxCrossEntropy.loss(&logits, &[3]);
        assert!((l - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]);
        let (probs, _) = SoftmaxCrossEntropy.forward_probs(&logits, &[1]);
        let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &[1]);
        let expect = [probs.data()[0], probs.data()[1] - 1.0, probs.data()[2]];
        for (g, e) in grad.data().iter().zip(&expect) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.0, 0.0, 0.0], &[2, 3]);
        let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &[2, 0]);
        for row in grad.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.2, -0.4, 0.9, 1.5], &[2, 2]);
        let labels = [1usize, 0];
        let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &labels);
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (vp, _) = SoftmaxCrossEntropy.loss(&lp, &labels);
            let (vm, _) = SoftmaxCrossEntropy.loss(&lm, &labels);
            let numeric = (vp - vm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "grad[{i}] {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn cross_entropy_rejects_label_count_mismatch() {
        let logits = Tensor::zeros(&[2, 3]);
        let _ = SoftmaxCrossEntropy.loss(&logits, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = SoftmaxCrossEntropy.loss(&logits, &[3]);
    }

    #[test]
    fn activity_l1_penalty_and_grad() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.0], &[1, 3]);
        let reg = ActivityL1::new(0.1);
        let (l, g) = reg.penalty(&a);
        assert!((l - 0.3).abs() < 1e-6);
        assert_eq!(g.data(), &[0.1, -0.1, 0.0]);
    }

    #[test]
    fn activity_l1_paper_default() {
        let reg = ActivityL1::default();
        assert_eq!(reg.lambda, 1e-7);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn activity_l1_rejects_negative_lambda() {
        let _ = ActivityL1::new(-1.0);
    }
}
