//! The [`Layer`] trait: the contract every network building block satisfies.

use crate::spec::LayerSpec;
use tensor::Tensor;

/// A differentiable network layer.
///
/// Conventions:
///
/// * `forward` takes a rank-2 batch `(n, in_features)` and returns
///   `(n, out_features)`. Layers cache whatever their backward pass needs
///   (inputs, masks, pre-activations); callers must pair each `backward`
///   with the immediately preceding `forward`.
/// * `backward` consumes `dL/d(output)` with the same shape as the last
///   forward output, accumulates parameter gradients internally, and returns
///   `dL/d(input)`.
/// * Parameter gradients accumulate across calls until [`Layer::zero_grads`]
///   — this is what lets BranchyNet's joint loss sum gradients from two
///   exits through shared layers.
/// * `train` distinguishes training-time behaviour (dropout) from inference.
pub trait Layer: Send + Sync {
    /// Human-readable layer kind, e.g. `"dense"`.
    fn name(&self) -> &'static str;

    /// Forward pass over a batch.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass; returns gradient with respect to the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable (parameter, gradient) pairs for the optimizer. Empty for
    /// parameterless layers.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Immutable views of the parameters (serialisation, inspection).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Number of input features expected per sample.
    fn in_dim(&self) -> usize;

    /// Number of output features produced per sample.
    fn out_dim(&self) -> usize;

    /// Forward FLOPs per sample (multiply and add counted separately).
    ///
    /// The `edgesim` crate turns these into device latencies; keeping the
    /// count next to the kernel that generates it keeps the two honest.
    fn flops_per_sample(&self) -> u64;

    /// Structural description for serialisation and the device cost model.
    fn spec(&self) -> LayerSpec;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use tensor::random::rng_from_seed;

    #[test]
    fn param_count_default_sums_params() {
        let mut rng = rng_from_seed(0);
        let d = Dense::new(3, 2, &mut rng);
        // weights 2×3 + bias 2
        assert_eq!(d.param_count(), 8);
    }
}
