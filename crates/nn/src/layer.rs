//! The [`Layer`] trait: the contract every network building block satisfies.

use crate::spec::LayerSpec;
use tensor::backend::Backend;
use tensor::Tensor;

/// A differentiable network layer.
///
/// Conventions:
///
/// * `forward` takes a rank-2 batch `(n, in_features)` and returns
///   `(n, out_features)`. Layers cache whatever their backward pass needs
///   (inputs, masks, pre-activations); callers must pair each `backward`
///   with the immediately preceding `forward`.
/// * `backward` consumes `dL/d(output)` with the same shape as the last
///   forward output, accumulates parameter gradients internally, and returns
///   `dL/d(input)`.
/// * Parameter gradients accumulate across calls until [`Layer::zero_grads`]
///   — this is what lets BranchyNet's joint loss sum gradients from two
///   exits through shared layers.
/// * `train` distinguishes training-time behaviour (dropout) from inference.
pub trait Layer: Send + Sync {
    /// Human-readable layer kind, e.g. `"dense"`.
    fn name(&self) -> &'static str;

    /// Forward pass over a batch.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Inference-mode forward pass writing into a caller-owned buffer.
    ///
    /// `input` is `batch` rows of `in_dim` features stored flat; `out` must
    /// hold `batch · out_dim` floats and is fully overwritten. `scratch` must
    /// provide at least [`Layer::plan_scratch_floats`]`(batch)` floats of
    /// working space; its contents are unspecified on entry and exit.
    /// `backend` selects the kernel set (the plan resolves it once at
    /// construction and passes the same handle to every layer). With the
    /// scalar backend the output must be **bit-identical** to
    /// `forward(input, false)` — the planned executor's conformance tests pin
    /// this for every layer; other backends agree to the tolerance documented
    /// in `tensor::backend`.
    ///
    /// The default falls back to the allocating [`Layer::forward`] and
    /// copies; layers on the inference hot path override it with a
    /// zero-allocation kernel.
    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        backend: Backend,
    ) {
        let _ = (scratch, backend);
        // lint:allow(hot-path-alloc, reason = "documented fallback for layers without a zero-alloc kernel; hot-path layers override forward_into")
        let x = Tensor::from_vec(input.to_vec(), &[batch, self.in_dim()]);
        let y = self.forward(&x, false);
        out.copy_from_slice(y.data());
    }

    /// Scratch floats [`Layer::forward_into`] needs for a batch of `batch`
    /// samples. Must be monotonically non-decreasing in `batch` so a plan
    /// sized for its capacity covers every smaller batch.
    fn plan_scratch_floats(&self, batch: usize) -> usize {
        let _ = batch;
        0
    }

    /// Backward pass; returns gradient with respect to the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable (parameter, gradient) pairs for the optimizer. Empty for
    /// parameterless layers.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Visit every `(parameter, gradient)` pair in the same stable order as
    /// [`Layer::params_and_grads`], without collecting into a `Vec` — the
    /// allocation-free path the training loop drives each optimizer step
    /// through (see [`crate::optim::step_with`]).
    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for (p, g) in self.params_and_grads() {
            f(p, g);
        }
    }

    /// Immutable views of the parameters (serialisation, inspection).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Number of input features expected per sample.
    fn in_dim(&self) -> usize;

    /// Number of output features produced per sample.
    fn out_dim(&self) -> usize;

    /// Forward FLOPs per sample (multiply and add counted separately).
    ///
    /// The `edgesim` crate turns these into device latencies; keeping the
    /// count next to the kernel that generates it keeps the two honest.
    fn flops_per_sample(&self) -> u64;

    /// Structural description for serialisation and the device cost model.
    fn spec(&self) -> LayerSpec;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use tensor::random::rng_from_seed;

    #[test]
    fn param_count_default_sums_params() {
        let mut rng = rng_from_seed(0);
        let d = Dense::new(3, 2, &mut rng);
        // weights 2×3 + bias 2
        assert_eq!(d.param_count(), 8);
    }
}
