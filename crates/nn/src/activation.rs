//! Elementwise activation layers.

use tensor::ops::softmax_slice;
use tensor::Tensor;

use crate::layer::Layer;
use crate::spec::LayerSpec;

/// The nonlinearities used across the paper's models (Table I uses `relu`,
/// `linear`, and `softmax`; sigmoid is the conventional autoencoder output we
/// default to — see DESIGN.md §4 ablation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// max(0, x)
    Relu,
    /// 1/(1+e^(−x))
    Sigmoid,
    /// tanh(x)
    Tanh,
    /// Identity (the paper's "linear" rows in Table I).
    Linear,
    /// Row-wise softmax (the paper's Table I output rows).
    Softmax,
}

impl ActivationKind {
    /// Serialisation tag.
    pub fn tag(&self) -> u8 {
        match self {
            ActivationKind::Relu => 0,
            ActivationKind::Sigmoid => 1,
            ActivationKind::Tanh => 2,
            ActivationKind::Linear => 3,
            ActivationKind::Softmax => 4,
        }
    }

    /// Inverse of [`ActivationKind::tag`].
    pub fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => ActivationKind::Relu,
            1 => ActivationKind::Sigmoid,
            2 => ActivationKind::Tanh,
            3 => ActivationKind::Linear,
            4 => ActivationKind::Softmax,
            _ => return None,
        })
    }

    /// Parse the lowercase names used in configuration (matches the paper's
    /// Table I vocabulary).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "relu" => ActivationKind::Relu,
            "sigmoid" => ActivationKind::Sigmoid,
            "tanh" => ActivationKind::Tanh,
            "linear" => ActivationKind::Linear,
            "softmax" => ActivationKind::Softmax,
            _ => return None,
        })
    }
}

/// An activation layer applying one [`ActivationKind`] elementwise
/// (row-wise for softmax).
pub struct Activation {
    kind: ActivationKind,
    dim: usize,
    /// Cached forward *output* — every supported activation has a backward
    /// expressible in terms of its output, which saves caching the input.
    cached_output: Option<Tensor>,
}

impl Activation {
    /// New activation layer over `dim` features.
    pub fn new(kind: ActivationKind, dim: usize) -> Self {
        Activation {
            kind,
            dim,
            cached_output: None,
        }
    }

    /// The layer's activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Linear => "linear",
            ActivationKind::Softmax => "softmax",
        }
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.dims()[1], self.dim, "activation width mismatch");
        let out = match self.kind {
            ActivationKind::Relu => input.map(|v| v.max(0.0)),
            ActivationKind::Sigmoid => input.map(|v| 1.0 / (1.0 + (-v).exp())),
            ActivationKind::Tanh => input.map(f32::tanh),
            ActivationKind::Linear => input.clone(),
            ActivationKind::Softmax => {
                let cols = input.dims()[1];
                let mut out = Tensor::zeros(input.dims());
                for (orow, irow) in out
                    .data_mut()
                    .chunks_exact_mut(cols)
                    .zip(input.data().chunks_exact(cols))
                {
                    softmax_slice(irow, orow);
                }
                out
            }
        };
        self.cached_output = Some(out.clone());
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        _scratch: &mut [f32],
        backend: tensor::backend::Backend,
    ) {
        debug_assert_eq!(input.len(), batch * self.dim);
        debug_assert_eq!(out.len(), batch * self.dim);
        // Identical elementwise expressions to `forward` on the scalar
        // backend, so the planned path is bit-identical; large buffers split
        // across threads. The SIMD backend vectorises relu (−0.0 → +0.0
        // caveat documented in `tensor::backend::simd`) and keeps the
        // transcendental kernels scalar.
        match self.kind {
            ActivationKind::Relu => backend.relu_into(input, out),
            ActivationKind::Sigmoid => backend.sigmoid_into(input, out),
            ActivationKind::Tanh => backend.tanh_into(input, out),
            ActivationKind::Linear => out.copy_from_slice(input),
            ActivationKind::Softmax => backend.softmax_rows_into(input, out, self.dim),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before forward");
        debug_assert_eq!(grad_out.dims(), y.dims());
        match self.kind {
            ActivationKind::Relu => grad_out.zip(y, |g, yv| if yv > 0.0 { g } else { 0.0 }),
            ActivationKind::Sigmoid => grad_out.zip(y, |g, yv| g * yv * (1.0 - yv)),
            ActivationKind::Tanh => grad_out.zip(y, |g, yv| g * (1.0 - yv * yv)),
            ActivationKind::Linear => grad_out.clone(),
            ActivationKind::Softmax => {
                // Full Jacobian product per row:
                // dx_i = y_i (g_i − Σ_j g_j y_j)
                let cols = y.dims()[1];
                let mut dx = Tensor::zeros(y.dims());
                for ((dxrow, grow), yrow) in dx
                    .data_mut()
                    .chunks_exact_mut(cols)
                    .zip(grad_out.data().chunks_exact(cols))
                    .zip(y.data().chunks_exact(cols))
                {
                    let dot: f32 = grow.iter().zip(yrow).map(|(&g, &yv)| g * yv).sum();
                    for ((d, &g), &yv) in dxrow.iter_mut().zip(grow).zip(yrow) {
                        *d = yv * (g - dot);
                    }
                }
                dx
            }
        }
    }

    fn in_dim(&self) -> usize {
        self.dim
    }

    fn out_dim(&self) -> usize {
        self.dim
    }

    fn flops_per_sample(&self) -> u64 {
        // One transcendental ≈ a handful of FLOPs; the cost model charges a
        // uniform per-element constant. Softmax pays for exp + normalise.
        match self.kind {
            ActivationKind::Linear => 0,
            ActivationKind::Relu => self.dim as u64,
            ActivationKind::Sigmoid | ActivationKind::Tanh => 4 * self.dim as u64,
            ActivationKind::Softmax => 6 * self.dim as u64,
        }
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Activation {
            kind: self.kind,
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(v: &[f32], cols: usize) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len() / cols, cols])
    }

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::new(ActivationKind::Relu, 3);
        let x = batch(&[-1.0, 0.0, 2.0], 3);
        let y = a.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dx = a.backward(&batch(&[1.0, 1.0, 1.0], 3));
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_forward_midpoint_and_grad() {
        let mut a = Activation::new(ActivationKind::Sigmoid, 1);
        let y = a.forward(&batch(&[0.0], 1), true);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let dx = a.backward(&batch(&[1.0], 1));
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_forward_and_grad() {
        let mut a = Activation::new(ActivationKind::Tanh, 1);
        let y = a.forward(&batch(&[0.5], 1), true);
        assert!((y.data()[0] - 0.5f32.tanh()).abs() < 1e-6);
        let dx = a.backward(&batch(&[1.0], 1));
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert!((dx.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn linear_is_identity_both_ways() {
        let mut a = Activation::new(ActivationKind::Linear, 2);
        let x = batch(&[3.0, -4.0], 2);
        assert_eq!(a.forward(&x, true), x);
        let g = batch(&[1.5, 2.5], 2);
        assert_eq!(a.backward(&g), g);
        assert_eq!(a.flops_per_sample(), 0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut a = Activation::new(ActivationKind::Softmax, 3);
        let y = a.forward(&batch(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 3), true);
        for row in y.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut a = Activation::new(ActivationKind::Softmax, 3);
        let x = batch(&[0.2, -0.5, 0.9], 3);
        // Loss: weighted sum of outputs.
        let w = [0.3f32, -1.1, 0.7];
        let _ = a.forward(&x, true);
        let g = batch(&w, 3);
        let dx = a.backward(&g);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut ap = Activation::new(ActivationKind::Softmax, 3);
            let yp = ap.forward(&xp, true);
            let ym = ap.forward(&xm, true);
            let lp: f32 = yp.data().iter().zip(&w).map(|(&y, &wv)| y * wv).sum();
            let lm: f32 = ym.data().iter().zip(&w).map(|(&y, &wv)| y * wv).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.data()[i] - numeric).abs() < 1e-3,
                "softmax grad {} vs numeric {numeric}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in [
            ActivationKind::Relu,
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
            ActivationKind::Linear,
            ActivationKind::Softmax,
        ] {
            assert_eq!(ActivationKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ActivationKind::from_tag(99), None);
    }

    #[test]
    fn parse_matches_table1_vocabulary() {
        assert_eq!(ActivationKind::parse("relu"), Some(ActivationKind::Relu));
        assert_eq!(
            ActivationKind::parse("linear"),
            Some(ActivationKind::Linear)
        );
        assert_eq!(
            ActivationKind::parse("softmax"),
            Some(ActivationKind::Softmax)
        );
        assert_eq!(ActivationKind::parse("gelu"), None);
    }
}
