//! Weight initialisation schemes.
//!
//! The paper's stack (Keras defaults) uses Glorot-uniform for dense and conv
//! kernels and zeros for biases; we default to the same and also provide
//! He initialisation for ReLU-heavy stacks.

use rand::Rng;
use tensor::Tensor;

/// Glorot/Xavier uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Keeps forward and backward variance balanced for linear/sigmoid/tanh
/// units; it is Keras's default and therefore what the paper's models used.
pub fn glorot_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// Glorot/Xavier normal: `N(0, 2/(fan_in+fan_out))`.
pub fn glorot_normal(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_normal(dims, 0.0, std, rng)
}

/// He/Kaiming uniform: `U(−a, a)` with `a = sqrt(6 / fan_in)` — preferred for
/// ReLU stacks.
pub fn he_uniform(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// He/Kaiming normal: `N(0, 2/fan_in)`.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::rand_normal(dims, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    #[test]
    fn glorot_uniform_bounds() {
        let mut rng = rng_from_seed(0);
        let t = glorot_uniform(&[100, 50], 50, 100, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        // Should actually use most of the range.
        assert!(t.max() > 0.5 * a);
    }

    #[test]
    fn glorot_normal_variance() {
        let mut rng = rng_from_seed(1);
        let t = glorot_normal(&[300, 300], 300, 300, &mut rng);
        let var = t.map(|v| v * v).mean();
        let expect = 2.0 / 600.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn he_uniform_bounds() {
        let mut rng = rng_from_seed(2);
        let t = he_uniform(&[64, 32], 32, &mut rng);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = rng_from_seed(3);
        let t = he_normal(&[200, 200], 200, &mut rng);
        let var = t.map(|v| v * v).mean();
        let expect = 2.0 / 200.0;
        assert!((var - expect).abs() < expect * 0.2);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = glorot_uniform(&[10, 10], 10, 10, &mut rng_from_seed(42));
        let b = glorot_uniform(&[10, 10], 10, 10, &mut rng_from_seed(42));
        assert_eq!(a, b);
    }
}
