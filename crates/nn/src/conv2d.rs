//! 2-D convolution layer (im2col-lowered, batch-parallel).

use rand::Rng;
use tensor::conv::{col2im, conv2d_batch_into, conv2d_scratch_floats, im2col, Conv2dGeom};
use tensor::matmul::{matmul_at_into, matmul_into};
use tensor::Tensor;

use crate::init::glorot_uniform;
use crate::layer::Layer;
use crate::spec::LayerSpec;

/// A 2-D convolution over NCHW volumes flattened into batch rows.
///
/// Weights are stored as `(out_channels, in_channels·k_h·k_w)` — exactly the
/// left operand of the im2col matrix product. Each batch row is interpreted
/// as a contiguous CHW volume matching `geom`.
///
/// The forward pass parallelises across samples with scoped threads; each
/// worker owns a thread-local im2col buffer, so there is no shared mutable
/// state. The backward pass reduces per-thread weight-gradient partials.
pub struct Conv2d {
    geom: Conv2dGeom,
    out_channels: usize,
    weights: Tensor, // (out_ch, K) with K = in_ch·k_h·k_w
    bias: Tensor,    // (out_ch)
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// New convolution with Glorot-uniform kernels and zero bias.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (see [`Conv2dGeom::validate`]).
    pub fn new(geom: Conv2dGeom, out_channels: usize, rng: &mut impl Rng) -> Self {
        // lint:allow(panic-in-lib, reason = "documented # Panics contract; Conv2dGeom::validate is the non-panicking check")
        geom.validate().expect("invalid conv geometry");
        assert!(out_channels > 0, "out_channels must be positive");
        let k = geom.patch_cols();
        let fan_in = k;
        let fan_out = out_channels * geom.k_h * geom.k_w;
        Conv2d {
            weights: glorot_uniform(&[out_channels, k], fan_in, fan_out, rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_w: Tensor::zeros(&[out_channels, k]),
            grad_b: Tensor::zeros(&[out_channels]),
            cached_input: None,
            geom,
            out_channels,
        }
    }

    /// Construct from explicit parameters (deserialisation, tests).
    pub fn from_params(
        geom: Conv2dGeom,
        out_channels: usize,
        weights: Tensor,
        bias: Tensor,
    ) -> Self {
        assert_eq!(weights.dims(), &[out_channels, geom.patch_cols()]);
        assert_eq!(bias.dims(), &[out_channels]);
        Conv2d {
            grad_w: Tensor::zeros(weights.dims()),
            grad_b: Tensor::zeros(bias.dims()),
            cached_input: None,
            geom,
            out_channels,
            weights,
            bias,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Immutable weight view `(out_ch, in_ch·k_h·k_w)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weight access (pruning / masking baselines).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    fn in_features(&self) -> usize {
        self.geom.in_channels * self.geom.in_h * self.geom.in_w
    }

    fn out_features(&self) -> usize {
        self.out_channels * self.geom.patch_rows()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.rank(), 2);
        debug_assert_eq!(input.dims()[1], self.in_features(), "conv input mismatch");
        let n = input.dims()[0];
        let mut out = Tensor::zeros(&[n, self.out_features()]);
        let mut scratch = vec![0.0f32; conv2d_scratch_floats(&self.geom, n)];
        conv2d_batch_into(
            input.data(),
            self.weights.data(),
            self.bias.data(),
            &self.geom,
            self.out_channels,
            n,
            out.data_mut(),
            &mut scratch,
        );
        self.cached_input = Some(input.clone());
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        backend: tensor::backend::Backend,
    ) {
        backend.conv2d_batch_into(
            input,
            self.weights.data(),
            self.bias.data(),
            &self.geom,
            self.out_channels,
            batch,
            out,
            scratch,
        );
    }

    fn plan_scratch_floats(&self, batch: usize) -> usize {
        conv2d_scratch_floats(&self.geom, batch)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before forward");
        let n = input.dims()[0];
        let p = self.geom.patch_rows();
        let k = self.geom.patch_cols();
        let o = self.out_channels;
        let in_f = self.in_features();
        let out_f = self.out_features();
        debug_assert_eq!(grad_out.dims(), &[n, out_f]);

        let geom = self.geom;
        let weights = self.weights.data();
        let in_data = input.data();
        let go_data = grad_out.data();

        let mut grad_input = Tensor::zeros(&[n, in_f]);

        // Parallel across samples. Each worker accumulates private dW/db
        // partials which are reduced after the scope joins — the pattern from
        // the workspace guides: disjoint &mut chunks, no shared mutable state.
        let threads = tensor::parallel::max_threads().min(n.max(1)).max(1);
        let chunk_rows = n.div_ceil(threads);
        let mut partials: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();

        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            let gi_data = grad_input.data_mut();
            for (ci, gi_chunk) in gi_data.chunks_mut(chunk_rows * in_f).enumerate() {
                let s0 = ci * chunk_rows;
                handles.push(scope.spawn(move |_| {
                    let mut dw_local = vec![0.0f32; o * k];
                    let mut db_local = vec![0.0f32; o];
                    let mut patches = vec![0.0f32; p * k];
                    let mut dw_tmp = vec![0.0f32; o * k];
                    let mut dpatches = vec![0.0f32; p * k];
                    for (si, gi_row) in gi_chunk.chunks_exact_mut(in_f).enumerate() {
                        let s = s0 + si;
                        let g = &go_data[s * out_f..(s + 1) * out_f]; // (O×P)
                        im2col(&in_data[s * in_f..(s + 1) * in_f], &geom, &mut patches);
                        // dW += G(O×P)·patches(P×K)
                        matmul_into(g, &patches, &mut dw_tmp, o, p, k);
                        for (a, &b) in dw_local.iter_mut().zip(&dw_tmp) {
                            *a += b;
                        }
                        // db += per-channel sums of G
                        for (ch, seg) in g.chunks_exact(p).enumerate() {
                            db_local[ch] += seg.iter().sum::<f32>();
                        }
                        // dPatches = Gᵀ(P×O)·W(O×K)
                        matmul_at_into(g, weights, &mut dpatches, p, o, k);
                        // dX = col2im(dPatches)
                        gi_row.fill(0.0);
                        col2im(&dpatches, &geom, gi_row);
                    }
                    (dw_local, db_local)
                }));
            }
            for h in handles {
                // lint:allow(panic-in-lib, reason = "join/scope errors only propagate a worker panic; swallowing them would corrupt gradients silently")
                partials.push(h.join().expect("conv backward worker panicked"));
            }
        })
        // lint:allow(panic-in-lib, reason = "join/scope errors only propagate a worker panic; swallowing them would corrupt gradients silently")
        .expect("conv backward scope failed");

        for (dw_local, db_local) in partials {
            for (a, &b) in self.grad_w.data_mut().iter_mut().zip(&dw_local) {
                *a += b;
            }
            for (a, &b) in self.grad_b.data_mut().iter_mut().zip(&db_local) {
                *a += b;
            }
        }
        grad_input
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weights, &mut self.grad_w),
            (&mut self.bias, &mut self.grad_b),
        ]
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn in_dim(&self) -> usize {
        self.in_features()
    }

    fn out_dim(&self) -> usize {
        self.out_features()
    }

    fn flops_per_sample(&self) -> u64 {
        // im2col matmul: O·P·K multiply-adds, plus bias adds.
        let p = self.geom.patch_rows() as u64;
        let k = self.geom.patch_cols() as u64;
        let o = self.out_channels as u64;
        2 * o * p * k + o * p
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            geom: self.geom,
            out_channels: self.out_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    fn small_geom() -> Conv2dGeom {
        Conv2dGeom {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn forward_known_values_identity_kernel() {
        // A 1×1 kernel with weight 1 reproduces the input per channel.
        let geom = Conv2dGeom {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let w = Tensor::ones(&[1, 1]);
        let b = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_params(geom, 1, w, b);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 9]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn forward_sum_kernel() {
        // 3×3 all-ones kernel on a 4×4 all-ones image: every output is 9.
        let geom = small_geom();
        let w = Tensor::ones(&[1, 9]);
        let b = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_params(geom, 1, w, b);
        let x = Tensor::ones(&[1, 16]);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[1, 4]); // 2×2 output
        assert!(y.data().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn bias_is_added_per_channel() {
        let geom = small_geom();
        let w = Tensor::zeros(&[2, 9]);
        let b = Tensor::from_slice(&[1.5, -2.5]);
        let mut conv = Conv2d::from_params(geom, 2, w, b);
        let x = Tensor::ones(&[1, 16]);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[1, 8]);
        assert!(y.data()[..4].iter().all(|&v| v == 1.5));
        assert!(y.data()[4..].iter().all(|&v| v == -2.5));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let geom = Conv2dGeom {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = rng_from_seed(77);
        let mut conv = Conv2d::new(geom, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 50], -1.0, 1.0, &mut rng);

        // L = sum(conv(x)); analytic gradients:
        conv.zero_grads();
        let y = conv.forward(&x, true);
        let g = Tensor::ones(y.dims());
        let dx = conv.backward(&g);

        let eps = 1e-2;
        // Check a scattering of weight elements.
        for elem in [0usize, 7, 20, 53] {
            let base_plus = {
                conv.weights.data_mut()[elem] += eps;
                let s = conv.forward(&x, true).sum();
                conv.weights.data_mut()[elem] -= eps;
                s
            };
            let base_minus = {
                conv.weights.data_mut()[elem] -= eps;
                let s = conv.forward(&x, true).sum();
                conv.weights.data_mut()[elem] += eps;
                s
            };
            let numeric = (base_plus - base_minus) / (2.0 * eps);
            let analytic = conv.grad_w.data()[elem];
            assert!(
                (analytic - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "dW[{elem}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // And a couple of input elements.
        for elem in [0usize, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[elem] += eps;
            let mut xm = x.clone();
            xm.data_mut()[elem] -= eps;
            let sp = conv.forward(&xp, true).sum();
            let sm = conv.forward(&xm, true).sum();
            let numeric = (sp - sm) / (2.0 * eps);
            let analytic = dx.data()[elem];
            assert!(
                (analytic - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "dX[{elem}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        // dL/db_ch with L = sum(y) equals the number of output positions.
        let geom = small_geom();
        let mut rng = rng_from_seed(5);
        let mut conv = Conv2d::new(geom, 2, &mut rng);
        let x = Tensor::rand_uniform(&[3, 16], -1.0, 1.0, &mut rng);
        conv.zero_grads();
        let y = conv.forward(&x, true);
        let _ = conv.backward(&Tensor::ones(y.dims()));
        // 3 samples × 4 positions each = 12 per channel.
        assert!(conv.grad_b.data().iter().all(|&v| (v - 12.0).abs() < 1e-4));
    }

    #[test]
    fn multi_sample_forward_is_per_sample() {
        // Batch forward must equal stacking two single-sample forwards.
        let geom = small_geom();
        let mut rng = rng_from_seed(9);
        let mut conv = Conv2d::new(geom, 2, &mut rng);
        let x = Tensor::rand_uniform(&[2, 16], -1.0, 1.0, &mut rng);
        let both = conv.forward(&x, false);
        let first = conv.forward(&Tensor::from_vec(x.row_slice(0).to_vec(), &[1, 16]), false);
        let second = conv.forward(&Tensor::from_vec(x.row_slice(1).to_vec(), &[1, 16]), false);
        assert!(Tensor::from_vec(both.row_slice(0).to_vec(), &[1, 8]).allclose(&first, 1e-5));
        assert!(Tensor::from_vec(both.row_slice(1).to_vec(), &[1, 8]).allclose(&second, 1e-5));
    }

    #[test]
    fn flops_and_spec() {
        let geom = small_geom();
        let mut rng = rng_from_seed(1);
        let conv = Conv2d::new(geom, 4, &mut rng);
        // P = 4 positions, K = 9, O = 4 → 2·4·4·9 + 4·4
        assert_eq!(conv.flops_per_sample(), 2 * 4 * 4 * 9 + 16);
        assert_eq!(conv.in_dim(), 16);
        assert_eq!(conv.out_dim(), 16);
        match conv.spec() {
            LayerSpec::Conv2d { out_channels, .. } => assert_eq!(out_channels, 4),
            other => panic!("wrong spec {other:?}"),
        }
    }
}
