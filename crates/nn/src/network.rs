//! Sequential network container with checkpoint serialisation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tensor::conv::Conv2dGeom;
use tensor::{Tensor, TensorError};

use crate::activation::{Activation, ActivationKind};
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::layer::Layer;
use crate::pool::MaxPool2;
use crate::spec::LayerSpec;

/// A sequential stack of layers.
///
/// `Network` is the unit of composition for every model in this workspace:
/// plain models are one `Network`; BranchyNet is a *trunk* network plus a
/// *branch* network plus a *tail* network glued together by the `models`
/// crate, which routes gradients between them through the public
/// `forward`/`backward` API.
#[derive(Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    /// Lazily built planned-forward state for [`Network::predict_planned`].
    /// Pure execution memory (no weights); invalidated whenever the layer
    /// stack changes shape and never serialised.
    plan: Option<crate::plan::ForwardPlan>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network {
            layers: Vec::new(),
            plan: None,
        }
    }

    /// Append a layer (builder style).
    ///
    /// # Panics
    /// Panics if the layer's input width does not match the previous layer's
    /// output width.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.push_boxed(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        if let Some(prev) = self.layers.last() {
            assert_eq!(
                prev.out_dim(),
                layer.in_dim(),
                "layer width mismatch: {} outputs {}, {} expects {}",
                prev.name(),
                prev.out_dim(),
                layer.name(),
                layer.in_dim()
            );
        }
        self.layers.push(layer);
        self.plan = None; // the shape changed; any cached plan is stale
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Expected input width (0 for an empty network).
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_dim())
    }

    /// Output width (0 for an empty network).
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return input.clone();
        };
        let mut x = first.forward(input, train);
        for layer in layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass through all layers (reverse order); returns the
    /// gradient with respect to the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return grad_out.clone();
        };
        let mut g = last.backward(grad_out);
        for layer in layers {
            g = layer.backward(&g);
        }
        g
    }

    /// Inference-mode forward.
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        self.forward(input, false)
    }

    /// Inference-mode forward through the network's cached
    /// [`ForwardPlan`](crate::ForwardPlan): no per-layer allocations, only
    /// the output tensor is freshly allocated. The plan is built on first
    /// use and regrown when a larger batch arrives; repeated calls at the
    /// same (or smaller) batch size reuse every buffer.
    ///
    /// Bit-identical to [`Network::predict`] on the scalar backend — pinned
    /// by the workspace conformance tests; other backends agree to the
    /// tolerance documented in `tensor::backend`. The cached plan runs on
    /// the process-resolved [`tensor::backend::Backend`] and is rebuilt if
    /// that selection changes between calls — likewise when the installed
    /// `obs` profiling probe changes (`obs::probe::generation`), so a
    /// freshly installed probe reaches cached plans on their next call.
    /// For a fully allocation-free
    /// loop, hold a [`ForwardPlan`](crate::ForwardPlan) yourself and call
    /// [`ForwardPlan::run`](crate::ForwardPlan::run) on
    /// [`Network::layers_mut`].
    pub fn predict_planned(&mut self, input: &Tensor) -> Tensor {
        if self.layers.is_empty() {
            return input.clone();
        }
        let n = input.dims()[0];
        if n == 0 {
            // A plan cannot be sized for zero rows; the allocating path
            // handles the empty batch (and costs nothing at n = 0).
            return self.forward(input, false);
        }
        let stale = match &self.plan {
            Some(p) => {
                p.capacity() < n
                    || !p.matches(&self.layers)
                    || p.backend() != tensor::backend::Backend::resolve()
                    || p.probe_generation() != obs::probe::generation()
            }
            None => true,
        };
        if stale {
            self.plan = Some(crate::plan::ForwardPlan::new(self, n));
        }
        // Take the plan out so it and the layer stack can be borrowed apart.
        // lint:allow(panic-in-lib, reason = "the staleness check above just stored a plan; None here is a plan-cache bug")
        let mut plan = self.plan.take().expect("just ensured");
        let out_w = self.out_dim();
        let out = {
            let y = plan.run(&mut self.layers, input);
            Tensor::from_vec(y.to_vec(), &[n, out_w])
        };
        self.plan = Some(plan);
        out
    }

    /// Flattened `(param, grad)` list across layers, in a stable order.
    ///
    /// Allocates the list; optimizer steps on a hot loop should prefer
    /// [`Network::visit_params_and_grads`] via
    /// [`step_with`](crate::optim::step_with).
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Visit every `(param, grad)` pair in [`Network::params_and_grads`]
    /// order without collecting a `Vec` — the allocation-free optimizer path.
    pub fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_and_grads(f);
        }
    }

    /// Zero all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Total trainable scalar count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total forward FLOPs per sample.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_per_sample()).sum()
    }

    /// Structural description of every layer.
    pub fn specs(&self) -> Vec<LayerSpec> {
        self.layers.iter().map(|l| l.spec()).collect()
    }

    /// Borrow the layer stack (inspection; used by pruning baselines).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Borrow the layer stack immutably.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Consume the network, yielding its layers (used to stitch stages
    /// together, e.g. trunk + branch → lightweight DNN).
    pub fn into_layers(self) -> Vec<Box<dyn Layer>> {
        self.layers
    }

    /// Concatenate two networks (width-checked).
    pub fn concat(front: Network, back: Network) -> Network {
        let mut net = front;
        for layer in back.into_layers() {
            net.push_boxed(layer);
        }
        net
    }

    /// A deep copy of this network via the serialisation roundtrip.
    ///
    /// `Layer` objects are not `Clone` (trait objects); the checkpoint
    /// format is the canonical way to duplicate a trained stack.
    pub fn duplicate(&self) -> Network {
        // lint:allow(panic-in-lib, reason = "loading bytes this same build just saved cannot fail; an error here is a serialisation bug")
        Network::load(self.save()).expect("self-roundtrip cannot fail")
    }

    // ------------------------------------------------------- serialisation

    /// Serialize architecture + parameters into a byte buffer.
    ///
    /// Format: magic `NNW1`, layer count, then per layer a spec record
    /// followed by its length-prefixed parameter tensors.
    pub fn save(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(b"NNW1");
        buf.put_u32_le(self.layers.len() as u32);
        for layer in &self.layers {
            let spec = layer.spec();
            buf.put_u8(spec.tag());
            match spec {
                LayerSpec::Dense { in_dim, out_dim } => {
                    buf.put_u32_le(in_dim as u32);
                    buf.put_u32_le(out_dim as u32);
                }
                LayerSpec::Conv2d { geom, out_channels } => {
                    for v in [
                        geom.in_channels,
                        geom.in_h,
                        geom.in_w,
                        geom.k_h,
                        geom.k_w,
                        geom.stride,
                        geom.pad,
                        out_channels,
                    ] {
                        buf.put_u32_le(v as u32);
                    }
                }
                LayerSpec::MaxPool2 {
                    channels,
                    in_h,
                    in_w,
                    window,
                } => {
                    for v in [channels, in_h, in_w, window] {
                        buf.put_u32_le(v as u32);
                    }
                }
                LayerSpec::Activation { kind, dim } => {
                    buf.put_u8(kind.tag());
                    buf.put_u32_le(dim as u32);
                }
                LayerSpec::Dropout { p, dim } => {
                    buf.put_f32_le(p);
                    buf.put_u32_le(dim as u32);
                }
                LayerSpec::BatchNorm1d { dim } => {
                    buf.put_u32_le(dim as u32);
                }
                LayerSpec::ResidualConv { channels, side } => {
                    buf.put_u32_le(channels as u32);
                    buf.put_u32_le(side as u32);
                }
            }
            let params = layer.params();
            buf.put_u32_le(params.len() as u32);
            for p in params {
                tensor::serialize::put_tensor(&mut buf, p);
            }
        }
        buf.freeze()
    }

    /// Reconstruct a network saved by [`Network::save`].
    pub fn load(mut buf: impl Buf) -> Result<Network, TensorError> {
        let err = |m: &str| TensorError::Deserialize(m.to_string());
        if buf.remaining() < 8 {
            return Err(err("checkpoint too short"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"NNW1" {
            return Err(err("bad checkpoint magic"));
        }
        let n_layers = buf.get_u32_le() as usize;
        if n_layers > 10_000 {
            return Err(err("implausible layer count"));
        }
        let mut net = Network::new();
        for _ in 0..n_layers {
            if buf.remaining() < 1 {
                return Err(err("truncated layer record"));
            }
            let tag = buf.get_u8();
            let get_u32 = |buf: &mut dyn Buf| -> Result<usize, TensorError> {
                if buf.remaining() < 4 {
                    return Err(TensorError::Deserialize("truncated field".into()));
                }
                Ok(buf.get_u32_le() as usize)
            };
            let layer: Box<dyn Layer> = match tag {
                1 => {
                    let _in_dim = get_u32(&mut buf)?;
                    let _out_dim = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 2 {
                        return Err(err("dense expects 2 params"));
                    }
                    let w = tensor::serialize::get_tensor(&mut buf)?;
                    let b = tensor::serialize::get_tensor(&mut buf)?;
                    Box::new(Dense::from_params(w, b))
                }
                2 => {
                    let geom = Conv2dGeom {
                        in_channels: get_u32(&mut buf)?,
                        in_h: get_u32(&mut buf)?,
                        in_w: get_u32(&mut buf)?,
                        k_h: get_u32(&mut buf)?,
                        k_w: get_u32(&mut buf)?,
                        stride: get_u32(&mut buf)?,
                        pad: get_u32(&mut buf)?,
                    };
                    let out_channels = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 2 {
                        return Err(err("conv expects 2 params"));
                    }
                    let w = tensor::serialize::get_tensor(&mut buf)?;
                    let b = tensor::serialize::get_tensor(&mut buf)?;
                    Box::new(Conv2d::from_params(geom, out_channels, w, b))
                }
                3 => {
                    let channels = get_u32(&mut buf)?;
                    let in_h = get_u32(&mut buf)?;
                    let in_w = get_u32(&mut buf)?;
                    let window = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 0 {
                        return Err(err("pool expects 0 params"));
                    }
                    Box::new(MaxPool2::new(channels, in_h, in_w, window))
                }
                4 => {
                    if buf.remaining() < 1 {
                        return Err(err("truncated activation"));
                    }
                    let kind = ActivationKind::from_tag(buf.get_u8())
                        .ok_or_else(|| err("unknown activation"))?;
                    let dim = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 0 {
                        return Err(err("activation expects 0 params"));
                    }
                    Box::new(Activation::new(kind, dim))
                }
                5 => {
                    if buf.remaining() < 4 {
                        return Err(err("truncated dropout"));
                    }
                    let p = buf.get_f32_le();
                    let dim = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 0 {
                        return Err(err("dropout expects 0 params"));
                    }
                    Box::new(Dropout::new(p, dim, 0))
                }
                6 => {
                    let dim = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 2 {
                        return Err(err("batchnorm expects 2 params"));
                    }
                    let gamma = tensor::serialize::get_tensor(&mut buf)?;
                    let beta = tensor::serialize::get_tensor(&mut buf)?;
                    let mut bn = crate::batchnorm::BatchNorm1d::new(dim);
                    {
                        let mut pg = bn.params_and_grads();
                        *pg[0].0 = gamma;
                        *pg[1].0 = beta;
                    }
                    // NOTE: running statistics are not checkpointed in the
                    // layer-spec format; deployments that need exact
                    // inference-mode parity should fine-tune or re-estimate
                    // them (one pass over training data).
                    Box::new(bn)
                }
                7 => {
                    let channels = get_u32(&mut buf)?;
                    let side = get_u32(&mut buf)?;
                    let n_params = get_u32(&mut buf)?;
                    if n_params != 4 {
                        return Err(err("residual block expects 4 params"));
                    }
                    let g = Conv2dGeom {
                        in_channels: channels,
                        in_h: side,
                        in_w: side,
                        k_h: 3,
                        k_w: 3,
                        stride: 1,
                        pad: 1,
                    };
                    let w1 = tensor::serialize::get_tensor(&mut buf)?;
                    let b1 = tensor::serialize::get_tensor(&mut buf)?;
                    let w2 = tensor::serialize::get_tensor(&mut buf)?;
                    let b2 = tensor::serialize::get_tensor(&mut buf)?;
                    let c1 = Conv2d::from_params(g, channels, w1, b1);
                    let c2 = Conv2d::from_params(g, channels, w2, b2);
                    Box::new(crate::residual::ResidualConv::from_convs(c1, c2))
                }
                _ => return Err(err("unknown layer tag")),
            };
            net.push_boxed(layer);
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MseLoss};
    use crate::optim::{Adam, Optimizer};
    use tensor::random::rng_from_seed;

    fn tiny_mlp(seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Activation::new(ActivationKind::Tanh, 8))
            .push(Dense::new(8, 1, &mut rng))
    }

    #[test]
    fn forward_shape_chains() {
        let mut net = tiny_mlp(0);
        let x = Tensor::zeros(&[4, 2]);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[4, 1]);
        assert_eq!(net.in_dim(), 2);
        assert_eq!(net.out_dim(), 1);
        assert_eq!(net.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_rejects_width_mismatch() {
        let mut rng = rng_from_seed(0);
        let _ = Network::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Dense::new(4, 1, &mut rng));
    }

    #[test]
    fn trains_xor_to_low_loss() {
        // The classic non-linearly-separable sanity problem: if the full
        // stack (dense → tanh → dense, MSE, Adam) can drive XOR loss to ~0,
        // forward, backward and the optimizer are wired correctly.
        let mut net = tiny_mlp(42);
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]);
        let mut opt = Adam::with_defaults(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            net.zero_grads();
            let y = net.forward(&x, true);
            let (l, g) = MseLoss.loss(&y, &t);
            net.backward(&g);
            let mut pg = net.params_and_grads();
            opt.step(&mut pg);
            final_loss = l;
        }
        assert!(final_loss < 0.01, "XOR loss stayed at {final_loss}");
        let y = net.predict(&x);
        assert!(y.data()[0] < 0.3 && y.data()[3] < 0.3);
        assert!(y.data()[1] > 0.7 && y.data()[2] > 0.7);
    }

    #[test]
    fn param_count_and_flops_sum_layers() {
        let net = tiny_mlp(1);
        assert_eq!(net.param_count(), (2 * 8 + 8) + (8 + 1));
        assert_eq!(
            net.flops_per_sample(),
            (2 * 2 * 8 + 8) as u64 + 4 * 8 + (2 * 8 + 1) as u64
        );
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let mut rng = rng_from_seed(3);
        let mut net = Network::new()
            .push(Conv2d::new(
                Conv2dGeom {
                    in_channels: 1,
                    in_h: 6,
                    in_w: 6,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 0,
                },
                2,
                &mut rng,
            ))
            .push(Activation::new(ActivationKind::Relu, 32))
            .push(MaxPool2::new(2, 4, 4, 2))
            .push(Dropout::new(0.2, 8, 9))
            .push(Dense::new(8, 3, &mut rng));
        let x = Tensor::rand_uniform(&[2, 36], 0.0, 1.0, &mut rng);
        let y = net.predict(&x);

        let saved = net.save();
        let mut loaded = Network::load(saved).unwrap();
        let y2 = loaded.predict(&x);
        assert!(y.allclose(&y2, 1e-6), "roundtrip changed predictions");
        assert_eq!(loaded.specs(), net.specs());
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Network::load(&b"GARBAGE!"[..]).is_err());
        assert!(Network::load(&b"NN"[..]).is_err());
        let mut buf = BytesMut::new();
        buf.put_slice(b"NNW1");
        buf.put_u32_le(1);
        buf.put_u8(77); // unknown tag
        assert!(Network::load(buf.freeze()).is_err());
    }

    #[test]
    fn predict_planned_handles_zero_row_batch() {
        let mut net = tiny_mlp(7);
        let x = Tensor::zeros(&[0, 2]);
        let y = net.predict_planned(&x);
        assert_eq!(y.dims(), &[0, 1]);
        // And an actual batch afterwards still works through the plan.
        let x = Tensor::zeros(&[3, 2]);
        assert_eq!(net.predict_planned(&x).dims(), &[3, 1]);
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Network::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(net.forward(&x, false), x);
        assert_eq!(net.backward(&x), x);
        assert_eq!(net.param_count(), 0);
        assert!(net.is_empty());
    }

    #[test]
    fn specs_describe_architecture() {
        let net = tiny_mlp(5);
        let specs = net.specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].describe(), "Dense(2→8)");
    }
}
