//! Residual convolution block (pre-activation-free basic block).
//!
//! Implements the paper's §V direction ("more complex … DNN architectures
//! such as AlexNet and ResNet"): `y = relu(conv2(relu(conv1(x))) + x)` with
//! two same-geometry 3×3 padded convolutions, so input and output volumes
//! match and the skip connection is the identity.

use rand::Rng;
use tensor::conv::Conv2dGeom;
use tensor::Tensor;

use crate::conv2d::Conv2d;
use crate::layer::Layer;
use crate::spec::LayerSpec;

/// A two-convolution residual block over a `channels × side × side` volume.
pub struct ResidualConv {
    conv1: Conv2d,
    conv2: Conv2d,
    channels: usize,
    side: usize,
    cached_mid_pre: Option<Tensor>, // conv1 output, pre-relu
    cached_out_pre: Option<Tensor>, // conv2 output + skip, pre-relu
}

fn block_geom(channels: usize, side: usize) -> Conv2dGeom {
    Conv2dGeom {
        in_channels: channels,
        in_h: side,
        in_w: side,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    }
}

impl ResidualConv {
    /// New residual block (`channels` in == out, square `side`).
    pub fn new(channels: usize, side: usize, rng: &mut impl Rng) -> Self {
        let g = block_geom(channels, side);
        ResidualConv {
            conv1: Conv2d::new(g, channels, rng),
            conv2: Conv2d::new(g, channels, rng),
            channels,
            side,
            cached_mid_pre: None,
            cached_out_pre: None,
        }
    }

    /// Rebuild from checkpointed convolutions.
    pub fn from_convs(conv1: Conv2d, conv2: Conv2d) -> Self {
        let g = *conv1.geom();
        assert_eq!(g.in_h, g.in_w, "residual blocks are square");
        assert_eq!(conv1.out_channels(), g.in_channels, "channel-preserving");
        assert_eq!(conv2.out_channels(), g.in_channels);
        ResidualConv {
            channels: g.in_channels,
            side: g.in_h,
            conv1,
            conv2,
            cached_mid_pre: None,
            cached_out_pre: None,
        }
    }

    /// Borrow both convolutions (serialisation).
    pub fn convs(&self) -> (&Conv2d, &Conv2d) {
        (&self.conv1, &self.conv2)
    }

    fn relu(t: &Tensor) -> Tensor {
        t.map(|v| v.max(0.0))
    }

    fn relu_grad(pre: &Tensor, g: &Tensor) -> Tensor {
        g.zip(pre, |gv, pv| if pv > 0.0 { gv } else { 0.0 })
    }
}

impl Layer for ResidualConv {
    fn name(&self) -> &'static str {
        "residual_conv"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mid_pre = self.conv1.forward(input, train);
        let mid = Self::relu(&mid_pre);
        let mut out_pre = self.conv2.forward(&mid, train);
        out_pre.add_assign(input); // the skip connection
        let out = Self::relu(&out_pre);
        self.cached_mid_pre = Some(mid_pre);
        self.cached_out_pre = Some(out_pre);
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        backend: tensor::backend::Backend,
    ) {
        // Same op order as `forward`: conv1 → relu → conv2 → +skip → relu,
        // with the mid activation living in the scratch arena.
        let feat = self.in_dim();
        debug_assert_eq!(input.len(), batch * feat);
        debug_assert_eq!(out.len(), batch * feat);
        let (mid, conv_scratch) = scratch.split_at_mut(batch * feat);
        self.conv1
            .forward_into(input, batch, mid, conv_scratch, backend);
        for v in mid.iter_mut() {
            *v = v.max(0.0);
        }
        self.conv2
            .forward_into(mid, batch, out, conv_scratch, backend);
        for (o, &x) in out.iter_mut().zip(input) {
            *o += x; // the skip connection
            *o = o.max(0.0);
        }
    }

    fn plan_scratch_floats(&self, batch: usize) -> usize {
        batch * self.in_dim()
            + self
                .conv1
                .plan_scratch_floats(batch)
                .max(self.conv2.plan_scratch_floats(batch))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out_pre = self
            .cached_out_pre
            .take()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before forward");
        // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
        let mid_pre = self.cached_mid_pre.take().unwrap();
        // Through the output relu.
        let g_pre = Self::relu_grad(&out_pre, grad_out);
        // Residual path: conv2 ∘ relu ∘ conv1.
        let g_mid = self.conv2.backward(&g_pre);
        let g_mid_pre = Self::relu_grad(&mid_pre, &g_mid);
        let g_res = self.conv1.backward(&g_mid_pre);
        // Skip path adds the same upstream gradient.
        g_res.add(&g_pre)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut v = self.conv1.params_and_grads();
        v.extend(self.conv2.params_and_grads());
        v
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.conv1.visit_params_and_grads(f);
        self.conv2.visit_params_and_grads(f);
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut v = self.conv1.params();
        v.extend(self.conv2.params());
        v
    }

    fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.conv2.zero_grads();
    }

    fn in_dim(&self) -> usize {
        self.channels * self.side * self.side
    }

    fn out_dim(&self) -> usize {
        self.in_dim()
    }

    fn flops_per_sample(&self) -> u64 {
        // Two convs + skip add + two relus.
        self.conv1.flops_per_sample() + self.conv2.flops_per_sample() + 3 * self.in_dim() as u64
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::ResidualConv {
            channels: self.channels,
            side: self.side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    #[test]
    fn forward_shape_is_preserved() {
        let mut rng = rng_from_seed(0);
        let mut block = ResidualConv::new(4, 6, &mut rng);
        let x = Tensor::rand_uniform(&[3, 4 * 36], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, false);
        assert_eq!(y.dims(), x.dims());
        assert!(y.all_finite());
        assert!(y.data().iter().all(|&v| v >= 0.0), "output is post-relu");
    }

    #[test]
    fn zero_weights_pass_input_through_relu() {
        // With both convs zeroed, the block reduces to relu(x).
        let mut rng = rng_from_seed(1);
        let mut block = ResidualConv::new(2, 4, &mut rng);
        for (p, _) in block.params_and_grads() {
            p.fill(0.0);
        }
        let x = Tensor::rand_uniform(&[1, 32], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, false);
        let expect = x.map(|v| v.max(0.0));
        assert!(y.allclose(&expect, 1e-6));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(2);
        let mut block = ResidualConv::new(2, 4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 32], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform(&[2, 32], -1.0, 1.0, &mut rng);
        block.zero_grads();
        let _ = block.forward(&x, true);
        let dx = block.backward(&w);
        let eps = 1e-3;
        for elem in [0usize, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[elem] += eps;
            let mut xm = x.clone();
            xm.data_mut()[elem] -= eps;
            let lp: f32 = block
                .forward(&xp, true)
                .data()
                .iter()
                .zip(w.data())
                .map(|(y, wv)| y * wv)
                .sum();
            let lm: f32 = block
                .forward(&xm, true)
                .data()
                .iter()
                .zip(w.data())
                .map(|(y, wv)| y * wv)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.data()[elem] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "dx[{elem}] {} vs numeric {numeric}",
                dx.data()[elem]
            );
        }
    }

    #[test]
    fn param_count_is_two_convs() {
        let mut rng = rng_from_seed(3);
        let block = ResidualConv::new(4, 6, &mut rng);
        // Each conv: 4 out-ch × (4·3·3) + 4 bias.
        let one_conv = 4 * 36 + 4;
        assert_eq!(block.param_count(), 2 * one_conv);
    }

    #[test]
    fn skip_connection_improves_gradient_flow() {
        // With the skip, dL/dx has a direct component: even if both convs
        // are zero, the input gradient equals the upstream gradient on the
        // positive side.
        let mut rng = rng_from_seed(4);
        let mut block = ResidualConv::new(1, 4, &mut rng);
        for (p, _) in block.params_and_grads() {
            p.fill(0.0);
        }
        let x = Tensor::ones(&[1, 16]); // all positive ⇒ relu transparent
        let _ = block.forward(&x, true);
        let g = Tensor::full(&[1, 16], 2.0);
        let dx = block.backward(&g);
        assert!(dx.allclose(&g, 1e-6));
    }
}
