//! Inverted dropout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use crate::layer::Layer;
use crate::spec::LayerSpec;

/// Inverted dropout: at train time each unit is zeroed with probability `p`
/// and survivors are scaled by `1/(1−p)`; at inference the layer is the
/// identity. The layer owns a seeded RNG so training runs are reproducible.
pub struct Dropout {
    p: f32,
    dim: usize,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// New dropout layer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, dim: usize, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            dim,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        debug_assert_eq!(input.dims()[1], self.dim);
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::from_vec(mask_data, input.dims());
        let out = input.mul(&mask);
        self.cached_mask = Some(mask);
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        _scratch: &mut [f32],
        _backend: tensor::backend::Backend,
    ) {
        // Inference-time dropout is the identity; no kernels, no dispatch.
        debug_assert_eq!(input.len(), batch * self.dim);
        out.copy_from_slice(input);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => grad_out.mul(mask),
            None => grad_out.clone(),
        }
    }

    fn in_dim(&self) -> usize {
        self.dim
    }

    fn out_dim(&self) -> usize {
        self.dim
    }

    fn flops_per_sample(&self) -> u64 {
        0 // inference-time identity: contributes nothing to deployed cost
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dropout {
            p: self.p,
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 4, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_zeroes_about_p_fraction() {
        let mut d = Dropout::new(0.3, 1000, 42);
        let x = Tensor::ones(&[10, 1000]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.05, "zero fraction {frac}");
        // Survivors are scaled so the expectation is preserved.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 8, 7);
        let x = Tensor::ones(&[1, 8]);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::ones(&[1, 8]));
        // Where forward output is zero, the gradient must be zero too.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    fn p_zero_never_drops() {
        let mut d = Dropout::new(0.0, 16, 1);
        let x = Tensor::ones(&[2, 16]);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, 4, 0);
    }

    #[test]
    fn seeded_mask_is_reproducible() {
        let mut a = Dropout::new(0.5, 32, 99);
        let mut b = Dropout::new(0.5, 32, 99);
        let x = Tensor::ones(&[1, 32]);
        assert_eq!(a.forward(&x, true), b.forward(&x, true));
    }
}
