//! 1-D batch normalisation.
//!
//! Needed for the paper's §V future-work backbones (AlexNet/ResNet-style
//! networks train poorly at depth without normalisation). Standard
//! formulation: per-feature statistics over the batch at train time, running
//! averages at inference, learnable scale/shift.

use tensor::Tensor;

use crate::layer::Layer;
use crate::spec::LayerSpec;

/// Batch normalisation over `(batch, features)` tensors.
pub struct BatchNorm1d {
    dim: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor, // learnable scale
    beta: Tensor,  // learnable shift
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Cached forward state for backward.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Option<Tensor>,
}

impl BatchNorm1d {
    /// New batch-norm layer (γ = 1, β = 0, running stats at N(0, 1)).
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            dim,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[dim]),
            beta: Tensor::zeros(&[dim]),
            grad_gamma: Tensor::zeros(&[dim]),
            grad_beta: Tensor::zeros(&[dim]),
            running_mean: Tensor::zeros(&[dim]),
            running_var: Tensor::ones(&[dim]),
            cached_xhat: None,
            cached_inv_std: None,
        }
    }

    /// Running mean (inference statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (inference statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> &'static str {
        "batchnorm1d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        debug_assert_eq!(input.dims()[1], self.dim);
        let cols = self.dim;
        let (mean, var) = if train {
            let mean = input.mean_cols();
            let var = input.var_cols();
            // Update running statistics.
            for i in 0..cols {
                let rm = &mut self.running_mean.data_mut()[i];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean.data()[i];
            }
            for i in 0..cols {
                let rv = &mut self.running_var.data_mut()[i];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var.data()[i];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let inv_std: Vec<f32> = var
            .data()
            .iter()
            .map(|&v| 1.0 / (v + self.eps).sqrt())
            .collect();
        let mut xhat = input.clone();
        for row in xhat.data_mut().chunks_exact_mut(cols) {
            for ((x, &m), &is) in row.iter_mut().zip(mean.data()).zip(&inv_std) {
                *x = (*x - m) * is;
            }
        }
        let mut out = xhat.clone();
        for row in out.data_mut().chunks_exact_mut(cols) {
            for ((y, &g), &b) in row.iter_mut().zip(self.gamma.data()).zip(self.beta.data()) {
                *y = *y * g + b;
            }
        }
        if train {
            self.cached_xhat = Some(xhat);
            self.cached_inv_std = Some(Tensor::from_vec(inv_std, &[cols]));
        }
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        _backend: tensor::backend::Backend,
    ) {
        // Inference path: running statistics, no cache. Exactly the same
        // per-element arithmetic as `forward(_, false)` — standardise with
        // inv_std, then scale/shift — so the planned output is bit-identical
        // on every backend (this layer never dispatches).
        let cols = self.dim;
        debug_assert_eq!(input.len(), batch * cols);
        debug_assert_eq!(out.len(), batch * cols);
        let inv_std = &mut scratch[..cols];
        for (is, &v) in inv_std.iter_mut().zip(self.running_var.data()) {
            *is = 1.0 / (v + self.eps).sqrt();
        }
        let mean = self.running_mean.data();
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        for (orow, irow) in out.chunks_exact_mut(cols).zip(input.chunks_exact(cols)) {
            for j in 0..cols {
                let xhat = (irow[j] - mean[j]) * inv_std[j];
                orow[j] = xhat * gamma[j] + beta[j];
            }
        }
    }

    fn plan_scratch_floats(&self, _batch: usize) -> usize {
        self.dim // the per-feature inv_std vector
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before train-mode forward");
        // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
        let inv_std = self.cached_inv_std.as_ref().unwrap();
        let cols = self.dim;
        let n = grad_out.dims()[0] as f32;

        // dγ = Σ g·x̂ ; dβ = Σ g (per column).
        let dgamma = grad_out.mul(xhat).sum_rows();
        let dbeta = grad_out.sum_rows();
        self.grad_gamma.add_assign(&dgamma);
        self.grad_beta.add_assign(&dbeta);

        // dx = (γ·inv_std / n) · (n·g − Σg − x̂·Σ(g·x̂))
        let mut dx = Tensor::zeros(grad_out.dims());
        for ((dxrow, grow), xrow) in dx
            .data_mut()
            .chunks_exact_mut(cols)
            .zip(grad_out.data().chunks_exact(cols))
            .zip(xhat.data().chunks_exact(cols))
        {
            for j in 0..cols {
                let g = grow[j];
                dxrow[j] = (self.gamma.data()[j] * inv_std.data()[j] / n)
                    * (n * g - dbeta.data()[j] - xrow[j] * dgamma.data()[j]);
            }
        }
        dx
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.grad_gamma),
            (&mut self.beta, &mut self.grad_beta),
        ]
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn in_dim(&self) -> usize {
        self.dim
    }

    fn out_dim(&self) -> usize {
        self.dim
    }

    fn flops_per_sample(&self) -> u64 {
        4 * self.dim as u64
    }

    fn spec(&self) -> LayerSpec {
        // Serialized via the Activation record shape is wrong; BatchNorm has
        // its own spec variant.
        LayerSpec::BatchNorm1d { dim: self.dim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    #[test]
    fn train_forward_standardises_batch() {
        let mut bn = BatchNorm1d::new(3);
        let mut rng = rng_from_seed(0);
        let x = Tensor::rand_uniform(&[64, 3], -5.0, 5.0, &mut rng);
        let y = bn.forward(&x, true);
        let mean = y.mean_cols();
        let var = y.var_cols();
        assert!(mean.data().iter().all(|v| v.abs() < 1e-4), "{mean}");
        assert!(var.data().iter().all(|v| (v - 1.0).abs() < 1e-3), "{var}");
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm1d::new(2);
        let mut rng = rng_from_seed(1);
        // Feed several batches with mean ≈ 3 so running stats move there.
        for _ in 0..200 {
            let x = Tensor::rand_normal(&[32, 2], 3.0, 1.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean().data()[0] - 3.0).abs() < 0.3);
        // Inference on a constant-3 batch should produce ≈ 0 output.
        let x = Tensor::full(&[4, 2], 3.0);
        let y = bn.forward(&x, false);
        assert!(y.data().iter().all(|v| v.abs() < 0.5), "{y}");
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut bn = BatchNorm1d::new(2);
        let mut rng = rng_from_seed(2);
        let x = Tensor::rand_uniform(&[5, 2], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform(&[5, 2], -1.0, 1.0, &mut rng);
        bn.zero_grads();
        let _ = bn.forward(&x, true);
        let dx = bn.backward(&w);
        let eps = 1e-3;
        for elem in [0usize, 3, 9] {
            let mut xp = x.clone();
            xp.data_mut()[elem] += eps;
            let mut xm = x.clone();
            xm.data_mut()[elem] -= eps;
            let lp: f32 = bn
                .forward(&xp, true)
                .data()
                .iter()
                .zip(w.data())
                .map(|(y, wv)| y * wv)
                .sum();
            let lm: f32 = bn
                .forward(&xm, true)
                .data()
                .iter()
                .zip(w.data())
                .map(|(y, wv)| y * wv)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.data()[elem] - numeric).abs() < 0.02 * numeric.abs().max(1.0),
                "dx[{elem}] {} vs numeric {numeric}",
                dx.data()[elem]
            );
        }
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let mut bn = BatchNorm1d::new(2);
        assert_eq!(bn.param_count(), 4);
        let mut rng = rng_from_seed(3);
        let x = Tensor::rand_uniform(&[8, 2], -1.0, 1.0, &mut rng);
        bn.zero_grads();
        let y = bn.forward(&x, true);
        let _ = bn.backward(&Tensor::ones(y.dims()));
        let pg = bn.params_and_grads();
        // dβ = Σ g = batch size per column.
        assert!(pg[1].1.data().iter().all(|&v| (v - 8.0).abs() < 1e-4));
    }
}
