//! # nn — from-scratch neural-network training stack
//!
//! Everything the CBNet reproduction trains — LeNet, BranchyNet-LeNet, the
//! converting autoencoder, the lightweight classifier, and the AdaDeep /
//! SubFlow comparators — is built from the pieces in this crate:
//!
//! * [`layer::Layer`] — the layer contract (forward, backward, parameter
//!   access, FLOP accounting),
//! * concrete layers: [`dense::Dense`], [`conv2d::Conv2d`],
//!   [`pool::MaxPool2`], [`activation::Activation`], [`dropout::Dropout`],
//! * [`network::Network`] — a sequential container with save/load,
//! * [`plan::ForwardPlan`] — the planned, buffer-reusing inference executor
//!   behind [`network::Network::predict_planned`] (zero steady-state
//!   allocations; bit-identical to the allocating forward),
//! * losses: [`loss::MseLoss`], [`loss::SoftmaxCrossEntropy`],
//!   [`loss::ActivityL1`] (the paper's encoder activity regulariser),
//! * optimizers: [`optim::Sgd`], [`optim::Momentum`], [`optim::Adam`]
//!   (the paper trains every model with Adam \[18\]),
//! * initialisation: [`init`] (Glorot/He, seeded).
//!
//! Batches are rank-2 tensors `(batch, features)`; convolutional layers carry
//! their own NCHW geometry and interpret each row as a CHW volume. There is
//! no tape autograd — layers cache what their own backward pass needs, and
//! [`network::Network::backward`] walks the stack in reverse. For networks
//! with branches (BranchyNet), the `models` crate composes several
//! `Network`s and routes gradients between them explicitly.

#![forbid(unsafe_code)]

pub mod activation;
pub mod batchnorm;
pub mod conv2d;
pub mod dense;
pub mod dropout;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optim;
pub mod plan;
pub mod pool;
pub mod residual;
pub mod schedule;
pub mod spec;
pub mod store;

pub use activation::{Activation, ActivationKind};
pub use batchnorm::BatchNorm1d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use layer::Layer;
pub use loss::{ActivityL1, Loss, MseLoss, SoftmaxCrossEntropy};
pub use network::Network;
pub use optim::{step_with, Adam, Momentum, Optimizer, Sgd};
pub use plan::ForwardPlan;
pub use pool::MaxPool2;
pub use residual::ResidualConv;
pub use schedule::{clip_global_norm, CosineAnnealing, LrSchedule, StepDecay};
pub use spec::{CostKind, LayerSpec};
