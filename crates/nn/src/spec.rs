//! Structural layer descriptions.
//!
//! A [`LayerSpec`] captures everything about a layer except its learned
//! parameters. It serves three masters:
//!
//! 1. **Serialisation** — `Network::save`/`load` write specs alongside
//!    parameter tensors so a checkpoint is self-describing.
//! 2. **Device cost model** — `edgesim` walks a network's specs to price each
//!    layer on a device without touching the `nn` crate's internals.
//! 3. **Architecture reporting** — the Table I harness prints specs directly.

use tensor::conv::Conv2dGeom;

use crate::activation::ActivationKind;

/// Throughput class of a layer for device cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// im2col-lowered convolution.
    Conv,
    /// Dense GEMM.
    Dense,
    /// Pooling, activations, dropout — memory-bound glue.
    Other,
}

/// Everything about a layer except its weights.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
    },
    /// 2-D convolution (im2col-lowered).
    Conv2d {
        /// Window geometry (includes input channels & spatial dims).
        geom: Conv2dGeom,
        /// Number of output channels.
        out_channels: usize,
    },
    /// 2×2-style max pooling.
    MaxPool2 {
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Pool window and stride (square, non-overlapping).
        window: usize,
    },
    /// Elementwise activation.
    Activation {
        /// Which nonlinearity.
        kind: ActivationKind,
        /// Feature count (in == out).
        dim: usize,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability.
        p: f32,
        /// Feature count.
        dim: usize,
    },
    /// 1-D batch normalisation.
    BatchNorm1d {
        /// Feature count.
        dim: usize,
    },
    /// Residual block of two channel-preserving 3×3 convolutions.
    ResidualConv {
        /// Channels (in == out).
        channels: usize,
        /// Square spatial side.
        side: usize,
    },
}

impl LayerSpec {
    /// Compact single-line rendering, used by architecture tables.
    pub fn describe(&self) -> String {
        match self {
            LayerSpec::Dense { in_dim, out_dim } => format!("Dense({in_dim}→{out_dim})"),
            LayerSpec::Conv2d { geom, out_channels } => format!(
                "Conv2d({}×{}×{} →{}ch, k{}×{}, s{}, p{})",
                geom.in_channels,
                geom.in_h,
                geom.in_w,
                out_channels,
                geom.k_h,
                geom.k_w,
                geom.stride,
                geom.pad
            ),
            LayerSpec::MaxPool2 {
                channels,
                in_h,
                in_w,
                window,
            } => format!("MaxPool{window}({channels}×{in_h}×{in_w})"),
            LayerSpec::Activation { kind, dim } => format!("{kind:?}({dim})"),
            LayerSpec::Dropout { p, dim } => format!("Dropout(p={p}, {dim})"),
            LayerSpec::BatchNorm1d { dim } => format!("BatchNorm1d({dim})"),
            LayerSpec::ResidualConv { channels, side } => {
                format!("ResidualConv({channels}×{side}×{side})")
            }
        }
    }

    /// Forward FLOPs per sample implied by the spec.
    ///
    /// Must agree with the corresponding layer's
    /// [`crate::Layer::flops_per_sample`] — a unit test pins the two
    /// together. This is what lets the `edgesim` device model price an
    /// architecture from its spec list alone.
    pub fn flops_per_sample(&self) -> u64 {
        match self {
            LayerSpec::Dense { in_dim, out_dim } => (2 * in_dim * out_dim + out_dim) as u64,
            LayerSpec::Conv2d { geom, out_channels } => {
                let p = geom.patch_rows() as u64;
                let k = geom.patch_cols() as u64;
                let o = *out_channels as u64;
                2 * o * p * k + o * p
            }
            LayerSpec::MaxPool2 {
                channels,
                in_h,
                in_w,
                window,
            } => (channels * (in_h / window) * (in_w / window) * window * window) as u64,
            LayerSpec::Activation { kind, dim } => match kind {
                ActivationKind::Linear => 0,
                ActivationKind::Relu => *dim as u64,
                ActivationKind::Sigmoid | ActivationKind::Tanh => 4 * *dim as u64,
                ActivationKind::Softmax => 6 * *dim as u64,
            },
            LayerSpec::Dropout { .. } => 0,
            LayerSpec::BatchNorm1d { dim } => 4 * *dim as u64,
            LayerSpec::ResidualConv { channels, side } => {
                // Two 3×3 padded convs (P = side², K = channels·9) + skip
                // add + two relus; matches ResidualConv::flops_per_sample.
                let p = (side * side) as u64;
                let k = (channels * 9) as u64;
                let o = *channels as u64;
                2 * (2 * o * p * k + o * p) + 3 * o * p
            }
        }
    }

    /// Output features per sample — the activation volume that crosses the
    /// network if a partitioned execution splits *after* this layer.
    pub fn out_features(&self) -> usize {
        match self {
            LayerSpec::Dense { out_dim, .. } => *out_dim,
            LayerSpec::Conv2d { geom, out_channels } => out_channels * geom.patch_rows(),
            LayerSpec::MaxPool2 {
                channels,
                in_h,
                in_w,
                window,
            } => channels * (in_h / window) * (in_w / window),
            LayerSpec::Activation { dim, .. } => *dim,
            LayerSpec::Dropout { dim, .. } => *dim,
            LayerSpec::BatchNorm1d { dim } => *dim,
            LayerSpec::ResidualConv { channels, side } => channels * side * side,
        }
    }

    /// Throughput class used by device cost models: convolutions and dense
    /// GEMMs run at very different effective FLOP rates on the paper's
    /// software stack (small-image conv is dispatch/im2col-bound; dense
    /// layers hit optimized BLAS).
    pub fn cost_kind(&self) -> CostKind {
        match self {
            LayerSpec::Conv2d { .. } | LayerSpec::ResidualConv { .. } => CostKind::Conv,
            LayerSpec::Dense { .. } => CostKind::Dense,
            _ => CostKind::Other,
        }
    }

    /// Compact self-contained encoding, `name(field,...)`, used by the
    /// tensorstore model format's `__metadata__` architecture strings.
    /// Float fields (dropout `p`) are stored as `f32::to_bits` hex so the
    /// roundtrip through [`LayerSpec::decode_compact`] is bitwise exact.
    pub fn encode_compact(&self) -> String {
        match self {
            LayerSpec::Dense { in_dim, out_dim } => format!("dense({in_dim},{out_dim})"),
            LayerSpec::Conv2d { geom, out_channels } => format!(
                "conv2d({},{},{},{},{},{},{},{})",
                geom.in_channels,
                geom.in_h,
                geom.in_w,
                geom.k_h,
                geom.k_w,
                geom.stride,
                geom.pad,
                out_channels
            ),
            LayerSpec::MaxPool2 {
                channels,
                in_h,
                in_w,
                window,
            } => format!("maxpool({channels},{in_h},{in_w},{window})"),
            LayerSpec::Activation { kind, dim } => format!("act({},{dim})", kind.tag()),
            LayerSpec::Dropout { p, dim } => format!("drop({:08x},{dim})", p.to_bits()),
            LayerSpec::BatchNorm1d { dim } => format!("bn({dim})"),
            LayerSpec::ResidualConv { channels, side } => format!("res({channels},{side})"),
        }
    }

    /// Parse one [`LayerSpec::encode_compact`] string; `None` on an unknown
    /// layer name, wrong arity or malformed field.
    pub fn decode_compact(s: &str) -> Option<LayerSpec> {
        let (name, rest) = s.split_once('(')?;
        let args = rest.strip_suffix(')')?;
        let mut fields = args.split(',');
        let next = |fields: &mut std::str::Split<'_, char>| -> Option<usize> {
            fields.next()?.parse().ok()
        };
        let spec = match name {
            "dense" => LayerSpec::Dense {
                in_dim: next(&mut fields)?,
                out_dim: next(&mut fields)?,
            },
            "conv2d" => LayerSpec::Conv2d {
                geom: Conv2dGeom {
                    in_channels: next(&mut fields)?,
                    in_h: next(&mut fields)?,
                    in_w: next(&mut fields)?,
                    k_h: next(&mut fields)?,
                    k_w: next(&mut fields)?,
                    stride: next(&mut fields)?,
                    pad: next(&mut fields)?,
                },
                out_channels: next(&mut fields)?,
            },
            "maxpool" => LayerSpec::MaxPool2 {
                channels: next(&mut fields)?,
                in_h: next(&mut fields)?,
                in_w: next(&mut fields)?,
                window: next(&mut fields)?,
            },
            "act" => LayerSpec::Activation {
                kind: ActivationKind::from_tag(u8::try_from(next(&mut fields)?).ok()?)?,
                dim: next(&mut fields)?,
            },
            "drop" => LayerSpec::Dropout {
                p: f32::from_bits(u32::from_str_radix(fields.next()?, 16).ok()?),
                dim: next(&mut fields)?,
            },
            "bn" => LayerSpec::BatchNorm1d {
                dim: next(&mut fields)?,
            },
            "res" => LayerSpec::ResidualConv {
                channels: next(&mut fields)?,
                side: next(&mut fields)?,
            },
            _ => return None,
        };
        // Trailing fields mean a wrong arity — reject rather than ignore.
        if fields.next().is_some() {
            return None;
        }
        Some(spec)
    }

    /// Serialisation tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            LayerSpec::Dense { .. } => 1,
            LayerSpec::Conv2d { .. } => 2,
            LayerSpec::MaxPool2 { .. } => 3,
            LayerSpec::Activation { .. } => 4,
            LayerSpec::Dropout { .. } => 5,
            LayerSpec::BatchNorm1d { .. } => 6,
            LayerSpec::ResidualConv { .. } => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_formats() {
        let d = LayerSpec::Dense {
            in_dim: 784,
            out_dim: 512,
        };
        assert_eq!(d.describe(), "Dense(784→512)");

        let c = LayerSpec::Conv2d {
            geom: Conv2dGeom {
                in_channels: 1,
                in_h: 28,
                in_w: 28,
                k_h: 5,
                k_w: 5,
                stride: 1,
                pad: 0,
            },
            out_channels: 5,
        };
        assert!(c.describe().contains("Conv2d"));
        assert!(c.describe().contains("5ch"));
    }

    #[test]
    fn spec_flops_agree_with_layers() {
        use crate::layer::Layer;
        use tensor::random::rng_from_seed;
        let mut rng = rng_from_seed(0);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(crate::Dense::new(784, 512, &mut rng)),
            Box::new(crate::Conv2d::new(
                Conv2dGeom {
                    in_channels: 1,
                    in_h: 28,
                    in_w: 28,
                    k_h: 5,
                    k_w: 5,
                    stride: 2,
                    pad: 0,
                },
                8,
                &mut rng,
            )),
            Box::new(crate::MaxPool2::new(16, 8, 8, 2)),
            Box::new(crate::Activation::new(ActivationKind::Relu, 100)),
            Box::new(crate::Activation::new(ActivationKind::Softmax, 10)),
            Box::new(crate::Dropout::new(0.5, 64, 0)),
            Box::new(crate::batchnorm::BatchNorm1d::new(32)),
            Box::new(crate::residual::ResidualConv::new(4, 6, &mut rng)),
        ];
        for layer in &layers {
            assert_eq!(
                layer.spec().flops_per_sample(),
                layer.flops_per_sample(),
                "spec/layer FLOPs diverged for {}",
                layer.name()
            );
        }
    }

    #[test]
    fn cost_kinds() {
        assert_eq!(
            LayerSpec::Dense {
                in_dim: 1,
                out_dim: 1
            }
            .cost_kind(),
            CostKind::Dense
        );
        assert_eq!(
            LayerSpec::Dropout { p: 0.1, dim: 2 }.cost_kind(),
            CostKind::Other
        );
    }

    #[test]
    fn tags_are_distinct() {
        let specs = [
            LayerSpec::Dense {
                in_dim: 1,
                out_dim: 1,
            },
            LayerSpec::Conv2d {
                geom: Conv2dGeom {
                    in_channels: 1,
                    in_h: 2,
                    in_w: 2,
                    k_h: 1,
                    k_w: 1,
                    stride: 1,
                    pad: 0,
                },
                out_channels: 1,
            },
            LayerSpec::MaxPool2 {
                channels: 1,
                in_h: 2,
                in_w: 2,
                window: 2,
            },
            LayerSpec::Activation {
                kind: ActivationKind::Relu,
                dim: 4,
            },
            LayerSpec::Dropout { p: 0.5, dim: 4 },
            LayerSpec::BatchNorm1d { dim: 4 },
            LayerSpec::ResidualConv {
                channels: 1,
                side: 2,
            },
        ];
        let mut tags: Vec<u8> = specs.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), specs.len());
    }
}
