//! Learning-rate schedules and gradient hygiene utilities.
//!
//! The paper trains with plain Adam; these are quality-of-life extensions
//! for the larger backbones (§V) where a decaying rate and clipped gradients
//! noticeably stabilise training.

use tensor::Tensor;

/// A learning-rate schedule: maps epoch index → learning rate.
pub trait LrSchedule {
    /// The learning rate to use for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f32);

impl LrSchedule for Constant {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Step decay: `lr = base · gamma^(epoch / step)`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f32,
    /// Multiplicative decay applied every `step` epochs.
    pub gamma: f32,
    /// Epochs between decays.
    pub step: usize,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        assert!(self.step > 0, "step must be positive");
        self.base * self.gamma.powi((epoch / self.step) as i32)
    }
}

/// Cosine annealing from `base` down to `floor` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealing {
    /// Initial rate.
    pub base: f32,
    /// Final rate.
    pub floor: f32,
    /// Horizon; epochs beyond it stay at `floor`.
    pub total_epochs: usize,
}

impl LrSchedule for CosineAnnealing {
    fn lr_at(&self, epoch: usize) -> f32 {
        if epoch >= self.total_epochs || self.total_epochs == 0 {
            return self.floor;
        }
        let t = epoch as f32 / self.total_epochs as f32;
        self.floor + 0.5 * (self.base - self.floor) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

/// Clip the global L2 norm of a gradient set to `max_norm`; returns the
/// pre-clip norm. No-op when the norm is already within bounds.
pub fn clip_global_norm(params: &mut [(&mut Tensor, &mut Tensor)], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    for (_, g) in params.iter() {
        for &v in g.data() {
            sq += (v as f64) * (v as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for (_, g) in params.iter_mut() {
            g.scale_in_place(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Constant(0.01);
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(100), 0.01);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay {
            base: 0.1,
            gamma: 0.5,
            step: 2,
        };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1), 0.1);
        assert_eq!(s.lr_at(2), 0.05);
        assert_eq!(s.lr_at(5), 0.025);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = CosineAnnealing {
            base: 0.1,
            floor: 0.001,
            total_epochs: 10,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(10) - 0.001).abs() < 1e-6);
        assert!((s.lr_at(999) - 0.001).abs() < 1e-6);
        let mut prev = f32::MAX;
        for e in 0..=10 {
            let lr = s.lr_at(e);
            assert!(lr <= prev + 1e-6, "cosine must be non-increasing");
            prev = lr;
        }
    }

    #[test]
    fn clip_scales_only_when_needed() {
        let mut p = Tensor::zeros(&[2]);
        let mut g = Tensor::from_slice(&[3.0, 4.0]); // norm 5
        {
            let mut pairs = vec![(&mut p, &mut g)];
            let norm = clip_global_norm(&mut pairs, 10.0);
            assert_eq!(norm, 5.0);
        }
        assert_eq!(g.data(), &[3.0, 4.0], "within bounds: untouched");
        {
            let mut pairs = vec![(&mut p, &mut g)];
            let norm = clip_global_norm(&mut pairs, 1.0);
            assert_eq!(norm, 5.0);
        }
        assert!((g.l2_norm() - 1.0).abs() < 1e-6, "clipped to unit norm");
    }

    #[test]
    fn clip_spans_multiple_tensors() {
        let mut p1 = Tensor::zeros(&[1]);
        let mut g1 = Tensor::from_slice(&[3.0]);
        let mut p2 = Tensor::zeros(&[1]);
        let mut g2 = Tensor::from_slice(&[4.0]);
        let mut pairs = vec![(&mut p1, &mut g1), (&mut p2, &mut g2)];
        let norm = clip_global_norm(&mut pairs, 2.5);
        assert_eq!(norm, 5.0);
        let total = (g1.data()[0].powi(2) + g2.data()[0].powi(2)).sqrt();
        assert!((total - 2.5).abs() < 1e-6);
    }
}
