//! The planned, buffer-reusing forward executor.
//!
//! [`Network::forward`](crate::Network::forward) allocates a fresh output
//! tensor in every layer of every call — fine for training, where backward
//! caches dominate anyway, but pure waste on the inference hot path that the
//! serving and fleet simulators price every request from. A [`ForwardPlan`]
//! walks the network's [`LayerSpec`](crate::LayerSpec)s **once**, sizes every
//! intermediate activation, and owns all the memory the pass needs:
//!
//! * two **ping-pong activation buffers**, each large enough for the widest
//!   layer output at the plan's batch capacity — layer `i` reads from one and
//!   writes into the other, alternating;
//! * one **scratch arena** sized to the largest
//!   [`Layer::plan_scratch_floats`] requirement (e.g. per-thread im2col
//!   patch matrices for convolutions).
//!
//! # Ownership and scratch rules
//!
//! * A plan is built **for** a network (same layer stack) but does not borrow
//!   it; [`ForwardPlan::run`] re-checks structural agreement on every call
//!   and panics on mismatch rather than producing garbage.
//! * A plan has a fixed **capacity** (maximum batch rows). Any batch of
//!   `1..=capacity` rows can run through it — that is what lets early-exit
//!   models *compact* the not-yet-exited rows and continue through the tail
//!   with the same plan. Larger batches need a new (or regrown) plan.
//! * Scratch contents are unspecified between calls; layers must fully
//!   initialise whatever they read. Layers never see each other's scratch —
//!   the executor hands each layer exactly the
//!   `plan_scratch_floats(batch)` prefix it asked for.
//! * The returned slice borrows the plan and is valid until the next `run`.
//!   Steady-state `run` calls perform **zero heap allocations** — enforced
//!   dynamically by `tests/alloc_guard.rs` (a counting global allocator
//!   asserts zero allocations across repeated runs of every comparator)
//!   and statically by `cbnet-lint`'s `hot-path-alloc` rule.
//!
//! Single-threaded or not, the planned pass is bit-identical to the
//! allocating path: every `forward_into` kernel performs the same floating
//! point operations in the same order per sample, and batch parallelism
//! splits only across samples/rows (pinned by the workspace conformance
//! tests).
//!
//! # Compute backends
//!
//! A plan resolves its [`Backend`] **once at construction** and hands the
//! same `Copy` handle to every layer on every `run` — dispatch is an enum
//! match onto a `&'static` kernel set, so backend selection adds zero
//! allocation to the per-call path (enforced for both backends by
//! `tests/alloc_guard.rs`). [`ForwardPlan::new`] uses
//! [`Backend::resolve`] — programmatic override, then the `CBNET_BACKEND`
//! env var (`scalar` / `simd` / `auto`), then auto-detection (SIMD when the
//! CPU has AVX2+FMA) — while [`ForwardPlan::with_backend`] pins an explicit
//! choice. The bit-identity guarantee above is stated for the scalar
//! backend; the SIMD backend agrees to the tolerance documented in
//! [`tensor::backend`] (dot-family kernels use a different reduction order)
//! and is pinned against scalar by `tests/backend_conformance.rs` over all
//! five comparators. `Network::predict_planned` rebuilds its cached plan
//! when the resolved backend changes, so a process-wide selection reaches
//! every adapter automatically.
//!
//! # Profiling probes
//!
//! A plan also resolves the process-wide [`obs::PlanProbe`] once at
//! construction (`obs::probe::install` / `obs::probe::clear`), exactly like
//! the backend: with no probe installed every layer pays a single `None`
//! branch — no clock read, no allocation — and with one installed the plan
//! brackets each `forward_into` call with a monotonic clock and reports
//! `(layer, batch, elapsed_ns)` through [`obs::PlanProbe::on_layer`]. Probe
//! implementations record into preallocated atomic cells, so the active
//! path stays zero-allocation too (both proven by `tests/alloc_guard.rs`).
//! `Network::predict_planned` watches `obs::probe::generation()` the same
//! way it watches the backend and rebuilds its cached plan when the
//! installed probe changes.

use std::sync::Arc;
use std::time::Instant;

use obs::PlanProbe;
use tensor::backend::Backend;
use tensor::Tensor;

use crate::layer::Layer;
use crate::network::Network;

/// Reusable execution state for inference over one network shape.
///
/// See the [module docs](self) for ownership and scratch rules.
pub struct ForwardPlan {
    /// Maximum batch rows a `run` may carry.
    capacity: usize,
    /// Input width the first layer expects (= `Network::in_dim`).
    in_width: usize,
    /// Output width of every layer, in order.
    out_widths: Vec<usize>,
    /// Backing store for both ping-pong activation buffers (two halves).
    bufs: Vec<f32>,
    /// Elements per ping-pong half.
    half: usize,
    /// Shared scratch arena (max per-layer requirement at `capacity`).
    scratch: Vec<f32>,
    /// Kernel set every layer call dispatches to (resolved once, at build).
    backend: Backend,
    /// Profiling callback (resolved once, at build; `None` = disabled).
    probe: Option<Arc<dyn PlanProbe>>,
    /// `obs::probe::generation()` at resolve time, for staleness checks.
    probe_generation: u64,
}

impl ForwardPlan {
    /// Build a plan for `net` with room for batches of up to `capacity` rows,
    /// on the process-resolved backend ([`Backend::resolve`]).
    ///
    /// All intermediate shapes are inferred here, once; `run` allocates
    /// nothing.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(net: &Network, capacity: usize) -> ForwardPlan {
        ForwardPlan::with_backend(net, capacity, Backend::resolve())
    }

    /// Build a plan pinned to an explicit compute `backend`, ignoring the
    /// process-wide selection (the probe still resolves process-wide). See
    /// [`ForwardPlan::new`] for everything else.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_backend(net: &Network, capacity: usize, backend: Backend) -> ForwardPlan {
        ForwardPlan::with_probe(net, capacity, backend, obs::probe::active())
    }

    /// Build a plan pinned to an explicit `backend` **and** an explicit
    /// probe (`None` = profiling disabled), ignoring both process-wide
    /// selections. This is the constructor perf harnesses use to profile a
    /// specific plan without installing a global probe.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_probe(
        net: &Network,
        capacity: usize,
        backend: Backend,
        probe: Option<Arc<dyn PlanProbe>>,
    ) -> ForwardPlan {
        assert!(capacity > 0, "plan capacity must be positive");
        let layers = net.layers();
        let in_width = net.in_dim();
        let out_widths: Vec<usize> = layers.iter().map(|l| l.out_dim()).collect();
        let max_width = out_widths.iter().copied().max().unwrap_or(0).max(in_width);
        let scratch_len = layers
            .iter()
            .map(|l| l.plan_scratch_floats(capacity))
            .max()
            .unwrap_or(0);
        let half = capacity * max_width;
        ForwardPlan {
            capacity,
            in_width,
            out_widths,
            bufs: vec![0.0; 2 * half],
            half,
            scratch: vec![0.0; scratch_len],
            backend,
            probe,
            probe_generation: obs::probe::generation(),
        }
    }

    /// Maximum batch rows this plan can carry.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compute backend every `run` on this plan dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// True when a profiling probe is attached to this plan.
    pub fn has_probe(&self) -> bool {
        self.probe.is_some()
    }

    /// The `obs::probe::generation()` observed when this plan resolved its
    /// probe — `Network::predict_planned` compares it against the current
    /// generation to rebuild on install/clear.
    pub fn probe_generation(&self) -> u64 {
        self.probe_generation
    }

    /// Network depth the plan was built for.
    pub fn depth(&self) -> usize {
        self.out_widths.len()
    }

    /// Heap floats owned by the plan (activation buffers + scratch) —
    /// reported by capacity planning and the perf harness.
    pub fn footprint_floats(&self) -> usize {
        self.bufs.len() + self.scratch.len()
    }

    /// True when the plan's inferred shapes still agree with `layers`.
    pub fn matches(&self, layers: &[Box<dyn Layer>]) -> bool {
        self.out_widths.len() == layers.len()
            && self
                .out_widths
                .iter()
                .zip(layers)
                .all(|(&w, l)| w == l.out_dim())
            && layers.first().is_none_or(|l| l.in_dim() == self.in_width)
    }

    /// Execute an inference pass over `layers`, returning the final
    /// activations as a borrowed `(batch × out_dim)` row-major slice.
    ///
    /// Zero heap allocations in steady state. The slice is valid until the
    /// next `run` on this plan.
    ///
    /// # Panics
    /// Panics when the batch exceeds the capacity, the input width is wrong,
    /// or `layers` no longer matches the shape the plan was built for.
    pub fn run<'p>(&'p mut self, layers: &mut [Box<dyn Layer>], input: &Tensor) -> &'p [f32] {
        assert_eq!(
            input.rank(),
            2,
            "planned forward takes a (batch, features) input"
        );
        let n = input.dims()[0];
        assert!(
            n <= self.capacity,
            "batch {n} exceeds plan capacity {}",
            self.capacity
        );
        assert!(
            self.matches(layers),
            "network shape changed since the plan was built; rebuild the plan"
        );
        if layers.is_empty() {
            // Identity network: surface the input through the buffer. An
            // empty network has no widths to size buffers from, so this edge
            // case may grow the buffer on first use.
            let len = input.len();
            if self.bufs.len() < len {
                self.bufs.resize(len, 0.0);
            }
            self.bufs[..len].copy_from_slice(input.data());
            return &self.bufs[..len];
        }
        assert_eq!(
            input.dims()[1],
            self.in_width,
            "planned forward input width mismatch"
        );

        let probe = self.probe.as_deref();
        let (mut src, mut dst) = self.bufs.split_at_mut(self.half);
        let mut src_is_a = true; // which half `src` points at, for the return
        let mut width = self.in_width;
        for (i, layer) in layers.iter_mut().enumerate() {
            let w = self.out_widths[i];
            let cur: &[f32] = if i == 0 {
                input.data()
            } else {
                &src[..n * width]
            };
            let need = layer.plan_scratch_floats(n);
            // Disabled probes cost exactly this `None` check — no clock
            // read; active probes record into preallocated atomic cells.
            let t0 = probe.map(|_| Instant::now());
            layer.forward_into(
                cur,
                n,
                &mut dst[..n * w],
                &mut self.scratch[..need],
                self.backend,
            );
            if let (Some(p), Some(t0)) = (probe, t0) {
                p.on_layer(i, n, t0.elapsed().as_nanos() as u64);
            }
            std::mem::swap(&mut src, &mut dst);
            src_is_a = !src_is_a;
            width = w;
        }
        let start = if src_is_a { 0 } else { self.half };
        &self.bufs[start..start + n * width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, ActivationKind};
    use crate::conv2d::Conv2d;
    use crate::dense::Dense;
    use crate::pool::MaxPool2;
    use tensor::conv::Conv2dGeom;
    use tensor::random::rng_from_seed;

    fn conv_stack(seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        Network::new()
            .push(Conv2d::new(
                Conv2dGeom {
                    in_channels: 1,
                    in_h: 8,
                    in_w: 8,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 0,
                },
                4,
                &mut rng,
            ))
            .push(Activation::new(ActivationKind::Relu, 4 * 36))
            .push(MaxPool2::new(4, 6, 6, 2))
            .push(Dense::new(36, 10, &mut rng))
            .push(Activation::new(ActivationKind::Softmax, 10))
    }

    #[test]
    fn planned_matches_allocating_bitwise() {
        let mut net = conv_stack(7);
        let mut rng = rng_from_seed(1);
        let x = Tensor::rand_uniform(&[5, 64], -1.0, 1.0, &mut rng);
        let legacy = net.forward(&x, false);
        // Bit-identity is the scalar backend's contract (the allocating
        // path always runs scalar kernels); pin it rather than auto-resolve.
        let mut plan = ForwardPlan::with_backend(&net, 5, Backend::scalar());
        let planned = plan.run(net.layers_mut(), &x);
        assert_eq!(
            legacy.data(),
            planned,
            "planned forward must be bit-identical"
        );
    }

    #[test]
    fn plan_reuse_covers_smaller_batches() {
        let mut net = conv_stack(8);
        let mut rng = rng_from_seed(2);
        let mut plan = ForwardPlan::with_backend(&net, 8, Backend::scalar());
        for n in [8usize, 3, 1, 6] {
            let x = Tensor::rand_uniform(&[n, 64], -1.0, 1.0, &mut rng);
            let legacy = net.forward(&x, false);
            let planned = plan.run(net.layers_mut(), &x);
            assert_eq!(legacy.data(), planned, "batch {n}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds plan capacity")]
    fn oversized_batch_rejected() {
        let mut net = conv_stack(9);
        let mut plan = ForwardPlan::new(&net, 2);
        let x = Tensor::zeros(&[3, 64]);
        let _ = plan.run(net.layers_mut(), &x);
    }

    #[test]
    #[should_panic(expected = "rebuild the plan")]
    fn shape_drift_rejected() {
        let mut rng = rng_from_seed(3);
        let net = conv_stack(10);
        let mut plan = ForwardPlan::new(&net, 2);
        let mut other = Network::new().push(Dense::new(64, 3, &mut rng));
        let x = Tensor::zeros(&[1, 64]);
        let _ = plan.run(other.layers_mut(), &x);
    }

    #[test]
    fn probe_times_every_layer_without_changing_results() {
        let mut net = conv_stack(11);
        let mut rng = rng_from_seed(4);
        let x = Tensor::rand_uniform(&[3, 64], -1.0, 1.0, &mut rng);
        let baseline = net.forward(&x, false);
        let profile = std::sync::Arc::new(obs::LayerProfile::new());
        let mut plan = ForwardPlan::with_probe(
            &net,
            3,
            Backend::scalar(),
            Some(profile.clone() as Arc<dyn PlanProbe>),
        );
        assert!(plan.has_probe());
        let planned = plan.run(net.layers_mut(), &x);
        assert_eq!(baseline.data(), planned, "probe must not perturb results");
        for i in 0..net.depth() {
            let (calls, samples, _ns) = profile.layer(i).expect("layer timed");
            assert_eq!((calls, samples), (1, 3), "layer {i}");
        }
        assert_eq!(profile.layer(net.depth()), None);
    }

    #[test]
    fn installed_probe_reaches_new_plans_and_cached_ones() {
        let profile = std::sync::Arc::new(obs::LayerProfile::new());
        obs::probe::install(profile.clone());
        let mut net = conv_stack(12);
        let plan = ForwardPlan::with_backend(&net, 2, Backend::scalar());
        assert!(plan.has_probe(), "global probe resolves at build");
        // predict_planned's staleness check rebuilds on generation change.
        let x = Tensor::zeros(&[1, 64]);
        let _ = net.predict_planned(&x);
        obs::probe::clear();
        let _ = net.predict_planned(&x);
        let after_clear = profile.layer(0).map(|(calls, _, _)| calls);
        let _ = net.predict_planned(&x);
        assert_eq!(
            profile.layer(0).map(|(calls, _, _)| calls),
            after_clear,
            "cleared probe must stop receiving layer reports"
        );
    }

    #[test]
    fn empty_network_is_identity() {
        let net = Network::new();
        let mut net2 = Network::new();
        let mut plan = ForwardPlan::new(&net, 4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(plan.run(net2.layers_mut(), &x), x.data());
    }
}
