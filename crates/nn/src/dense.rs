//! Fully connected layer.

use rand::Rng;
use tensor::Tensor;

use crate::init::glorot_uniform;
use crate::layer::Layer;
use crate::spec::LayerSpec;

/// A dense (fully connected) layer: `y = x·Wᵀ + b`.
///
/// Weights are stored `(out_dim, in_dim)` so the forward pass is a
/// `matmul_bt` with both operands traversed along contiguous rows, and the
/// backward input-gradient is a plain `matmul` — neither needs a transpose
/// copy.
pub struct Dense {
    weights: Tensor, // (out, in)
    bias: Tensor,    // (out)
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// New dense layer with Glorot-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        Dense {
            weights: glorot_uniform(&[out_dim, in_dim], in_dim, out_dim, rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_w: Tensor::zeros(&[out_dim, in_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: None,
            in_dim,
            out_dim,
        }
    }

    /// Construct from explicit parameters (deserialisation, tests).
    ///
    /// # Panics
    /// Panics unless `weights` is `(out, in)` and `bias` is `(out)`.
    pub fn from_params(weights: Tensor, bias: Tensor) -> Self {
        assert_eq!(weights.rank(), 2, "weights must be rank 2");
        let (out_dim, in_dim) = (weights.dims()[0], weights.dims()[1]);
        assert_eq!(bias.dims(), &[out_dim], "bias must be (out_dim)");
        Dense {
            grad_w: Tensor::zeros(&[out_dim, in_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: None,
            in_dim,
            out_dim,
            weights,
            bias,
        }
    }

    /// Immutable view of the weight matrix `(out, in)`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Immutable view of the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable weight access (used by the SubFlow masker and pruning).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.rank(), 2, "dense input must be a batch");
        debug_assert_eq!(input.dims()[1], self.in_dim, "dense input width mismatch");
        let mut out = input.matmul_bt(&self.weights); // (n, out)
        out.add_row_broadcast(&self.bias);
        self.cached_input = Some(input.clone());
        out
    }

    fn forward_into(
        &mut self,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        _scratch: &mut [f32],
        backend: tensor::backend::Backend,
    ) {
        debug_assert_eq!(input.len(), batch * self.in_dim);
        debug_assert_eq!(out.len(), batch * self.out_dim);
        // On the scalar backend, bit-identical to the allocating path (same
        // dot and bias addition per output), but on the cache-resident
        // schedule with the bias fused — two things the layer-local API
        // can't do, writing straight into the plan buffer. The SIMD backend
        // swaps in FMA microkernels (tolerance documented in
        // `tensor::backend`).
        backend.matmul_bt_bias_into(
            input,
            self.weights.data(),
            Some(self.bias.data()),
            out,
            batch,
            self.in_dim,
            self.out_dim,
        );
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic-in-lib, reason = "Layer contract: backward requires a prior forward; a missing cache is a trainer bug, not user input")
            .expect("backward called before forward");
        debug_assert_eq!(grad_out.dims()[0], input.dims()[0]);
        debug_assert_eq!(grad_out.dims()[1], self.out_dim);
        // dW = dYᵀ·X  (out × in), accumulated.
        let dw = grad_out.matmul_at(input);
        self.grad_w.add_assign(&dw);
        // db = column sums of dY.
        let db = grad_out.sum_rows();
        self.grad_b.add_assign(&db);
        // dX = dY·W  (n × in).
        grad_out.matmul(&self.weights)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weights, &mut self.grad_w),
            (&mut self.bias, &mut self.grad_b),
        ]
    }

    fn visit_params_and_grads(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn flops_per_sample(&self) -> u64 {
        // out·in multiplies + out·in adds + out bias adds.
        (2 * self.in_dim * self.out_dim + self.out_dim) as u64
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng_from_seed;

    fn finite_diff_check(
        layer: &mut Dense,
        input: &Tensor,
        param_idx: usize,
        elem: usize,
    ) -> (f32, f32) {
        // Analytic gradient of L = sum(y) wrt one parameter element, compared
        // against central finite differences.
        let n_out = {
            let out = layer.forward(input, true);
            out.len()
        };
        let grad_out = Tensor::ones(&[input.dims()[0], layer.out_dim()]);
        layer.zero_grads();
        let _ = layer.forward(input, true);
        let _ = layer.backward(&grad_out);
        let analytic = {
            let pg = layer.params_and_grads();
            pg[param_idx].1.data()[elem]
        };
        let eps = 1e-3;
        let eval = |layer: &mut Dense, delta: f32, elem: usize, idx: usize| -> f32 {
            {
                let mut pg = layer.params_and_grads();
                pg[idx].0.data_mut()[elem] += delta;
            }
            let out = layer.forward(input, true);
            let s = out.sum();
            {
                let mut pg = layer.params_and_grads();
                pg[idx].0.data_mut()[elem] -= delta;
            }
            s
        };
        let plus = eval(layer, eps, elem, param_idx);
        let minus = eval(layer, -eps, elem, param_idx);
        let numeric = (plus - minus) / (2.0 * eps);
        let _ = n_out;
        (analytic, numeric)
    }

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_slice(&[0.0, 10.0, 100.0]);
        let mut d = Dense::from_params(w, b);
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 13.0, 105.0]);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = rng_from_seed(11);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        for elem in [0, 5, 11] {
            let (a, n) = finite_diff_check(&mut d, &x, 0, elem);
            assert!((a - n).abs() < 1e-2, "weight grad {a} vs numeric {n}");
        }
    }

    #[test]
    fn bias_gradient_matches_finite_difference() {
        let mut rng = rng_from_seed(12);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        for elem in 0..3 {
            let (a, n) = finite_diff_check(&mut d, &x, 1, elem);
            assert!((a - n).abs() < 1e-2, "bias grad {a} vs numeric {n}");
        }
    }

    #[test]
    fn input_gradient_is_dy_times_w() {
        let mut rng = rng_from_seed(13);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let _ = d.forward(&x, true);
        let dy = Tensor::rand_uniform(&[4, 2], -1.0, 1.0, &mut rng);
        let dx = d.backward(&dy);
        let expect = dy.matmul(d.weights());
        assert!(dx.allclose(&expect, 1e-5));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = rng_from_seed(14);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&dy);
        let g1 = d.params_and_grads()[0].1.clone();
        let _ = d.forward(&x, true);
        let _ = d.backward(&dy);
        let g2 = d.params_and_grads()[0].1.clone();
        assert!(g2.allclose(&g1.scale(2.0), 1e-6), "grads must accumulate");
        d.zero_grads();
        assert_eq!(d.params_and_grads()[0].1.sum(), 0.0);
    }

    #[test]
    fn flops_and_spec() {
        let mut rng = rng_from_seed(15);
        let d = Dense::new(784, 512, &mut rng);
        assert_eq!(d.flops_per_sample(), (2 * 784 * 512 + 512) as u64);
        assert_eq!(
            d.spec(),
            LayerSpec::Dense {
                in_dim: 784,
                out_dim: 512
            }
        );
        assert_eq!(d.param_count(), 784 * 512 + 512);
        assert_eq!(d.in_dim(), 784);
        assert_eq!(d.out_dim(), 512);
        assert_eq!(d.name(), "dense");
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = rng_from_seed(16);
        let mut d = Dense::new(2, 2, &mut rng);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
    }
}
