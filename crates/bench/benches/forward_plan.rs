//! Allocating vs. planned forward pass, across batch sizes and model
//! shapes — the tentpole measurement for the `nn::ForwardPlan` executor.
//!
//! Three executors per (model, batch) point:
//!
//! * `alloc`   — legacy `Network::predict` (fresh tensor per layer per call);
//! * `planned` — `Network::predict_planned` (cached plan, output tensor
//!   still allocated);
//! * `plan_run` — bare `ForwardPlan::run` (zero steady-state allocations),
//!   measured once per available compute backend (`plan_run/scalar`, and
//!   `plan_run/simd` on AVX2+FMA hosts) so the kernel-set win is visible
//!   separately from the executor win.
//!
//! Throughput is reported in samples/second, so the ≥ 1.5× batched-inference
//! acceptance bar can be read straight off the `elem/s` column. The
//! `forward_perf` bin emits the same comparison as `BENCH_forward.json` for
//! cross-PR tracking.

use bench::{dense_mlp, FORWARD_BATCHES as BATCHES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use models::branchynet::{BranchyNet, BranchyNetConfig};
use models::lenet::build_lenet;
use nn::{ForwardPlan, Network};
use tensor::backend::Backend;
use tensor::random::rng_from_seed;
use tensor::Tensor;

/// The backends to sweep: scalar always, SIMD when the CPU supports it.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::scalar()];
    if let Some(simd) = Backend::simd() {
        v.push(simd);
    }
    v
}

fn batch(n: usize, seed: u64) -> Tensor {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng)
}

fn bench_network(c: &mut Criterion, name: &str, mut net: Network) {
    let mut g = c.benchmark_group(format!("forward_plan/{name}"));
    g.sample_size(15);
    for n in BATCHES {
        let x = batch(n, n as u64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("alloc", n), &n, |b, _| {
            b.iter(|| net.predict(&x));
        });
        g.bench_with_input(BenchmarkId::new("planned", n), &n, |b, _| {
            b.iter(|| net.predict_planned(&x));
        });
        for be in backends() {
            let mut plan = ForwardPlan::with_backend(&net, n, be);
            let id = BenchmarkId::new(format!("plan_run/{}", be.name()), n);
            g.bench_with_input(id, &n, |b, _| {
                b.iter(|| plan.run(net.layers_mut(), &x).iter().sum::<f32>());
            });
        }
    }
    g.finish();
}

fn bench_lenet_plan(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    bench_network(c, "lenet", build_lenet(&mut rng));
}

fn bench_dense_plan(c: &mut Criterion) {
    bench_network(c, "dense_mlp", dense_mlp(2));
}

fn bench_branchynet_plan(c: &mut Criterion) {
    // Batched early-exit execution: trunk once, branch on the batch, tail on
    // the compacted hard rows — all through cached plans.
    let mut rng = rng_from_seed(3);
    let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    bn.set_threshold(1.0); // mixed exits on random inputs
    let mut g = c.benchmark_group("forward_plan/branchynet_infer");
    g.sample_size(15);
    for n in BATCHES {
        let x = batch(n, 100 + n as u64);
        g.throughput(Throughput::Elements(n as u64));
        for be in backends() {
            // `infer` resolves its cached plans' backend globally — steer it
            // with the process-wide override for the duration of the point.
            tensor::backend::set_override(be.kind());
            let id = BenchmarkId::new(format!("batched/{}", be.name()), n);
            g.bench_with_input(id, &n, |b, _| {
                b.iter(|| bn.infer(&x));
            });
        }
        tensor::backend::clear_override();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lenet_plan,
    bench_dense_plan,
    bench_branchynet_plan
);
criterion_main!(benches);
