//! Criterion benches of per-image inference for every model in the paper —
//! the *host-machine* analogue of Table II's latency column. Absolute times
//! are this machine's, not the edge devices'; `edgesim` maps architectures
//! to device latencies analytically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::autoencoder::{AutoencoderConfig, ConvertingAutoencoder};
use models::branchynet::{BranchyNet, BranchyNetConfig};
use models::lenet::build_lenet;
use models::lightweight::extract_lightweight;
use models::subflow::SubFlow;
use tensor::random::rng_from_seed;
use tensor::Tensor;

fn single_image(seed: u64) -> Tensor {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[1, 784], 0.0, 1.0, &mut rng)
}

fn batch(n: usize, seed: u64) -> Tensor {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng)
}

fn bench_lenet(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut net = build_lenet(&mut rng);
    let x1 = single_image(1);
    let x64 = batch(64, 2);
    let mut g = c.benchmark_group("lenet_forward");
    g.sample_size(30);
    g.bench_function("per_image", |b| b.iter(|| net.predict(&x1)));
    g.bench_function("batch64", |b| b.iter(|| net.predict(&x64)));
    g.finish();
}

fn bench_branchynet(c: &mut Criterion) {
    let mut rng = rng_from_seed(3);
    let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    let x64 = batch(64, 4);
    let mut g = c.benchmark_group("branchynet");
    g.sample_size(20);
    for (label, thr) in [("all_early", f32::INFINITY), ("none_early", 0.0)] {
        bn.set_threshold(thr);
        g.bench_with_input(BenchmarkId::new("infer_batch64", label), &thr, |b, _| {
            b.iter(|| bn.infer(&x64));
        });
    }
    g.finish();
}

fn bench_autoencoder(c: &mut Criterion) {
    let mut g = c.benchmark_group("converting_autoencoder_forward");
    g.sample_size(20);
    for (name, cfg) in [
        ("mnist", AutoencoderConfig::mnist()),
        ("fmnist", AutoencoderConfig::fmnist()),
        ("kmnist", AutoencoderConfig::kmnist()),
    ] {
        let mut rng = rng_from_seed(5);
        let mut ae = ConvertingAutoencoder::new(cfg, &mut rng);
        let x = batch(64, 6);
        g.bench_function(name, |b| b.iter(|| ae.forward(&x)));
    }
    g.finish();
}

fn bench_cbnet_path(c: &mut Criterion) {
    // The deployed CBNet path: AE forward + lightweight classifier.
    let mut rng = rng_from_seed(7);
    let bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    let mut lw = extract_lightweight(&bn);
    let mut ae = ConvertingAutoencoder::new(AutoencoderConfig::mnist(), &mut rng);
    let x64 = batch(64, 8);
    let mut g = c.benchmark_group("cbnet_path");
    g.sample_size(20);
    g.bench_function("ae_plus_lightweight_batch64", |b| {
        b.iter(|| {
            let converted = ae.forward(&x64);
            lw.predict(&converted).argmax_rows()
        })
    });
    g.finish();
}

fn bench_subflow(c: &mut Criterion) {
    let mut rng = rng_from_seed(9);
    let net = build_lenet(&mut rng);
    let sf = SubFlow::new(net);
    let x16 = batch(16, 10);
    let mut g = c.benchmark_group("subflow");
    g.sample_size(15);
    for &u in &[0.5f32, 1.0] {
        g.bench_with_input(
            BenchmarkId::new("predict_batch16", format!("u{u}")),
            &u,
            |b, &u| {
                b.iter(|| sf.predict(u, &x16));
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lenet,
    bench_branchynet,
    bench_autoencoder,
    bench_cbnet_path,
    bench_subflow
);
criterion_main!(benches);
