//! Criterion benches of dataset generation and the edge-device simulators —
//! the non-NN substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::{generate, Family, GeneratorConfig};
use edgesim::pipeline::{simulate, ServingConfig};
use edgesim::{Device, DeviceModel};
use models::lenet::build_lenet;
use tensor::random::rng_from_seed;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_generation");
    g.sample_size(10);
    for family in Family::ALL {
        g.throughput(Throughput::Elements(256));
        g.bench_with_input(
            BenchmarkId::new("generate256", family.name()),
            &family,
            |b, &f| {
                b.iter(|| generate(&GeneratorConfig::new(f, 256, 7)));
            },
        );
    }
    g.finish();
}

fn bench_device_pricing(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let net = build_lenet(&mut rng);
    let specs = net.specs();
    let mut g = c.benchmark_group("device_pricing");
    g.sample_size(60);
    for dev in Device::ALL {
        let model = DeviceModel::preset(dev);
        g.bench_with_input(
            BenchmarkId::new("price_lenet", dev.name()),
            &model,
            |b, m| {
                b.iter(|| m.price_specs(&specs).total_ms);
            },
        );
    }
    g.finish();
}

fn bench_serving_sim(c: &mut Criterion) {
    let device = DeviceModel::raspberry_pi4();
    let mut g = c.benchmark_group("serving_sim");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("fifo_10k_requests", |b| {
        b.iter(|| {
            simulate(
                &device,
                &ServingConfig {
                    arrival_rate_hz: 150.0,
                    profile: edgesim::CostProfile::bimodal(2.0, 13.0, 0.8),
                    requests: 10_000,
                    seed: 3,
                },
            )
        })
    });
    g.finish();
}

fn bench_stratified_subset(c: &mut Criterion) {
    let data = generate(&GeneratorConfig::new(Family::FmnistLike, 2000, 9));
    let mut g = c.benchmark_group("dataset_ops");
    g.sample_size(30);
    g.bench_function("stratified_ratio_half_of_2000", |b| {
        let mut rng = rng_from_seed(4);
        b.iter(|| data.stratified_ratio(0.5, &mut rng));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_device_pricing,
    bench_serving_sim,
    bench_stratified_subset
);
criterion_main!(benches);
