//! Criterion benches of the training-side hot paths: one optimizer batch for
//! each model the pipeline trains.

use criterion::{criterion_group, criterion_main, Criterion};
use models::autoencoder::{AutoencoderConfig, ConvertingAutoencoder};
use models::branchynet::{BranchyNet, BranchyNetConfig};
use models::lenet::build_lenet;
use nn::loss::SoftmaxCrossEntropy;
use nn::{Adam, Optimizer};
use tensor::random::rng_from_seed;
use tensor::Tensor;

fn batch(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = rng_from_seed(seed);
    let x = Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % 10).collect();
    (x, labels)
}

fn bench_lenet_step(c: &mut Criterion) {
    let mut rng = rng_from_seed(0);
    let mut net = build_lenet(&mut rng);
    let mut opt = Adam::with_defaults(1e-3);
    let (x, labels) = batch(64, 1);
    let mut g = c.benchmark_group("train_step");
    g.sample_size(15);
    g.bench_function("lenet_batch64", |b| {
        b.iter(|| {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let (_, grad) = SoftmaxCrossEntropy.loss(&logits, &labels);
            net.backward(&grad);
            let mut pg = net.params_and_grads();
            opt.step(&mut pg);
        })
    });
    g.finish();
}

fn bench_branchynet_step(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    let mut opt = Adam::with_defaults(1e-3);
    let (x, labels) = batch(64, 3);
    let mut g = c.benchmark_group("train_step");
    g.sample_size(15);
    g.bench_function("branchynet_joint_batch64", |b| {
        b.iter(|| {
            let _ = bn.train_batch(&x, &labels);
            let mut pg = bn.params_and_grads();
            opt.step(&mut pg);
        })
    });
    g.finish();
}

fn bench_autoencoder_step(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let mut ae = ConvertingAutoencoder::new(AutoencoderConfig::mnist(), &mut rng);
    let mut opt = Adam::with_defaults(1e-3);
    let (x, _) = batch(64, 5);
    let (t, _) = batch(64, 6);
    let mut g = c.benchmark_group("train_step");
    g.sample_size(10);
    g.bench_function("autoencoder_mnist_batch64", |b| {
        b.iter(|| {
            let _ = ae.train_batch(&x, &t);
            let mut pg = ae.params_and_grads();
            opt.step(&mut pg);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lenet_step,
    bench_branchynet_step,
    bench_autoencoder_step
);
criterion_main!(benches);
