//! Criterion benches of the discrete-event engine's hot path: event-heap
//! throughput as the server count (and so the completion-event fan-out)
//! grows, plus the scheduler disciplines and the fleet layered on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgesim::fleet::{simulate_fleet, FleetSim, NetworkLink, Tier};
use edgesim::pipeline::ServingConfig;
use edgesim::reference::simulate_fleet_reference;
use edgesim::{
    simulate_engine, AdmissionPolicy, ArrivalProcess, CostProfile, Device, DeviceModel,
    EngineConfig, FleetConfig, OffloadPolicyKind, RecordMode, SchedulerKind,
};

const REQUESTS: usize = 10_000;

fn engine_config(servers: usize, scheduler: SchedulerKind) -> EngineConfig {
    EngineConfig {
        workload: ServingConfig {
            // Scale the arrival rate with the pool so per-server pressure
            // (and so queue depth, the heap's load) stays comparable.
            arrival_rate_hz: 180.0 * servers as f64,
            profile: CostProfile::bimodal(2.0, 13.0, 0.9),
            requests: REQUESTS,
            seed: 7,
        },
        servers,
        scheduler,
        admission: AdmissionPolicy::Bounded { max_queue: 256 },
    }
}

fn bench_engine_vs_servers(c: &mut Criterion) {
    let device = DeviceModel::raspberry_pi4();
    let mut g = c.benchmark_group("engine_heap");
    g.sample_size(20);
    for servers in [1usize, 2, 4, 8, 16] {
        let cfg = engine_config(servers, SchedulerKind::Fifo);
        g.throughput(Throughput::Elements(REQUESTS as u64));
        g.bench_with_input(BenchmarkId::new("fifo", servers), &cfg, |b, cfg| {
            b.iter(|| simulate_engine(&device, cfg));
        });
    }
    g.finish();
}

fn bench_engine_schedulers(c: &mut Criterion) {
    let device = DeviceModel::raspberry_pi4();
    let mut g = c.benchmark_group("engine_schedulers");
    g.sample_size(20);
    for (label, scheduler) in [
        ("fifo", SchedulerKind::Fifo),
        ("ses", SchedulerKind::ShortestService),
        (
            "batch8",
            SchedulerKind::Batch {
                max_batch: 8,
                max_wait_ms: 4.0,
            },
        ),
    ] {
        let cfg = engine_config(4, scheduler);
        g.throughput(Throughput::Elements(REQUESTS as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| simulate_engine(&device, cfg));
        });
    }
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let cfg = FleetConfig {
        tiers: vec![
            Tier {
                name: "edge".into(),
                device: DeviceModel::raspberry_pi4(),
                servers: 4,
                profile: CostProfile::bimodal(2.0, 13.0, 0.8),
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Bounded { max_queue: 128 },
                link: None,
            },
            Tier {
                name: "cloud".into(),
                device: DeviceModel::preset(Device::GciCpu),
                servers: 2,
                profile: CostProfile::bimodal(0.2, 1.3, 0.8),
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Bounded { max_queue: 256 },
                link: Some(NetworkLink::wifi(3136)),
            },
        ],
        arrivals: ArrivalProcess::mmpp(400.0, 2800.0, 300.0, 100.0),
        requests: REQUESTS,
        seed: 13,
        slo_ms: 40.0,
    };
    let mut g = c.benchmark_group("fleet");
    g.sample_size(20);
    for policy in [
        OffloadPolicyKind::AlwaysLocal,
        OffloadPolicyKind::ExitConfidence,
        OffloadPolicyKind::SloSojourn { slo_ms: 40.0 },
    ] {
        g.throughput(Throughput::Elements(REQUESTS as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &cfg,
            |b, cfg| {
                b.iter(|| simulate_fleet(cfg, policy));
            },
        );
    }
    g.finish();
}

/// Steady-state index engine (one `FleetSim`, `reset()` + `run()` per
/// iteration, Lean records — the zero-allocation loop the guard pins)
/// against the preserved pre-arena `BinaryHeap` loop on the same
/// three-tier configuration. The two runs are bit-identical by the
/// conformance suite, so the gap is pure engine overhead.
fn bench_fleet_steady_state(c: &mut Criterion) {
    let cfg = FleetConfig {
        tiers: vec![
            Tier {
                name: "edge".into(),
                device: DeviceModel::raspberry_pi4(),
                servers: 2,
                profile: CostProfile::bimodal(4.0, 14.0, 0.7),
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Bounded { max_queue: 64 },
                link: None,
            },
            Tier {
                name: "cloud-cpu".into(),
                device: DeviceModel::gci_cpu(),
                servers: 4,
                profile: CostProfile::bimodal(1.0, 3.5, 0.7),
                scheduler: SchedulerKind::Batch {
                    max_batch: 8,
                    max_wait_ms: 1.5,
                },
                admission: AdmissionPolicy::Unbounded,
                link: Some(NetworkLink::wifi(16 * 1024)),
            },
            Tier {
                name: "cloud-gpu".into(),
                device: DeviceModel::gci_gpu(),
                servers: 1,
                profile: CostProfile::constant(0.8),
                scheduler: SchedulerKind::ShortestService,
                admission: AdmissionPolicy::Unbounded,
                link: Some(NetworkLink::wan(16 * 1024)),
            },
        ],
        arrivals: ArrivalProcess::poisson(500.0),
        requests: REQUESTS,
        seed: 29,
        slo_ms: 30.0,
    };
    let policy = OffloadPolicyKind::SloSojourn { slo_ms: 18.0 };

    let mut g = c.benchmark_group("fleet_steady_state");
    g.sample_size(20);
    g.throughput(Throughput::Elements(REQUESTS as u64));

    let mut index_policy = policy.build();
    let mut sim = FleetSim::new(&cfg, RecordMode::Lean).expect("valid fleet config");
    g.bench_function("index_lean", |b| {
        b.iter(|| {
            sim.reset();
            sim.run(index_policy.as_mut(), None)
                .expect("routes in range");
        });
    });

    let mut ref_policy = policy.build();
    g.bench_function("reference", |b| {
        b.iter(|| simulate_fleet_reference(&cfg, ref_policy.as_mut()).expect("valid config"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine_vs_servers,
    bench_engine_schedulers,
    bench_fleet,
    bench_fleet_steady_state
);
criterion_main!(benches);
