//! Criterion benches of the tensor substrate's hot kernels — the loops that
//! carry essentially all of the workspace's FLOPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tensor::conv::{im2col, Conv2dGeom};
use tensor::matmul::{matmul_bt_into, matmul_into};
use tensor::ops::softmax_slice;
use tensor::random::rng_from_seed;
use tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 784, 128), (64, 1152, 96)] {
        let mut rng = rng_from_seed(1);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        g.throughput(Throughput::Elements((2 * m * k * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("ikj", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| {
                bch.iter(|| matmul_into(a.data(), b.data(), &mut out, m, k, n));
            },
        );
        let bt = Tensor::rand_uniform(&[n, k], -1.0, 1.0, &mut rng);
        g.bench_with_input(
            BenchmarkId::new("bt", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| {
                bch.iter(|| matmul_bt_into(a.data(), bt.data(), &mut out, m, k, n));
            },
        );
    }
    g.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut g = c.benchmark_group("im2col");
    g.sample_size(30);
    // The two geometries the LeNet stack actually runs.
    let geoms = [
        (
            "conv1-28x28-s2",
            Conv2dGeom {
                in_channels: 1,
                in_h: 28,
                in_w: 28,
                k_h: 5,
                k_w: 5,
                stride: 2,
                pad: 0,
            },
        ),
        (
            "conv2-12x12",
            Conv2dGeom {
                in_channels: 8,
                in_h: 12,
                in_w: 12,
                k_h: 5,
                k_w: 5,
                stride: 1,
                pad: 0,
            },
        ),
    ];
    for (name, geom) in geoms {
        let mut rng = rng_from_seed(2);
        let img = Tensor::rand_uniform(
            &[geom.in_channels * geom.in_h * geom.in_w],
            0.0,
            1.0,
            &mut rng,
        );
        let mut patches = vec![0.0f32; geom.patch_rows() * geom.patch_cols()];
        g.bench_function(name, |bch| {
            bch.iter(|| im2col(img.data(), &geom, &mut patches));
        });
    }
    g.finish();
}

fn bench_softmax_entropy(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax");
    g.sample_size(50);
    for &n in &[10usize, 784] {
        let mut rng = rng_from_seed(3);
        let x = Tensor::rand_uniform(&[n], -5.0, 5.0, &mut rng);
        let mut out = vec![0.0f32; n];
        g.bench_with_input(BenchmarkId::new("softmax", n), &n, |bch, _| {
            bch.iter(|| {
                softmax_slice(x.data(), &mut out);
                tensor::ops::entropy(&out)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_im2col, bench_softmax_entropy);
criterion_main!(benches);
