//! Regenerate Fig. 5: CBNet vs LeNet / BranchyNet / AdaDeep / SubFlow —
//! latency and accuracy, MNIST on Raspberry Pi 4.

use bench::{banner, scale_from_env};
use cbnet::experiments::fig5;

fn main() {
    banner(
        "Fig. 5",
        "five-model latency/accuracy comparison (MNIST, RPi 4)",
    );
    let scale = scale_from_env();
    let results = fig5::run(&scale);
    print!("{}", fig5::render(&results));
    match fig5::shape_holds(&results) {
        Ok(()) => println!("\nshape check: PASS (CBNet fastest of all five models)"),
        Err(e) => println!("\nshape check: FAIL — {e}"),
    }
}
