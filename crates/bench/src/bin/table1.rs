//! Regenerate Table I: converting-autoencoder architectures per dataset.

fn main() {
    println!("=== Table I — converting autoencoder architecture per dataset ===\n");
    print!("{}", cbnet::experiments::table1::render());
    println!("\n(Output row activation as published; the deployed default is sigmoid — see DESIGN.md §4.)");
}
