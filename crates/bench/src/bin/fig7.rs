//! Regenerate Fig. 7: scalability analysis — FMNIST on all three devices.

use bench::{banner, scale_from_env};
use cbnet::experiments::scalability;
use datasets::Family;

fn main() {
    banner(
        "Fig. 7",
        "scalability: total inference time & accuracy vs dataset ratio (FMNIST)",
    );
    let curves = scalability::run(Family::FmnistLike, &scale_from_env());
    for c in &curves {
        println!("{}", scalability::render(c));
        println!(
            "shape check ({}): {}\n",
            c.device,
            if scalability::gap_widens(c) {
                "PASS (BranchyNet−CBNet gap widens with ratio)"
            } else {
                "FAIL"
            }
        );
    }
}
