//! Regenerate Fig. 6: scalability analysis — MNIST on all three devices.

use bench::{banner, scale_from_env};
use cbnet::experiments::scalability;
use datasets::Family;

fn main() {
    banner(
        "Fig. 6",
        "scalability: total inference time & accuracy vs dataset ratio (MNIST)",
    );
    let curves = scalability::run(Family::MnistLike, &scale_from_env());
    for c in &curves {
        println!("{}", scalability::render(c));
        println!(
            "shape check ({}): {}\n",
            c.device,
            if scalability::gap_widens(c) {
                "PASS (BranchyNet−CBNet gap widens with ratio)"
            } else {
                "FAIL"
            }
        );
    }
}
