//! Extension experiment: the paper's §V generalized pipeline — converting
//! autoencoder over a non-early-exit residual backbone, with
//! confidence-based (BranchyNet-free) easy/hard labelling.

use bench::{banner, scale_from_env};
use cbnet::generalized::{train_generalized, GeneralizedConfig};
use datasets::{generate_pair, Family};
use edgesim::Device;
use models::resnet::build_resnet_mini;
use runtime::{evaluate, ClassifierModel, Scenario};

fn main() {
    banner(
        "§V generalized",
        "CBNet over a residual backbone, no BranchyNet anywhere",
    );
    let scale = scale_from_env();

    println!(
        "dataset  device          backbone(ms)  CBNet-G(ms)  speedup  backbone acc%  CBNet-G acc%"
    );
    println!("--------------------------------------------------------------------------------------------");
    for family in Family::ALL {
        let split = generate_pair(family, scale.n_train, scale.n_test, scale.seed);
        let cfg = GeneralizedConfig {
            train: scale.train_config(),
            seed: scale.seed ^ 0x6E4E,
            ..GeneralizedConfig::new(family)
        };
        let mut arts = train_generalized(&split.train, build_resnet_mini, &cfg);
        for dev in Device::ALL {
            let scenario = Scenario::new(family, dev);
            let mut backbone = ClassifierModel::new("ResNet-mini", &mut arts.backbone);
            let b = evaluate(&mut backbone, &split.test, &scenario);
            let c = evaluate(&mut arts.cbnet, &split.test, &scenario);
            println!(
                "{:<7}  {:<14} {:>12.3}  {:>11.3}  {:>6.2}×  {:>12.2}  {:>11.2}",
                family.name(),
                dev.name(),
                b.latency_ms,
                c.latency_ms,
                c.speedup_vs(&b),
                b.accuracy_pct,
                c.accuracy_pct
            );
        }
    }
    println!("\nThe §III-B truncation recipe + confidence labelling generalize the paper's");
    println!("pipeline beyond early-exit networks (its §V goal).");
}
