//! Extension experiment: request-serving simulation — how the easy/hard mix
//! turns into queueing delay on a Raspberry Pi 4.

use edgesim::pipeline::{simulate, ServingConfig};
use edgesim::DeviceModel;

fn main() {
    println!("=== Serving simulation (extension) — BranchyNet vs CBNet under load, RPi 4 ===\n");
    let device = DeviceModel::raspberry_pi4();
    println!("arrival  model       easy%   mean(ms)  p95(ms)   p99(ms)   util    energy(J)");
    println!("---------------------------------------------------------------------------");
    for &rate in &[50.0, 150.0, 300.0] {
        // BranchyNet: bimodal service (easy path vs full path), MNIST-like
        // (95% easy) and KMNIST-like (63% easy) mixes.
        for (label, easy_frac, easy_ms, hard_ms) in [
            ("BranchyNet/MNIST", 0.95, 2.1, 13.4),
            ("BranchyNet/KMNIST", 0.63, 2.1, 13.4),
            ("CBNet (any)", 1.0, 2.4, 2.4),
        ] {
            let cfg = ServingConfig {
                arrival_rate_hz: rate,
                easy_service_ms: easy_ms,
                hard_service_ms: hard_ms,
                easy_fraction: easy_frac,
                requests: 20_000,
                seed: 11,
            };
            let r = simulate(&device, &cfg);
            println!(
                "{rate:>6.0}  {label:<18} {:>4.0}%  {:>8.2}  {:>8.2}  {:>8.2}  {:>5.2}  {:>9.2}",
                easy_frac * 100.0,
                r.mean_sojourn_ms,
                r.p95_ms,
                r.p99_ms,
                r.utilization,
                r.energy_j
            );
        }
    }
    println!("\nCBNet's input-independent service time keeps tails flat where early-exit");
    println!("variance builds queues — the serving-level corollary of the paper's Fig. 3.");
}
