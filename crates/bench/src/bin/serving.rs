//! Serving sweep (extension): model × dataset family × device × offered
//! load × serving policy, with every service-time distribution **measured**
//! from the trained networks — `InferenceModel::sample_costs()` prices each
//! evaluation input by the execution path it actually took, and the
//! resulting `CostProfile::Empirical` histogram drives the discrete-event
//! engine. No hand-picked latency constants anywhere.
//!
//! For each family the registry trains the shared models once; each model's
//! per-sample latencies are measured on the evaluation set per device, and
//! pushed through the engine at arrival rates anchored to the LeNet
//! baseline's capacity on that device (offered loads 0.5 / 0.8 / 0.95 of
//! `servers × 1000 / mean_service_ms`). The policy dimension sweeps the
//! engine's extension points: single-server FIFO (the legacy-equivalent
//! baseline), multi-server FIFO and shortest-expected-service behind a
//! bounded queue, and batch-accumulation.
//!
//! Configurations whose offered load is ≥ 1 per server are flagged **up
//! front** on stderr: without admission control they have no steady state,
//! so their sojourn numbers are runaway transients, not equilibria.
//!
//! Output: an aligned table on stdout plus the same rows as CSV (between
//! `--- CSV ---` markers) with policy, servers, admission, drop-rate and
//! per-server-utilization columns.
//!
//! Env knobs: `CBNET_SCALE=small` shrinks training;
//! `CBNET_SERVING_SMOKE=1` shrinks the sweep matrix itself (one family, one
//! load, fewer requests) for CI smoke runs. With `CBNET_OBS=metrics|trace`
//! every cell runs observed: metrics accumulate across the matrix into
//! `METRICS.json` (path override: `CBNET_METRICS_JSON`) and, under `trace`,
//! the last cell's span ring is exported to `TRACE.jsonl`
//! (`CBNET_TRACE_JSONL`).

use bench::{banner, scale_from_env};
use cbnet::registry::{ModelKind, ModelRegistry};
use cbnet::table::TextTable;
use datasets::Family;
use edgesim::engine::{
    simulate_engine, try_simulate_engine_observed, AdmissionPolicy, EngineConfig, SchedulerKind,
};
use edgesim::pipeline::ServingConfig;
use edgesim::{CostProfile, Device, DeviceModel, SimObserver};
use obs::{MetricsRegistry, ObsMode};

/// Offered loads swept per device, as fractions of the LeNet baseline's
/// aggregate service capacity across all servers of the cell.
const LOADS: [f64; 3] = [0.5, 0.8, 0.95];
/// Requests simulated per cell (full run).
const REQUESTS: usize = 20_000;

/// The serving-policy dimension: scheduler × server count × admission.
fn policies(mean_service_ms: f64) -> Vec<(SchedulerKind, usize, AdmissionPolicy)> {
    vec![
        // The legacy-equivalent baseline (bit-identical to pipeline::simulate).
        (SchedulerKind::Fifo, 1, AdmissionPolicy::Unbounded),
        (
            SchedulerKind::Fifo,
            4,
            AdmissionPolicy::Bounded { max_queue: 256 },
        ),
        (
            SchedulerKind::ShortestService,
            4,
            AdmissionPolicy::Bounded { max_queue: 256 },
        ),
        (
            SchedulerKind::Batch {
                max_batch: 8,
                // Hold partial batches at most two mean service times: long
                // enough to fuse under load, short enough not to dominate
                // light-load latency.
                max_wait_ms: 2.0 * mean_service_ms,
            },
            4,
            AdmissionPolicy::Bounded { max_queue: 256 },
        ),
    ]
}

struct Cell {
    family: Family,
    device: Device,
    kind: ModelKind,
    /// The swept fraction of the LeNet baseline's capacity (the traffic
    /// anchor — per-model offered load is derived from the engine config).
    anchor_load: f64,
    engine: EngineConfig,
}

fn main() {
    banner(
        "Serving sweep",
        "model × family × device × load × policy, from measured per-sample costs",
    );
    let scale = scale_from_env();
    let smoke = std::env::var("CBNET_SERVING_SMOKE").as_deref() == Ok("1");
    let families: &[Family] = if smoke {
        &[Family::MnistLike]
    } else {
        &Family::ALL
    };
    let loads: &[f64] = if smoke { &[0.8] } else { &LOADS };
    let requests = if smoke { 4_000 } else { REQUESTS };

    // Phase 1: train + measure, building every cell of the matrix.
    let mut cells: Vec<Cell> = Vec::new();
    for &family in families {
        let mut reg = ModelRegistry::train(family, &scale);
        let test_images = reg.split().test.images.clone();

        // Measure each comparator's per-sample latencies per device: the
        // empirical profile carries the real early-exit variance (for
        // BranchyNet, each sample is priced by the exit it actually took).
        let priced: Vec<(ModelKind, Vec<CostProfile>)> = ModelKind::CORE
            .iter()
            .map(|&kind| {
                let profiles = Device::ALL
                    .iter()
                    .map(|&d| reg.empirical_profile(kind, &test_images, &DeviceModel::preset(d)))
                    .collect();
                (kind, profiles)
            })
            .collect();

        for (di, &device) in Device::ALL.iter().enumerate() {
            // Arrival rates anchored to the baseline's capacity on this
            // device and scaled by the cell's server count: same per-server
            // pressure for every policy, different serving behaviour.
            let lenet_mean = priced
                .iter()
                .find(|(k, _)| *k == ModelKind::LeNet)
                .map(|(_, p)| p[di].mean_ms())
                .expect("LeNet is in CORE");
            for &load in loads {
                for (kind, profiles) in &priced {
                    let profile = &profiles[di];
                    for (scheduler, servers, admission) in policies(profile.mean_ms()) {
                        let rate_hz = load * servers as f64 * 1000.0 / lenet_mean;
                        cells.push(Cell {
                            family,
                            device,
                            kind: *kind,
                            anchor_load: load,
                            engine: EngineConfig {
                                workload: ServingConfig {
                                    arrival_rate_hz: rate_hz,
                                    profile: profile.clone(),
                                    requests,
                                    seed: 11,
                                },
                                servers,
                                scheduler,
                                admission,
                            },
                        });
                    }
                }
            }
        }
    }

    // Phase 2: validate the whole matrix up front. A malformed profile is an
    // error report and a clean exit (not a panic mid-sweep), and a cell whose
    // offered load is ≥ 1 per server has no steady state unless admission
    // control sheds, so its sojourns would be runaway transients.
    let errors: Vec<String> = cells
        .iter()
        .filter_map(|cell| {
            cell.engine.workload.profile.try_valid().err().map(|e| {
                format!(
                    "invalid profile ({} / {} / {}): {e}",
                    cell.family.name(),
                    cell.device.name(),
                    cell.kind.name(),
                )
            })
        })
        .collect();
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("ERROR: {e}");
        }
        eprintln!(
            "{} invalid serving configuration(s); aborting sweep",
            errors.len()
        );
        std::process::exit(2);
    }
    for cell in &cells {
        if !cell.engine.is_stable() && cell.engine.admission == AdmissionPolicy::Unbounded {
            eprintln!(
                "WARNING: unstable cell ({} / {} / {} / {} x{}): \
                 offered load {:.2} per server with unbounded admission — \
                 sojourns are transients, not steady-state",
                cell.family.name(),
                cell.device.name(),
                cell.kind.name(),
                cell.engine.scheduler.label(),
                cell.engine.servers,
                cell.engine.per_server_load(),
            );
        }
    }

    // Phase 3: simulate.
    let mut table = TextTable::new(&[
        "Family",
        "Device",
        "Model",
        "policy",
        "servers",
        "admission",
        "easy%",
        "E[S] (ms)",
        "arrivals/s",
        "sweep",
        "load/server",
        "mean (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "drop_rate",
        "util",
        "util/server",
        "energy (J)",
    ]);
    let mode = ObsMode::resolve();
    let mut metrics_acc = MetricsRegistry::new();
    let mut last_trace: Option<String> = None;
    for cell in &cells {
        let device_model = DeviceModel::preset(cell.device);
        let r = if mode.metrics_enabled() {
            let mut observer = SimObserver::for_engine();
            let r = try_simulate_engine_observed(&device_model, &cell.engine, &mut observer)
                .expect("every cell was validated up front");
            metrics_acc.merge_from(observer.registry());
            if mode.trace_enabled() {
                last_trace = Some(observer.trace_jsonl());
            }
            r
        } else {
            simulate_engine(&device_model, &cell.engine)
        };
        let profile = &cell.engine.workload.profile;
        table.row(&[
            cell.family.name().to_string(),
            cell.device.name().to_string(),
            cell.kind.name().to_string(),
            cell.engine.scheduler.label(),
            cell.engine.servers.to_string(),
            cell.engine.admission.label(),
            format!("{:.0}", profile.easy_fraction() * 100.0),
            format!("{:.3}", profile.mean_ms()),
            format!("{:.0}", cell.engine.workload.arrival_rate_hz),
            format!("{:.2}", cell.anchor_load),
            format!("{:.2}", cell.engine.per_server_load()),
            format!("{:.2}", r.serving.mean_sojourn_ms),
            format!("{:.2}", r.serving.p95_ms),
            format!("{:.2}", r.serving.p99_ms),
            format!("{:.4}", r.drop_rate()),
            format!("{:.2}", r.serving.utilization),
            r.per_server_utilization
                .iter()
                .map(|u| format!("{u:.2}"))
                .collect::<Vec<_>>()
                .join(";"),
            format!("{:.2}", r.serving.energy_j),
        ]);
    }

    print!("{}", table.render());
    println!("\nCBNet's input-independent service time keeps tails flat where early-exit");
    println!("variance builds queues; shortest-expected-service and batching recover some");
    println!("of that tail, bounded admission trades it for drops — all measured from the");
    println!("trained networks' per-sample costs, none of it hand-picked.");
    println!("\n--- CSV ---");
    print!("{}", table.to_csv());
    println!("--- END CSV ---");

    if mode.metrics_enabled() {
        let path =
            std::env::var("CBNET_METRICS_JSON").unwrap_or_else(|_| "METRICS.json".to_string());
        std::fs::write(&path, metrics_acc.write_json(mode))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} (mode {}, every cell merged)", mode.name());
    }
    if let Some(trace) = last_trace {
        let path = std::env::var("CBNET_TRACE_JSONL").unwrap_or_else(|_| "TRACE.jsonl".to_string());
        std::fs::write(&path, trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} (last cell's span ring)");
    }
}
