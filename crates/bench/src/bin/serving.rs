//! Serving scenario matrix (extension): model × dataset family × device ×
//! offered load, with every service-time distribution taken from
//! `InferenceModel::cost_profile()` of the *trained* networks — no
//! hand-picked latency constants anywhere.
//!
//! For each family the registry trains the shared models once; each model is
//! then run on the evaluation set to measure its operating point (the
//! BranchyNet exit rate), priced on each device, and pushed through the
//! discrete-event FIFO simulator at arrival rates anchored to the LeNet
//! baseline's capacity on that device (offered loads 0.5 / 0.8 / 0.95 of
//! `1000 / mean_service_ms`). CBNet's input-independent profile keeps its
//! tails flat where BranchyNet's early-exit variance builds queues — the
//! serving-level corollary of the paper's Fig. 3.
//!
//! Output: an aligned table on stdout plus the same rows as CSV (between
//! `--- CSV ---` markers) so the matrix can feed downstream tooling.

use bench::{banner, scale_from_env};
use cbnet::registry::{ModelKind, ModelRegistry};
use cbnet::table::TextTable;
use datasets::Family;
use edgesim::pipeline::{simulate, ServingConfig};
use edgesim::{CostProfile, Device, DeviceModel};

/// Offered loads swept per device, as fractions of the LeNet baseline's
/// service capacity.
const LOADS: [f64; 3] = [0.5, 0.8, 0.95];
/// Requests simulated per cell.
const REQUESTS: usize = 20_000;

fn main() {
    banner(
        "Serving matrix",
        "model × family × device × load, priced from trained cost profiles",
    );
    let scale = scale_from_env();

    let mut table = TextTable::new(&[
        "Family",
        "Device",
        "Model",
        "easy%",
        "E[S] (ms)",
        "arrivals/s",
        "load",
        "mean (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "util",
        "energy (J)",
    ]);

    for family in Family::ALL {
        let mut reg = ModelRegistry::train(family, &scale);
        let test = reg.split().test.clone();

        // Collect per-device profiles; only the early-exit model needs a
        // prediction pass first (its mixture weight is the exit rate
        // measured on the evaluation set — constant-profile models are
        // priced from their layer specs alone).
        let mut priced: Vec<(ModelKind, Vec<CostProfile>)> = Vec::new();
        for kind in ModelKind::CORE {
            let mut model = reg.model(kind);
            if kind == ModelKind::BranchyNet {
                let _ = model.predict_batch(&test.images);
            }
            let profiles: Vec<CostProfile> = Device::ALL
                .iter()
                .map(|&d| model.cost_profile(&DeviceModel::preset(d)))
                .collect();
            priced.push((kind, profiles));
        }

        for (di, &device) in Device::ALL.iter().enumerate() {
            let device_model = DeviceModel::preset(device);
            // Arrival rates anchored to the baseline's capacity on this
            // device, identical for every model: same traffic, different
            // serving behaviour.
            let lenet_mean = priced
                .iter()
                .find(|(k, _)| *k == ModelKind::LeNet)
                .map(|(_, p)| p[di].mean_ms())
                .expect("LeNet is in CORE");
            for &load in &LOADS {
                let rate_hz = load * 1000.0 / lenet_mean;
                for (kind, profiles) in &priced {
                    let profile = profiles[di];
                    let r = simulate(
                        &device_model,
                        &ServingConfig {
                            arrival_rate_hz: rate_hz,
                            profile,
                            requests: REQUESTS,
                            seed: 11,
                        },
                    );
                    table.row(&[
                        family.name().to_string(),
                        device.name().to_string(),
                        kind.name().to_string(),
                        format!("{:.0}", profile.easy_fraction() * 100.0),
                        format!("{:.3}", profile.mean_ms()),
                        format!("{rate_hz:.0}"),
                        format!("{:.2}", profile.offered_load(rate_hz)),
                        format!("{:.2}", r.mean_sojourn_ms),
                        format!("{:.2}", r.p95_ms),
                        format!("{:.2}", r.p99_ms),
                        format!("{:.2}", r.utilization),
                        format!("{:.2}", r.energy_j),
                    ]);
                }
            }
        }
    }

    print!("{}", table.render());
    println!("\nCBNet's input-independent service time keeps tails flat where early-exit");
    println!("variance builds queues — the serving-level corollary of the paper's Fig. 3.");
    println!("\n--- CSV ---");
    print!("{}", table.to_csv());
    println!("--- END CSV ---");
}
