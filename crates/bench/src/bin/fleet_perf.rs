//! Fleet-engine perf harness: events/sec of the flat-index event loop
//! (arena requests, index heap, Lean records) across servers × tiers ×
//! offload policy, plus a live headline comparison against the preserved
//! pre-arena `BinaryHeap` loop on the million-request 3-tier configuration.
//! Emits a machine-readable `BENCH_fleet.json` so the events/sec trajectory
//! is tracked across PRs.
//!
//! ```text
//! cargo run --release -p bench --bin fleet_perf
//! ```
//!
//! The sweep reuses one [`FleetSim`] per point through `reset()` — exactly
//! the steady-state loop the allocation guard pins — so the numbers measure
//! the event loop, not workload generation or arena construction. The
//! reference baseline ([`edgesim::reference`]) is measured on the same
//! machine in the same process, so the committed speedup factor is a live
//! ratio, never a stale recorded number.
//!
//! Environment:
//! * `BENCH_FLEET_JSON` — output path (default `BENCH_fleet.json`; set to
//!   `-` to skip writing).
//! * `CBNET_FLEET_PERF_SMOKE=1` — smaller sweep workloads and fewer
//!   repetitions (CI smoke; the million-request headline still runs —
//!   timings are real, just noisier).
//! * `BENCH_FLEET_ENFORCE` — assert the acceptance bars: the index engine
//!   ≥ 5× the reference loop's events/sec on the million-request headline
//!   config, and ≥ 10⁶ events/sec single-core.

use std::io::Write as _;
use std::time::Instant;

use edgesim::fleet::{FleetSim, NetworkLink, Tier};
use edgesim::reference::simulate_fleet_reference;
use edgesim::{
    AdmissionPolicy, ArrivalProcess, CostProfile, DeviceModel, FleetConfig, OffloadPolicyKind,
    RecordMode, SchedulerKind,
};

/// One measured (topology, server scale, policy) point of the sweep.
struct Row {
    topology: &'static str,
    tiers: usize,
    servers: usize,
    policy: &'static str,
    requests: usize,
    events: u64,
    events_per_sec: f64,
}

/// The three tier templates; `scale` multiplies every tier's server pool.
fn tiers(count: usize, scale: usize) -> Vec<Tier> {
    let all = [
        Tier {
            name: "edge".into(),
            device: DeviceModel::raspberry_pi4(),
            servers: 2 * scale,
            profile: CostProfile::bimodal(4.0, 14.0, 0.7),
            scheduler: SchedulerKind::Fifo,
            admission: AdmissionPolicy::Bounded { max_queue: 64 },
            link: None,
        },
        Tier {
            name: "cloud-cpu".into(),
            device: DeviceModel::gci_cpu(),
            servers: 4 * scale,
            profile: CostProfile::bimodal(1.0, 3.5, 0.7),
            scheduler: SchedulerKind::Batch {
                max_batch: 8,
                max_wait_ms: 1.5,
            },
            admission: AdmissionPolicy::Unbounded,
            link: Some(NetworkLink::wifi(16 * 1024)),
        },
        Tier {
            name: "cloud-gpu".into(),
            device: DeviceModel::gci_gpu(),
            servers: scale,
            profile: CostProfile::constant(0.8),
            scheduler: SchedulerKind::ShortestService,
            admission: AdmissionPolicy::Unbounded,
            link: Some(NetworkLink::wan(16 * 1024)),
        },
    ];
    all.into_iter().take(count).collect()
}

fn fleet_config(tier_count: usize, scale: usize, requests: usize) -> FleetConfig {
    FleetConfig {
        tiers: tiers(tier_count, scale),
        // Scale offered load with capacity so queues stay busy but bounded.
        arrivals: ArrivalProcess::poisson(500.0 * scale as f64),
        requests,
        seed: 29,
        slo_ms: 30.0,
    }
}

/// Best-of (minimum) wall-clock nanoseconds of `reps` runs of `f`, after
/// one warm-up. Timing noise on a shared runner is strictly additive, so
/// the minimum is the most stable estimate of the true cost — and using it
/// on both sides keeps the enforced speedup ratio fair.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Events/sec of the index engine on `cfg` under `policy`, steady-state
/// (one sim, reset+run per repetition, Lean records).
fn measure_index(cfg: &FleetConfig, policy: OffloadPolicyKind, reps: usize) -> (u64, f64) {
    let mut p = policy.build();
    let mut sim = FleetSim::new(cfg, RecordMode::Lean).expect("valid fleet config");
    let ns = best_ns(reps, || {
        sim.reset();
        sim.run(p.as_mut(), None).expect("policy routes in range");
    });
    let events = sim.events_processed();
    (events, events as f64 / (ns / 1e9))
}

/// Events/sec of the preserved pre-arena loop on the same configuration.
/// It has no event counter — the index engine's count for the identical
/// (bit-identical, conformance-pinned) run is the event total.
fn measure_reference(
    cfg: &FleetConfig,
    policy: OffloadPolicyKind,
    events: u64,
    reps: usize,
) -> f64 {
    let mut p = policy.build();
    let ns = best_ns(reps, || {
        std::hint::black_box(simulate_fleet_reference(cfg, p.as_mut()).expect("valid config"));
    });
    events as f64 / (ns / 1e9)
}

fn main() {
    let smoke = std::env::var("CBNET_FLEET_PERF_SMOKE").is_ok();
    // Smoke shrinks the sweep and the repetition counts, but the headline
    // stays on the full million-request config: the enforced ≥ 5x bar is
    // defined on that workload (the speedup is genuinely smaller at 10⁵
    // requests, where the reference loop's reallocations amortize less),
    // and one reference run is only ~a second of wall clock.
    let (reps, sweep_requests) = if smoke { (3, 20_000) } else { (9, 200_000) };
    let headline_requests = 1_000_000;
    println!("=== fleet_perf — flat-index event loop, events/sec ({reps} reps/point) ===\n");

    let policies = [
        OffloadPolicyKind::AlwaysLocal,
        OffloadPolicyKind::ExitConfidence,
        OffloadPolicyKind::SloSojourn { slo_ms: 18.0 },
    ];

    let mut rows = Vec::new();
    for (topology, tier_count) in [("1-tier", 1usize), ("2-tier", 2), ("3-tier", 3)] {
        for scale in [1usize, 4] {
            let cfg = fleet_config(tier_count, scale, sweep_requests);
            let servers: usize = cfg.tiers.iter().map(|t| t.servers).sum();
            for policy in policies {
                // Remote-only policies are meaningless on a 1-tier fleet.
                if tier_count == 1 && !matches!(policy, OffloadPolicyKind::AlwaysLocal) {
                    continue;
                }
                let (events, eps) = measure_index(&cfg, policy, reps);
                rows.push(Row {
                    topology,
                    tiers: tier_count,
                    servers,
                    policy: match policy {
                        OffloadPolicyKind::AlwaysLocal => "local",
                        OffloadPolicyKind::ExitConfidence => "exit_conf",
                        OffloadPolicyKind::SloSojourn { .. } => "slo",
                    },
                    requests: sweep_requests,
                    events,
                    events_per_sec: eps,
                });
            }
        }
    }

    println!(
        "{:<8} {:>7} {:>10} {:>9} {:>11} {:>14}",
        "topology", "servers", "policy", "requests", "events", "events/sec"
    );
    for r in &rows {
        println!(
            "{:<8} {:>7} {:>10} {:>9} {:>11} {:>14.0}",
            r.topology, r.servers, r.policy, r.requests, r.events, r.events_per_sec
        );
    }

    // Headline: the million-request 3-tier SLO config, index engine vs the
    // preserved pre-arena loop, measured live back to back.
    println!("\n=== headline: {headline_requests} requests, 3-tier, slo policy ===");
    let headline_cfg = fleet_config(3, 1, headline_requests);
    let headline_policy = OffloadPolicyKind::SloSojourn { slo_ms: 18.0 };
    let (events, index_eps) = measure_index(&headline_cfg, headline_policy, reps);
    let ref_reps = reps.div_ceil(3); // the reference is ~an order slower
    let reference_eps = measure_reference(&headline_cfg, headline_policy, events, ref_reps);
    let speedup = index_eps / reference_eps;
    println!("  index engine:    {index_eps:>14.0} events/sec ({events} events)");
    println!("  reference loop:  {reference_eps:>14.0} events/sec");
    println!("  speedup:         {speedup:>13.2}x");

    let path = std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| "BENCH_fleet.json".into());
    if path != "-" {
        // Hand-rolled JSON: the workspace has no serde and the schema is flat.
        let mut json = String::from("{\n  \"sweep\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"topology\": \"{}\", \"tiers\": {}, \"servers\": {}, \
                 \"policy\": \"{}\", \"requests\": {}, \"events\": {}, \
                 \"events_per_sec\": {:.0}}}{}\n",
                r.topology,
                r.tiers,
                r.servers,
                r.policy,
                r.requests,
                r.events,
                r.events_per_sec,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"headline\": {{\"topology\": \"3-tier\", \"policy\": \"slo\", \
             \"requests\": {headline_requests}, \"events\": {events}, \
             \"index_events_per_sec\": {index_eps:.0}, \
             \"reference_events_per_sec\": {reference_eps:.0}, \
             \"speedup\": {speedup:.2}}}\n}}\n"
        ));
        let mut f = std::fs::File::create(&path).expect("create BENCH_fleet.json");
        f.write_all(json.as_bytes())
            .expect("write BENCH_fleet.json");
        println!("\nwrote {path}");
    }

    // Acceptance bars — fail loudly in CI if the rewrite's win regresses.
    if std::env::var("BENCH_FLEET_ENFORCE").is_ok() {
        assert!(
            speedup >= 5.0,
            "index engine is only {speedup:.2}x the reference loop (< 5x)"
        );
        assert!(
            index_eps >= 1.0e6,
            "headline throughput {index_eps:.0} events/sec (< 1e6)"
        );
    }
}
