//! Regenerate §IV-D statistics: early-exit rates per dataset and the
//! autoencoder's share of CBNet latency.

use bench::{banner, scale_from_env};
use cbnet::experiments::exit_rates;

fn main() {
    banner("§IV-D", "early-exit rates and AE latency share");
    let rows = exit_rates::run(&scale_from_env());
    print!("{}", exit_rates::render(&rows));
    println!(
        "\nshape check: {}",
        if exit_rates::shape_holds(&rows) {
            "PASS (exit rate falls as hard fraction rises)"
        } else {
            "FAIL"
        }
    );
}
