//! Tiered edge–cloud fleet sweep (extension): topology × offload policy ×
//! arrival process × load, with every tier priced by **measured** per-sample
//! costs — `ModelRegistry::tier_profiles` runs the same trained comparator
//! on each tier's device (Raspberry Pi edge, GCI CPU cloud, GCI GPU cloud)
//! and each tier prices the shared difficulty quantile through its own
//! empirical histogram. Network links carry the model's real input payload
//! (`InferenceModel::offload_payload_bytes`).
//!
//! The sweep stresses three topologies (edge-only; edge + CPU cloud over
//! WiFi; edge + GPU cloud over WAN) under three offload policies
//! (always-local, exit-confidence hard-path shipping, SLO-predicted
//! sojourn) and two arrival processes (Poisson and a bursty MMPP of equal
//! mean rate), at offered loads anchored to the edge tier's capacity.
//!
//! Every configuration is validated **up front** via `FleetConfig::
//! try_valid` — a bad cell reports an error and aborts the sweep before any
//! simulation runs, instead of panicking mid-matrix — and unstable
//! always-local cells are flagged on stderr.
//!
//! Output: an aligned table on stdout plus the same rows as CSV (between
//! `--- CSV ---` markers) with per-tier utilization, offload-rate and
//! SLO-violation-rate columns.
//!
//! Env knobs: `CBNET_SCALE=small` shrinks training; `CBNET_FLEET_SMOKE=1`
//! shrinks the sweep matrix (one family, one load, fewer requests) for CI
//! smoke runs. With `CBNET_OBS=metrics|trace` every cell runs observed:
//! per-tier metrics accumulate across the whole matrix into `METRICS.json`
//! (path override: `CBNET_METRICS_JSON`) and, under `trace`, the **last**
//! cell's span ring is exported to `TRACE.jsonl` (`CBNET_TRACE_JSONL`) —
//! one full per-request trace being more useful than an interleaved soup
//! of every cell.

use bench::{banner, scale_from_env};
use cbnet::registry::{ModelKind, ModelRegistry};
use cbnet::table::TextTable;
use datasets::Family;
use edgesim::fleet::{simulate_fleet, try_simulate_fleet_observed, NetworkLink, Tier};
use edgesim::{
    AdmissionPolicy, ArrivalProcess, CostProfile, Device, DeviceModel, FleetConfig,
    OffloadPolicyKind, SchedulerKind, SimObserver,
};
use obs::{MetricsRegistry, ObsMode};

/// Offered loads swept, as fractions of the edge tier's aggregate capacity
/// (`servers × 1000 / E[S_edge]`); 1.2 overloads the edge on purpose —
/// that is where offloading earns its keep.
const LOADS: [f64; 3] = [0.6, 0.9, 1.2];
/// Requests simulated per cell (full run).
const REQUESTS: usize = 20_000;
/// Models priced through the fleet: the early-exit comparator (offloadable
/// hard path) and CBNet (constant cost — exit-confidence never offloads).
const MODELS: [ModelKind; 2] = [ModelKind::BranchyNet, ModelKind::Cbnet];

/// One fleet topology: a name and the tiers it builds from per-device
/// profiles. `profiles` is indexed by [`Device::ALL`] order.
struct Topology {
    name: &'static str,
    build: fn(&[CostProfile], u64) -> Vec<Tier>,
}

fn tier(
    name: &str,
    device: Device,
    servers: usize,
    profile: &CostProfile,
    max_queue: usize,
    link: Option<NetworkLink>,
) -> Tier {
    Tier {
        name: name.into(),
        device: DeviceModel::preset(device),
        servers,
        profile: profile.clone(),
        scheduler: SchedulerKind::Fifo,
        admission: AdmissionPolicy::Bounded { max_queue },
        link,
    }
}

/// `profiles[i]` is the model's measured profile on `Device::ALL[i]`
/// (RPi, GCI CPU, GCI GPU).
const TOPOLOGIES: [Topology; 3] = [
    Topology {
        name: "edge4",
        build: |p, _payload| vec![tier("edge", Device::RaspberryPi4, 4, &p[0], 128, None)],
    },
    Topology {
        name: "edge4+cpu2",
        build: |p, payload| {
            vec![
                tier("edge", Device::RaspberryPi4, 4, &p[0], 128, None),
                tier(
                    "cpu",
                    Device::GciCpu,
                    2,
                    &p[1],
                    256,
                    Some(NetworkLink::wifi(payload)),
                ),
            ]
        },
    },
    Topology {
        name: "edge4+gpu1",
        build: |p, payload| {
            vec![
                tier("edge", Device::RaspberryPi4, 4, &p[0], 128, None),
                tier(
                    "gpu",
                    Device::GciGpu,
                    1,
                    &p[2],
                    256,
                    Some(NetworkLink::wan(payload)),
                ),
            ]
        },
    },
];

struct Cell {
    family: Family,
    kind: ModelKind,
    topology: &'static str,
    policy: OffloadPolicyKind,
    anchor_load: f64,
    fleet: FleetConfig,
}

fn main() {
    banner(
        "Fleet sweep",
        "topology × offload policy × arrival process × load, tiered edge–cloud",
    );
    let scale = scale_from_env();
    let smoke = std::env::var("CBNET_FLEET_SMOKE").as_deref() == Ok("1");
    let families: &[Family] = if smoke {
        &[Family::MnistLike]
    } else {
        &Family::ALL
    };
    let loads: &[f64] = if smoke { &[0.9] } else { &LOADS };
    let requests = if smoke { 3_000 } else { REQUESTS };

    // Phase 1: train once per family, measure per-device profiles, and lay
    // out every cell of the matrix.
    let mut cells: Vec<Cell> = Vec::new();
    for &family in families {
        let mut reg = ModelRegistry::train(family, &scale);
        let test_images = reg.split().test.images.clone();
        for kind in MODELS {
            let profiles = reg.tier_profiles(kind, &test_images, &Device::ALL);
            let payload = reg.model(kind).offload_payload_bytes(&test_images);
            let edge_mean_ms = profiles[0].mean_ms();
            // The SLO: three times the edge tier's worst-case solo service —
            // generous at light load, binding once queues build.
            let slo_ms = 3.0 * profiles[0].max_ms();
            for topology in &TOPOLOGIES {
                let tiers = (topology.build)(&profiles, payload);
                let edge_capacity_hz = tiers[0].servers as f64 * 1000.0 / edge_mean_ms;
                for &load in loads {
                    let rate_hz = load * edge_capacity_hz;
                    // Equal mean rate, very different shape: the MMPP spends
                    // 3/4 of its time at 0.4× and bursts at 2.8×.
                    let arrival_processes = [
                        ArrivalProcess::poisson(rate_hz),
                        ArrivalProcess::mmpp(0.4 * rate_hz, 2.8 * rate_hz, 300.0, 100.0),
                    ];
                    for arrivals in arrival_processes {
                        for policy in [
                            OffloadPolicyKind::AlwaysLocal,
                            OffloadPolicyKind::ExitConfidence,
                            OffloadPolicyKind::SloSojourn { slo_ms },
                        ] {
                            cells.push(Cell {
                                family,
                                kind,
                                topology: topology.name,
                                policy,
                                anchor_load: load,
                                fleet: FleetConfig {
                                    tiers: tiers.clone(),
                                    arrivals: arrivals.clone(),
                                    requests,
                                    seed: 13,
                                    slo_ms,
                                },
                            });
                        }
                    }
                }
            }
        }
    }

    // Phase 2: validate the whole matrix up front. A malformed cell is an
    // error report and a clean exit, not a panic mid-sweep.
    let errors: Vec<String> = cells
        .iter()
        .filter_map(|cell| {
            cell.fleet.try_valid().err().map(|e| {
                format!(
                    "invalid cell ({} / {} / {} / {}): {e}",
                    cell.family.name(),
                    cell.kind.name(),
                    cell.topology,
                    cell.policy.label(),
                )
            })
        })
        .collect();
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("ERROR: {e}");
        }
        eprintln!(
            "{} invalid fleet configuration(s); aborting sweep",
            errors.len()
        );
        std::process::exit(2);
    }
    for cell in &cells {
        if cell.policy == OffloadPolicyKind::AlwaysLocal
            && cell.fleet.local_load_per_server() >= 1.0
        {
            eprintln!(
                "WARNING: always-local cell ({} / {} / {} / load {:.2}) overloads the edge \
                 (ρ = {:.2} per server) — bounded admission sheds, SLO violations follow",
                cell.family.name(),
                cell.kind.name(),
                cell.topology,
                cell.anchor_load,
                cell.fleet.local_load_per_server(),
            );
        }
    }

    // Phase 3: simulate.
    let mut table = TextTable::new(&[
        "Family",
        "Model",
        "topology",
        "policy",
        "arrivals",
        "sweep",
        "rate/s",
        "slo (ms)",
        "offload_rate",
        "drop_rate",
        "slo_viol_rate",
        "mean (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "tier_util",
        "energy (J)",
    ]);
    let mode = ObsMode::resolve();
    let mut metrics_acc = MetricsRegistry::new();
    let mut last_trace: Option<String> = None;
    for cell in &cells {
        let r = if mode.metrics_enabled() {
            let mut observer = SimObserver::for_fleet(&cell.fleet, &cell.policy.label());
            let r = try_simulate_fleet_observed(&cell.fleet, cell.policy, &mut observer)
                .expect("every cell was validated up front");
            metrics_acc.merge_from(observer.registry());
            if mode.trace_enabled() {
                last_trace = Some(observer.trace_jsonl());
            }
            r
        } else {
            simulate_fleet(&cell.fleet, cell.policy)
        };
        let tier_util = r
            .tiers
            .iter()
            .map(|t| format!("{}:{:.2}", t.name, t.serving.utilization))
            .collect::<Vec<_>>()
            .join(";");
        table.row(&[
            cell.family.name().to_string(),
            cell.kind.name().to_string(),
            cell.topology.to_string(),
            cell.policy.label(),
            cell.fleet.arrivals.label(),
            format!("{:.2}", cell.anchor_load),
            format!("{:.0}", cell.fleet.arrivals.mean_rate_hz()),
            format!("{:.1}", cell.fleet.slo_ms),
            format!("{:.4}", r.offload_rate()),
            format!("{:.4}", r.drop_rate()),
            format!("{:.4}", r.slo_violation_rate()),
            format!("{:.2}", r.end_to_end.mean_sojourn_ms),
            format!("{:.2}", r.end_to_end.p95_ms),
            format!("{:.2}", r.end_to_end.p99_ms),
            tier_util,
            format!("{:.2}", r.end_to_end.energy_j),
        ]);
    }

    print!("{}", table.render());
    println!("\nOffloading turns the edge overload cliff into a network bill: exit-confidence");
    println!("ships exactly the hard-path fraction (and nothing at all for CBNet's constant");
    println!("cost), while SLO-sojourn routing only pays the link when the predicted local");
    println!("sojourn breaks the budget — compare slo_viol_rate down a topology column.");
    println!("\n--- CSV ---");
    print!("{}", table.to_csv());
    println!("--- END CSV ---");

    if mode.metrics_enabled() {
        let path =
            std::env::var("CBNET_METRICS_JSON").unwrap_or_else(|_| "METRICS.json".to_string());
        std::fs::write(&path, metrics_acc.write_json(mode))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} (mode {}, every cell merged)", mode.name());
    }
    if let Some(trace) = last_trace {
        let path = std::env::var("CBNET_TRACE_JSONL").unwrap_or_else(|_| "TRACE.jsonl".to_string());
        std::fs::write(&path, trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} (last cell's span ring)");
    }
}
