//! DESIGN.md §4 ablations: output activation, L1 coefficient, target policy,
//! entropy-threshold sweep, joint-loss weights.

use bench::{banner, scale_from_env};
use cbnet::experiments::ablations;
use cbnet::registry::ModelRegistry;
use datasets::Family;

fn main() {
    banner("Ablations", "design-choice ablations (MNIST-like)");
    let scale = scale_from_env();
    let mut reg = ModelRegistry::train(Family::MnistLike, &scale);
    let tf = reg.trained_mut();

    let rows = ablations::output_activation(tf, &scale);
    println!(
        "{}",
        ablations::render("Ablation 1: AE output activation", &rows)
    );

    let rows = ablations::l1_lambda(tf, &scale);
    println!(
        "{}",
        ablations::render("Ablation 2: L1 activity coefficient", &rows)
    );

    let rows = ablations::target_policy(tf, &scale);
    println!(
        "{}",
        ablations::render("Ablation 3: target-selection policy", &rows)
    );

    println!("Ablation 4: entropy-threshold sweep");
    let pts = ablations::threshold_sweep(tf, &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0]);
    println!("{}", ablations::render_thresholds(&pts));

    let rows = ablations::joint_weights(tf, &scale);
    println!(
        "{}",
        ablations::render("Ablation 5: BranchyNet joint-loss weights", &rows)
    );
}
