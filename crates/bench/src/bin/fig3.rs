//! Regenerate Fig. 3: BranchyNet speedup over LeNet vs hard-image fraction
//! (Raspberry Pi 4).

use bench::{banner, scale_from_env};
use cbnet::experiments::fig3;

fn main() {
    banner(
        "Fig. 3",
        "BranchyNet speedup over LeNet vs hard fraction (RPi 4)",
    );
    let points = fig3::run(&scale_from_env());
    print!("{}", fig3::render(&points));
    println!(
        "\nshape check: {}",
        if fig3::shape_holds(&points) {
            "PASS (speedup falls as hard fraction rises)"
        } else {
            "FAIL"
        }
    );
}
