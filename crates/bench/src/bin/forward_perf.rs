//! Forward-pass perf harness: allocating vs. planned execution, per model ×
//! batch size × compute backend, with a machine-readable
//! `BENCH_forward.json` summary so the perf trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release -p bench --bin forward_perf
//! ```
//!
//! The planned path is measured once per available backend (`scalar` always;
//! `simd` when the CPU has AVX2+FMA — on other hosts the sweep degrades to
//! scalar-only, which is exactly the auto-mode fallback behaviour). The
//! allocating reference always runs scalar kernels, so it is measured once
//! per (model, batch) and shared across backend rows.
//!
//! Environment:
//! * `BENCH_FORWARD_JSON` — output path (default `BENCH_forward.json`;
//!   set to `-` to skip writing).
//! * `CBNET_FORWARD_PERF_SMOKE=1` — a handful of repetitions per point
//!   (CI smoke; timings are still real, just noisier).
//! * `BENCH_FORWARD_ENFORCE` — assert the acceptance bars: planned ≥ 1.5×
//!   allocating at batch ≥ 32 (scalar rows), and SIMD ≥ 2× scalar
//!   ns/sample on the dense MLP at batch ≥ 32 (when SIMD is available).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bench::{dense_mlp, FORWARD_BATCHES as BATCHES};
use models::branchynet::{BranchyNet, BranchyNetConfig};
use models::lenet::build_lenet;
use nn::{ForwardPlan, Network};
use obs::LayerProfile;
use tensor::backend::Backend;
use tensor::random::rng_from_seed;
use tensor::Tensor;

/// One measured (model, batch, backend) point.
struct Row {
    model: &'static str,
    batch: usize,
    backend: &'static str,
    alloc_ns_per_sample: f64,
    planned_ns_per_sample: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.alloc_ns_per_sample / self.planned_ns_per_sample
    }
}

/// Planned-vs-planned ratio against the scalar row of the same
/// (model, batch): how much the backend itself buys, executor held fixed.
fn vs_scalar(rows: &[Row], r: &Row) -> f64 {
    rows.iter()
        .find(|s| s.backend == "scalar" && s.model == r.model && s.batch == r.batch)
        .map_or(1.0, |s| s.planned_ns_per_sample / r.planned_ns_per_sample)
}

/// The backends to sweep: scalar always, SIMD when the CPU supports it.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::scalar()];
    if let Some(simd) = Backend::simd() {
        v.push(simd);
    }
    v
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also builds/grows any cached plan)
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn measure_network(name: &'static str, mut net: Network, reps: usize, rows: &mut Vec<Row>) {
    for n in BATCHES {
        let mut rng = rng_from_seed(n as u64);
        let x = Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng);
        // Allocating reference (always scalar kernels), shared across rows.
        let alloc = median_ns(reps, || {
            std::hint::black_box(net.predict(&x));
        });
        for be in backends() {
            // Steady-state planned path: one explicitly owned plan pinned to
            // the backend, zero allocations per run.
            let mut plan = ForwardPlan::with_backend(&net, n, be);
            let planned = median_ns(reps, || {
                std::hint::black_box(plan.run(net.layers_mut(), &x));
            });
            rows.push(Row {
                model: name,
                batch: n,
                backend: be.name(),
                alloc_ns_per_sample: alloc / n as f64,
                planned_ns_per_sample: planned / n as f64,
            });
        }
    }
}

fn measure_branchynet(reps: usize, rows: &mut Vec<Row>) {
    let mut rng = rng_from_seed(9);
    let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    bn.set_threshold(1.0); // mixed exits on random inputs
    for n in BATCHES {
        let x = Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng);
        // "alloc" reference: stage-by-stage legacy forward over the full
        // batch (trunk + branch + tail on everything — the pre-compaction
        // upper bound).
        let (trunk, branch, tail) = bn.stages();
        let (mut trunk2, mut branch2, mut tail2) =
            (trunk.duplicate(), branch.duplicate(), tail.duplicate());
        let alloc = median_ns(reps, || {
            let h = trunk2.forward(&x, false);
            let _ = std::hint::black_box(branch2.forward(&h, false));
            let _ = std::hint::black_box(tail2.forward(&h, false));
        });
        for be in backends() {
            // `infer` resolves its cached plans' backend globally — steer it
            // with the process-wide override for the duration of the point.
            tensor::backend::set_override(be.kind());
            let planned = median_ns(reps, || {
                std::hint::black_box(bn.infer(&x));
            });
            rows.push(Row {
                model: "BranchyNet",
                batch: n,
                backend: be.name(),
                alloc_ns_per_sample: alloc / n as f64,
                planned_ns_per_sample: planned / n as f64,
            });
        }
        tensor::backend::clear_override();
    }
}

/// Per-layer wall-time breakdown of the planned path via an explicit
/// [`LayerProfile`] probe ([`ForwardPlan::with_probe`] — no global install,
/// so the timing sweep above stays probe-free), plus BranchyNet's per-exit
/// compaction counts via the process-wide probe slot. Runs **after** the
/// headline measurements so the probe's clock reads cannot perturb them.
fn probe_breakdown(reps: usize) {
    println!("\n=== per-layer breakdown (planned path, scalar, probed separately) ===");
    let mut rng = rng_from_seed(1);
    let nets: Vec<(&str, Network)> =
        vec![("LeNet", build_lenet(&mut rng)), ("DenseMLP", dense_mlp(2))];
    for (name, mut net) in nets {
        for n in [8usize, 32] {
            let mut rng = rng_from_seed(n as u64);
            let x = Tensor::rand_uniform(&[n, 784], 0.0, 1.0, &mut rng);
            let profile = Arc::new(LayerProfile::new());
            let mut plan =
                ForwardPlan::with_probe(&net, n, Backend::scalar(), Some(profile.clone()));
            plan.run(net.layers_mut(), &x); // warm-up outside the ledger
            profile.reset();
            for _ in 0..reps {
                std::hint::black_box(plan.run(net.layers_mut(), &x));
            }
            let total: f64 = (0..net.layers().len())
                .filter_map(|i| profile.layer_ns_per_sample(i))
                .sum();
            println!("  {name} batch {n} — {total:.0} ns/sample planned:");
            for (i, layer) in net.layers().iter().enumerate() {
                if let Some(ns) = profile.layer_ns_per_sample(i) {
                    println!(
                        "    layer {i:>2} {:<10} {ns:>10.0} ns/sample  ({:>5.1}%)",
                        layer.name(),
                        100.0 * ns / total
                    );
                }
            }
        }
    }

    // BranchyNet exit compaction: `infer`'s cached plans resolve the
    // process-wide probe slot, so this one goes through install/clear.
    let profile = Arc::new(LayerProfile::new());
    obs::probe::install(profile.clone());
    let mut rng = rng_from_seed(9);
    let mut bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    bn.set_threshold(1.0);
    let x = Tensor::rand_uniform(&[64, 784], 0.0, 1.0, &mut rng);
    for _ in 0..reps.max(2) {
        std::hint::black_box(bn.infer(&x));
    }
    obs::probe::clear();
    println!("  BranchyNet batch 64 — per-exit compaction:");
    for i in 0..obs::probe::MAX_EXITS {
        if let Some((events, exited, offered)) = profile.exit(i) {
            println!(
                "    exit {i}: {exited}/{offered} rows exited early over {events} batches \
                 ({:.1}%)",
                100.0 * exited as f64 / offered as f64
            );
        }
    }
}

fn main() {
    let smoke = std::env::var("CBNET_FORWARD_PERF_SMOKE").is_ok();
    let reps = if smoke { 5 } else { 40 };
    println!("=== forward_perf — allocating vs planned forward ({reps} reps/point) ===\n");

    let mut rows = Vec::new();
    let mut rng = rng_from_seed(1);
    measure_network("LeNet", build_lenet(&mut rng), reps, &mut rows);
    measure_network("DenseMLP", dense_mlp(2), reps, &mut rows);
    measure_branchynet(reps, &mut rows);

    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>16} {:>9} {:>10}",
        "model", "batch", "backend", "alloc ns/sample", "planned ns/sample", "speedup", "vs scalar"
    );
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>8} {:>16.0} {:>16.0} {:>8.2}x {:>9.2}x",
            r.model,
            r.batch,
            r.backend,
            r.alloc_ns_per_sample,
            r.planned_ns_per_sample,
            r.speedup(),
            vs_scalar(&rows, r)
        );
    }

    probe_breakdown(reps);

    let path = std::env::var("BENCH_FORWARD_JSON").unwrap_or_else(|_| "BENCH_forward.json".into());
    if path != "-" {
        // Hand-rolled JSON: the workspace has no serde and the schema is flat.
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"model\": \"{}\", \"batch\": {}, \"backend\": \"{}\", \
                 \"alloc_ns_per_sample\": {:.1}, \"planned_ns_per_sample\": {:.1}, \
                 \"speedup\": {:.3}, \"planned_vs_scalar\": {:.3}}}{}\n",
                r.model,
                r.batch,
                r.backend,
                r.alloc_ns_per_sample,
                r.planned_ns_per_sample,
                r.speedup(),
                vs_scalar(&rows, r),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        let mut f = std::fs::File::create(&path).expect("create BENCH_forward.json");
        f.write_all(json.as_bytes())
            .expect("write BENCH_forward.json");
        println!("\nwrote {path}");
    }

    // Sanity bars mirroring the acceptance criteria — fail loudly in CI if
    // a regression eats either win.
    if std::env::var("BENCH_FORWARD_ENFORCE").is_ok() {
        // Planned executor ≥ 1.5× the allocating path (scalar vs scalar).
        for r in rows
            .iter()
            .filter(|r| r.batch >= 32 && r.model != "BranchyNet" && r.backend == "scalar")
        {
            assert!(
                r.speedup() >= 1.5,
                "{} batch {} fell to {:.2}x (< 1.5x)",
                r.model,
                r.batch,
                r.speedup()
            );
        }
        // SIMD kernels ≥ 2× scalar ns/sample on the batched dense model.
        for r in rows
            .iter()
            .filter(|r| r.batch >= 32 && r.model == "DenseMLP" && r.backend == "simd")
        {
            let ratio = vs_scalar(&rows, r);
            assert!(
                ratio >= 2.0,
                "DenseMLP batch {} simd is only {ratio:.2}x scalar (< 2x)",
                r.batch
            );
        }
    }
}
