//! Regenerate Table II: latency, energy savings and accuracy for
//! LeNet / BranchyNet / CBNet across datasets and devices.

use bench::{banner, scale_from_env};
use cbnet::experiments::table2;

fn main() {
    banner(
        "Table II",
        "latency / energy / accuracy across datasets and devices",
    );
    let scale = scale_from_env();
    let blocks = table2::run(&scale);
    print!("{}", table2::render(&blocks));
    match table2::shape_holds(&blocks) {
        Ok(()) => println!("\nshape check: PASS (CBNet fastest everywhere; latency dataset-independent; savings ≥ BranchyNet)"),
        Err(e) => println!("\nshape check: FAIL — {e}"),
    }
}
