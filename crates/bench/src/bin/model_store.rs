//! Model-store harness: save/load timing for the tensor-store checkpoint
//! format against the legacy `CBR1` envelope, a corrupt-byte fuzz loop over
//! the new format, and a rolling-deploy fleet smoke driven by the versioned
//! [`ModelStore`]. Emits a machine-readable `BENCH_store.json`.
//!
//! ```text
//! cargo run --release -p bench --bin model_store
//! ```
//!
//! Three load paths are timed per comparator, best-of-N wall clock each:
//!
//! * **legacy** — `load_model` on a hand-assembled `CBR1` envelope (the
//!   writer is gone; the byte layout is pinned by the golden-bytes test).
//!   Decodes every float through a per-element `get_f32_le` loop.
//! * **cold** — `load_model` on the new format: one aligned copy of the
//!   blob, header parse, allocating model construction.
//! * **hot** — the serving route: header parsed **once**, then
//!   `import_tensors` refills a preallocated same-architecture slot
//!   straight from the zero-copy tensor views (the path the allocation
//!   guard pins allocation-free).
//!
//! Environment:
//! * `BENCH_STORE_JSON` — output path (default `BENCH_store.json`; `-`
//!   skips writing).
//! * `CBNET_MODEL_STORE_SMOKE=1` — fewer repetitions, smaller fuzz loop and
//!   deploy workload (CI smoke; timings are real, just noisier).
//! * `BENCH_STORE_ENFORCE` — assert the acceptance bar: hot load ≥ 5× the
//!   legacy path on the largest comparator.
//! * `CBNET_OBS=metrics|trace` — run the rolling-deploy smoke observed;
//!   metrics land in `METRICS.json` (`CBNET_METRICS_JSON`) and, under
//!   `trace`, the span ring in `TRACE.jsonl` (`CBNET_TRACE_JSONL`) for
//!   `obs_check` validation — swap spans included.

use std::io::Write as _;
use std::time::Instant;

use cbnet::experiments::ExperimentScale;
use cbnet::pipeline::CbnetModel;
use cbnet::registry::{ModelKind, ModelRegistry, CHECKPOINT_MAGIC};
use cbnet::ModelStore;
use datasets::Family;
use edgesim::fleet::{try_simulate_fleet_with_swaps, NetworkLink, SwapPolicy, Tier, TierSwap};
use edgesim::{
    AdmissionPolicy, ArrivalProcess, CostProfile, DeviceModel, FleetConfig, OffloadPolicyKind,
    SchedulerKind, SimObserver,
};
use models::branchynet::BranchyNet;
use nn::Network;
use obs::{MetricsRegistry, ObsMode};
use rand::Rng;
use tensorstore::{AlignedBytes, SerializeTensors, TensorFile};

/// One timed comparator.
struct Row {
    kind: ModelKind,
    blob_bytes: usize,
    legacy_bytes: usize,
    save_ns: f64,
    load_cold_ns: f64,
    load_hot_ns: f64,
    legacy_load_ns: f64,
}

impl Row {
    fn hot_speedup(&self) -> f64 {
        self.legacy_load_ns / self.load_hot_ns
    }
    fn cold_speedup(&self) -> f64 {
        self.legacy_load_ns / self.load_cold_ns
    }
}

/// Best-of (minimum) wall-clock nanoseconds of `reps` runs of `f`, after
/// one warm-up — noise on a shared runner is additive, so the minimum is
/// the stable estimate, and both sides of every ratio use it.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Assemble the legacy `CBR1` envelope for `kind` from `reg`'s trained
/// models (magic, one-byte kind tag, `u64`-length-prefixed stage blocks —
/// the layout the golden-bytes test pins).
fn legacy_envelope(reg: &ModelRegistry, kind: ModelKind) -> bytes::Bytes {
    use bytes::BufMut;
    let mut buf = bytes::BytesMut::new();
    buf.put_slice(CHECKPOINT_MAGIC);
    let blocks: Vec<bytes::Bytes> = match kind {
        ModelKind::LeNet => {
            buf.put_u8(0);
            vec![reg.trained().lenet.save()]
        }
        ModelKind::BranchyNet => {
            buf.put_u8(1);
            vec![reg.trained().artifacts.branchynet.save()]
        }
        ModelKind::Cbnet => {
            buf.put_u8(4);
            vec![
                reg.trained().artifacts.cbnet.autoencoder.save(),
                reg.trained().artifacts.cbnet.lightweight.save(),
            ]
        }
        other => panic!("no legacy envelope assembled for {other}"),
    };
    for b in &blocks {
        buf.put_u64_le(b.len() as u64);
        buf.put_slice(b);
    }
    buf.freeze()
}

/// A preallocated same-architecture slot for the hot (in-place refill)
/// load path, built once per comparator from the parsed file.
enum Slot {
    Net(Network),
    Branchy(BranchyNet),
    Pipeline(CbnetModel),
}

impl Slot {
    fn from_file(kind: ModelKind, file: &TensorFile<'_>) -> Slot {
        match kind {
            ModelKind::LeNet => {
                Slot::Net(Network::from_tensor_file(file, "").expect("LeNet slot builds"))
            }
            ModelKind::BranchyNet => Slot::Branchy(
                BranchyNet::from_tensor_file(file, "").expect("BranchyNet slot builds"),
            ),
            ModelKind::Cbnet => {
                Slot::Pipeline(CbnetModel::from_tensor_file(file, "").expect("CBNet slot builds"))
            }
            other => panic!("no slot for {other}"),
        }
    }

    fn import(&mut self, file: &TensorFile<'_>) {
        match self {
            Slot::Net(n) => n.import_tensors(file, "").expect("hot import"),
            Slot::Branchy(b) => b.import_tensors(file, "").expect("hot import"),
            Slot::Pipeline(p) => p.import_tensors(file, "").expect("hot import"),
        }
    }
}

/// Flip one pseudo-random bit per iteration and feed the blob back through
/// `load_model`: every outcome must be a clean `Ok`/`Err`, never a panic.
/// Returns (accepted, rejected).
fn fuzz_loads(
    reg: &mut ModelRegistry,
    kind: ModelKind,
    blob: &bytes::Bytes,
    iters: usize,
    seed: u64,
) -> (usize, usize) {
    let mut rng = tensor::random::rng_from_seed(seed);
    let (mut accepted, mut rejected) = (0usize, 0usize);
    for _ in 0..iters {
        let mut corrupted = blob.to_vec();
        let idx = rng.gen_range(0..corrupted.len());
        corrupted[idx] ^= 1 << rng.gen_range(0..8u32);
        match reg.load_model(kind, bytes::Bytes::from(corrupted)) {
            Ok(()) => accepted += 1,
            Err(_) => rejected += 1,
        }
    }
    // Restore the pristine weights the fuzz may have perturbed.
    reg.load_model(kind, blob.clone())
        .expect("pristine blob reloads");
    (accepted, rejected)
}

/// The two-tier rolling-deploy topology the smoke runs on.
fn deploy_config(requests: usize) -> FleetConfig {
    FleetConfig {
        tiers: vec![
            Tier {
                name: "edge".into(),
                device: DeviceModel::raspberry_pi4(),
                servers: 2,
                profile: CostProfile::bimodal(4.0, 14.0, 0.7),
                scheduler: SchedulerKind::Fifo,
                admission: AdmissionPolicy::Bounded { max_queue: 32 },
                link: None,
            },
            Tier {
                name: "cloud".into(),
                device: DeviceModel::gci_cpu(),
                servers: 4,
                profile: CostProfile::constant(1.5),
                scheduler: SchedulerKind::ShortestService,
                admission: AdmissionPolicy::Unbounded,
                link: Some(NetworkLink::wifi(16 * 1024)),
            },
        ],
        arrivals: ArrivalProcess::poisson(200.0),
        requests,
        seed: 41,
        slo_ms: 30.0,
    }
}

fn main() {
    let smoke = std::env::var("CBNET_MODEL_STORE_SMOKE").is_ok();
    let (reps, fuzz_iters, deploy_requests) = if smoke {
        (5, 64, 2_000)
    } else {
        (9, 256, 8_000)
    };
    let scale = ExperimentScale {
        n_train: 400,
        n_test: 80,
        epochs: 1,
        seed: 0xC0FFEE,
    };
    println!("=== model_store — checkpoint format timing ({reps} reps/point) ===\n");

    let mut reg = ModelRegistry::train(Family::MnistLike, &scale);
    let mut dst = ModelRegistry::train(
        Family::MnistLike,
        &ExperimentScale {
            seed: 0xBEEF,
            ..scale
        },
    );

    let kinds = [ModelKind::LeNet, ModelKind::BranchyNet, ModelKind::Cbnet];
    let mut rows = Vec::new();
    for kind in kinds {
        let save_ns = best_ns(reps, || {
            std::hint::black_box(reg.save_model(kind));
        });
        let blob = reg.save_model(kind);
        let legacy = legacy_envelope(&reg, kind);

        let load_cold_ns = best_ns(reps, || {
            dst.load_model(kind, blob.clone()).expect("cold load");
        });
        let legacy_load_ns = best_ns(reps, || {
            dst.load_model(kind, legacy.clone()).expect("legacy load");
        });

        // Hot path: parse once, refill a preallocated slot per repetition.
        let aligned = AlignedBytes::from_slice(&blob);
        let file = TensorFile::parse(aligned.as_slice()).expect("blob parses");
        let mut slot = Slot::from_file(kind, &file);
        let load_hot_ns = best_ns(reps, || slot.import(&file));

        rows.push(Row {
            kind,
            blob_bytes: blob.len(),
            legacy_bytes: legacy.len(),
            save_ns,
            load_cold_ns,
            load_hot_ns,
            legacy_load_ns,
        });
    }

    println!(
        "{:<11} {:>10} {:>12} {:>10} {:>10} {:>10} {:>11} {:>9} {:>9}",
        "model",
        "bytes",
        "legacy_bytes",
        "save_us",
        "cold_us",
        "hot_us",
        "legacy_us",
        "hot_x",
        "cold_x"
    );
    for r in &rows {
        println!(
            "{:<11} {:>10} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>11.1} {:>8.1}x {:>8.1}x",
            r.kind.name(),
            r.blob_bytes,
            r.legacy_bytes,
            r.save_ns / 1e3,
            r.load_cold_ns / 1e3,
            r.load_hot_ns / 1e3,
            r.legacy_load_ns / 1e3,
            r.hot_speedup(),
            r.cold_speedup(),
        );
    }
    let largest = rows
        .iter()
        .max_by_key(|r| r.blob_bytes)
        .expect("at least one comparator");
    println!(
        "\nlargest comparator: {} ({} bytes) — hot load {:.1}x the legacy path",
        largest.kind.name(),
        largest.blob_bytes,
        largest.hot_speedup()
    );

    // Corrupt-byte fuzz: single bit flips over the new-format blobs must
    // always come back as a clean Ok (data-section flip: perturbed weights)
    // or a diagnosable Err (header/arch flip) — a panic aborts the harness.
    println!("\n=== corrupt-byte fuzz — {fuzz_iters} single-bit flips per kind ===");
    let mut fuzz_rows = Vec::new();
    for kind in [ModelKind::LeNet, ModelKind::Cbnet] {
        let blob = reg.save_model(kind);
        let (accepted, rejected) = fuzz_loads(&mut dst, kind, &blob, fuzz_iters, 0xF1F0);
        println!("  {kind}: {accepted} loads accepted, {rejected} rejected, 0 panics");
        fuzz_rows.push((kind, accepted, rejected));
    }

    // Rolling-deploy smoke: publish two versions, serve v1, hot-swap the
    // edge tier to v2 mid-run, finish the control-plane handoff.
    println!("\n=== rolling deploy — {deploy_requests} requests, 2 tiers ===");
    let cfg = deploy_config(deploy_requests);
    let mut store = ModelStore::new(cfg.tiers.len());
    let v1 = store
        .publish_from(&mut reg, ModelKind::Cbnet)
        .expect("v1 publishes");
    let v2 = store
        .publish_from(&mut dst, ModelKind::Cbnet)
        .expect("v2 publishes");
    store.activate(0, v1).expect("v1 activates");
    let swap = TierSwap {
        tier: 0,
        at_ms: 3_000.0,
        profile: CostProfile::bimodal(3.0, 10.0, 0.7),
        version: v2.version,
        policy: SwapPolicy::Immediate,
    };
    let mut policy = OffloadPolicyKind::SloSojourn { slo_ms: 18.0 }.build();
    let mode = ObsMode::resolve();
    let (report, applied) = if mode.metrics_enabled() {
        let mut observer = SimObserver::for_fleet(&cfg, "slo");
        let out =
            try_simulate_fleet_with_swaps(&cfg, policy.as_mut(), &[swap], Some(&mut observer))
                .expect("deploy config is valid");
        let mut acc = MetricsRegistry::new();
        acc.merge_from(observer.registry());
        let path =
            std::env::var("CBNET_METRICS_JSON").unwrap_or_else(|_| "METRICS.json".to_string());
        std::fs::write(&path, acc.write_json(mode))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} (mode {})", mode.name());
        if mode.trace_enabled() {
            let path =
                std::env::var("CBNET_TRACE_JSONL").unwrap_or_else(|_| "TRACE.jsonl".to_string());
            std::fs::write(&path, observer.trace_jsonl())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path} (rolling-deploy span ring, swap spans included)");
        }
        out
    } else {
        try_simulate_fleet_with_swaps(&cfg, policy.as_mut(), &[swap], None)
            .expect("deploy config is valid")
    };
    store.activate(0, v2).expect("v2 activates");
    assert_eq!(applied, 1, "the scheduled swap applied");
    assert_eq!(
        report.completed + report.dropped,
        cfg.requests,
        "conservation across the swap"
    );
    assert_eq!(store.active_version(0), Some(v2), "handoff finished on v2");
    println!(
        "  {} completed + {} dropped = {} offered; swap applied, tier 0 now {v2}",
        report.completed, report.dropped, cfg.requests
    );

    let path = std::env::var("BENCH_STORE_JSON").unwrap_or_else(|_| "BENCH_store.json".into());
    if path != "-" {
        // Hand-rolled JSON: the workspace has no serde and the schema is flat.
        let mut json = String::from("{\n  \"comparators\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"kind\": \"{}\", \"blob_bytes\": {}, \"legacy_bytes\": {}, \
                 \"save_ns\": {:.0}, \"load_cold_ns\": {:.0}, \"load_hot_ns\": {:.0}, \
                 \"legacy_load_ns\": {:.0}, \"hot_speedup\": {:.2}, \"cold_speedup\": {:.2}}}{}\n",
                r.kind.name(),
                r.blob_bytes,
                r.legacy_bytes,
                r.save_ns,
                r.load_cold_ns,
                r.load_hot_ns,
                r.legacy_load_ns,
                r.hot_speedup(),
                r.cold_speedup(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"largest\": {{\"kind\": \"{}\", \"blob_bytes\": {}, \"hot_speedup\": {:.2}}},\n",
            largest.kind.name(),
            largest.blob_bytes,
            largest.hot_speedup()
        ));
        json.push_str("  \"fuzz\": [\n");
        for (i, (kind, accepted, rejected)) in fuzz_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"kind\": \"{}\", \"iterations\": {}, \"accepted\": {}, \"rejected\": {}}}{}\n",
                kind.name(),
                accepted + rejected,
                accepted,
                rejected,
                if i + 1 < fuzz_rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"rolling_deploy\": {{\"requests\": {}, \"completed\": {}, \"dropped\": {}, \
             \"swaps_applied\": {}, \"published\": {}, \"final_version\": {}}}\n}}\n",
            cfg.requests,
            report.completed,
            report.dropped,
            applied,
            store.published(),
            v2.version
        ));
        let mut f = std::fs::File::create(&path).expect("create BENCH_store.json");
        f.write_all(json.as_bytes())
            .expect("write BENCH_store.json");
        println!("\nwrote {path}");
    }

    // Acceptance bar — fail loudly in CI if the zero-copy win regresses.
    if std::env::var("BENCH_STORE_ENFORCE").is_ok() {
        assert!(
            largest.hot_speedup() >= 5.0,
            "hot load is only {:.2}x the legacy path on {} (< 5x)",
            largest.hot_speedup(),
            largest.kind.name()
        );
    }
}
