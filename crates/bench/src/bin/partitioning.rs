//! Extension experiment: CBNet on-device versus Neurosurgeon-style DNN
//! partitioning — the comparison the paper motivates in §I ("DNN
//! partitioning algorithms … can be affected by network delays and
//! intermittent connections between the cloud and the edge") but does not
//! quantify.
//!
//! LeNet runs on a Raspberry Pi 4 edge device with a GCI+GPU cloud backend;
//! the partitioner picks the optimal split per network condition. CBNet
//! runs fully on-device.

use edgesim::partition::{best_split, evaluate_splits, Uplink};
use edgesim::DeviceModel;
use models::autoencoder::AutoencoderConfig;
use models::branchynet::{BranchyNet, BranchyNetConfig};
use models::lenet::build_lenet;
use models::lightweight::extract_lightweight;
use tensor::random::rng_from_seed;

fn main() {
    println!("=== Partitioning comparison (extension) — RPi 4 edge + GCI/GPU cloud ===\n");
    let mut rng = rng_from_seed(0);
    let lenet = build_lenet(&mut rng);
    let specs = lenet.specs();
    let edge = DeviceModel::raspberry_pi4();
    let cloud = DeviceModel::gci_gpu();

    // CBNet's on-device cost (untrained weights — cost depends only on the
    // architecture).
    let bn = BranchyNet::new(BranchyNetConfig::default(), &mut rng);
    let lw = extract_lightweight(&bn);
    let ae_specs =
        models::autoencoder::ConvertingAutoencoder::new(AutoencoderConfig::mnist(), &mut rng)
            .specs();
    let cbnet_ms = edge.price_specs(&ae_specs).total_ms + edge.price_network(&lw).total_ms;

    println!("CBNet fully on-device: {cbnet_ms:.3} ms/image (network-independent)\n");

    let links = [
        (
            "ideal LAN (1 ms, 100 MB/s)",
            Uplink {
                latency_ms: 1.0,
                bandwidth_mbps: 100.0,
            },
        ),
        ("WiFi (5 ms, 10 MB/s)", Uplink::wifi()),
        (
            "good LTE (25 ms, 2 MB/s)",
            Uplink {
                latency_ms: 25.0,
                bandwidth_mbps: 2.0,
            },
        ),
        ("congested cellular (60 ms, 0.5 MB/s)", Uplink::cellular()),
    ];

    println!("link                                     best split  edge(ms)  net(ms)   cloud(ms)  total(ms)  vs CBNet");
    println!("-----------------------------------------------------------------------------------------------------------");
    for (name, link) in links {
        let best = best_split(&specs, &edge, &cloud, &link, 10);
        let split_desc = if best.split == specs.len() {
            "on-device".to_string()
        } else {
            format!("after L{}", best.split)
        };
        println!(
            "{name:<40} {split_desc:<10} {:>8.3}  {:>8.3}  {:>8.3}  {:>9.3}  {:>7.2}×",
            best.edge_ms,
            best.network_ms,
            best.cloud_ms,
            best.total_ms(),
            best.total_ms() / cbnet_ms
        );
    }

    println!("\nPer-split detail on WiFi:");
    let all = evaluate_splits(&specs, &edge, &cloud, &Uplink::wifi(), 10);
    println!("split  edge(ms)  net(ms)  cloud(ms)  total(ms)");
    for c in &all {
        println!(
            "{:>5}  {:>8.3}  {:>7.3}  {:>9.3}  {:>9.3}",
            c.split,
            c.edge_ms,
            c.network_ms,
            c.cloud_ms,
            c.total_ms()
        );
    }
    println!("\nEven the best partitioned execution pays the uplink on every image;");
    println!("CBNet's on-device latency beats it on all but ideal-LAN conditions, with");
    println!("no exposure to network variance or disconnection — the paper's §I claim.");
}
