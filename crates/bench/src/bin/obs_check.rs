//! Schema validator for the observability artifacts: `METRICS.json` and the
//! `TRACE.jsonl` span stream — the CI gate behind the obs smoke step.
//!
//! ```text
//! cargo run -p bench --bin obs_check -- METRICS.json [TRACE.jsonl] [--fleet]
//! ```
//!
//! Checks, via the dependency-free `obs::json` parser:
//!
//! * `METRICS.json` is a single JSON object with `schema` equal to
//!   [`obs::SCHEMA_VERSION`], a known `mode`, and well-formed `counters` /
//!   `gauges` / `histograms` arrays (each histogram's `buckets` a list of
//!   `[upper_edge, count]` pairs with counts summing to `count`).
//! * `TRACE.jsonl` starts with a header line (`schema`, `capacity`,
//!   `events`, `overwritten`, `tiers`) followed by exactly `events` event
//!   lines, each with a known `event` kind, a `tier` drawn from the header's
//!   name table, and per-request non-decreasing `seq`.
//! * With `--fleet`: the metrics additionally carry at least one per-tier
//!   `tier.<name>.queue_depth` gauge, `tier.<name>.sojourn_ms` histogram
//!   and `policy.<label>.decision.*` counter — the fleet ledger the ISSUE's
//!   acceptance criteria name.
//!
//! Exit status 0 on success, 1 with a diagnostic on the first violation.

use obs::json::{parse, JsonValue};

/// Span kinds `obs::SpanKind::name` can emit.
const KNOWN_EVENTS: [&str; 10] = [
    "arrival",
    "admit",
    "drop",
    "queue_enter",
    "queue_leave",
    "service_start",
    "service_end",
    "offload_hop",
    "exit_depth",
    "swap",
];

fn fail(msg: &str) -> ! {
    eprintln!("obs_check: FAIL: {msg}");
    std::process::exit(1);
}

fn require<'a>(obj: &'a JsonValue, key: &str, ctx: &str) -> &'a JsonValue {
    obj.get(key)
        .unwrap_or_else(|| fail(&format!("{ctx}: missing key \"{key}\"")))
}

fn require_num(obj: &JsonValue, key: &str, ctx: &str) -> f64 {
    match require(obj, key, ctx) {
        JsonValue::Num(v) => *v,
        JsonValue::Null => f64::NAN, // non-finite stats export as null
        _ => fail(&format!("{ctx}: \"{key}\" is not a number")),
    }
}

fn require_str<'a>(obj: &'a JsonValue, key: &str, ctx: &str) -> &'a str {
    require(obj, key, ctx)
        .as_str()
        .unwrap_or_else(|| fail(&format!("{ctx}: \"{key}\" is not a string")))
}

fn require_arr<'a>(obj: &'a JsonValue, key: &str, ctx: &str) -> &'a [JsonValue] {
    require(obj, key, ctx)
        .as_arr()
        .unwrap_or_else(|| fail(&format!("{ctx}: \"{key}\" is not an array")))
}

fn check_metrics(src: &str, fleet: bool) {
    let doc = parse(src).unwrap_or_else(|e| fail(&format!("METRICS.json does not parse: {e}")));
    let schema = require_num(&doc, "schema", "metrics");
    if schema != obs::SCHEMA_VERSION as f64 {
        fail(&format!(
            "metrics schema {schema} != expected {}",
            obs::SCHEMA_VERSION
        ));
    }
    let mode = require_str(&doc, "mode", "metrics");
    if !["off", "metrics", "trace"].contains(&mode) {
        fail(&format!("unknown metrics mode {mode:?}"));
    }

    let counters = require_arr(&doc, "counters", "metrics");
    for c in counters {
        let name = require_str(c, "name", "counter");
        let v = require_num(c, "value", &format!("counter {name}"));
        if !(v >= 0.0 && v.fract() == 0.0) {
            fail(&format!("counter {name} value {v} is not a whole number"));
        }
    }
    let gauges = require_arr(&doc, "gauges", "metrics");
    for g in gauges {
        let name = require_str(g, "name", "gauge");
        require_num(g, "value", &format!("gauge {name}"));
        require_num(g, "max", &format!("gauge {name}"));
    }
    let histograms = require_arr(&doc, "histograms", "metrics");
    for h in histograms {
        let name = require_str(h, "name", "histogram");
        let ctx = format!("histogram {name}");
        let count = require_num(h, "count", &ctx);
        for q in ["sum", "min", "max", "p50", "p90", "p99"] {
            require_num(h, q, &ctx);
        }
        let buckets = require_arr(h, "buckets", &ctx);
        let mut bucket_total = 0.0;
        let mut prev_edge = f64::NEG_INFINITY;
        for b in buckets {
            let pair = b
                .as_arr()
                .unwrap_or_else(|| fail(&format!("{ctx}: bucket is not a pair")));
            if pair.len() != 2 {
                fail(&format!("{ctx}: bucket is not an [upper, count] pair"));
            }
            let edge = pair[0]
                .as_f64()
                .unwrap_or_else(|| fail(&format!("{ctx}: bucket edge is not a number")));
            if edge <= prev_edge {
                fail(&format!("{ctx}: bucket edges are not strictly increasing"));
            }
            prev_edge = edge;
            bucket_total += pair[1]
                .as_f64()
                .unwrap_or_else(|| fail(&format!("{ctx}: bucket count is not a number")));
        }
        if bucket_total != count {
            fail(&format!(
                "{ctx}: bucket counts sum to {bucket_total}, header says {count}"
            ));
        }
    }

    if fleet {
        let has = |arr: &[JsonValue], pre: &str, suf: &str| {
            arr.iter().any(|v| {
                v.get("name")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.starts_with(pre) && n.ends_with(suf))
            })
        };
        if !has(gauges, "tier.", ".queue_depth") {
            fail("fleet metrics carry no tier.<name>.queue_depth gauge");
        }
        if !has(histograms, "tier.", ".sojourn_ms") {
            fail("fleet metrics carry no tier.<name>.sojourn_ms histogram");
        }
        if !has(histograms, "tier.", ".transfer_ms") {
            fail("fleet metrics carry no tier.<name>.transfer_ms histogram");
        }
        if !has(counters, "policy.", "") {
            fail("fleet metrics carry no policy.<label>.decision counters");
        }
    }
    println!(
        "obs_check: METRICS.json ok — {} counters, {} gauges, {} histograms (mode {mode})",
        counters.len(),
        gauges.len(),
        histograms.len()
    );
}

fn check_trace(src: &str) {
    let mut lines = src.lines();
    let header_line = lines.next().unwrap_or_else(|| fail("trace is empty"));
    let header = parse(header_line).unwrap_or_else(|e| fail(&format!("trace header: {e}")));
    if require_str(&header, "kind", "trace header") != "header" {
        fail("first trace line is not the header");
    }
    let schema = require_num(&header, "schema", "trace header");
    if schema != obs::SCHEMA_VERSION as f64 {
        fail(&format!(
            "trace schema {schema} != expected {}",
            obs::SCHEMA_VERSION
        ));
    }
    let capacity = require_num(&header, "capacity", "trace header");
    let events = require_num(&header, "events", "trace header");
    require_num(&header, "overwritten", "trace header");
    if events > capacity {
        fail(&format!(
            "header claims {events} events > capacity {capacity}"
        ));
    }
    let tiers: Vec<&str> = require_arr(&header, "tiers", "trace header")
        .iter()
        .map(|t| {
            t.as_str()
                .unwrap_or_else(|| fail("tier name is not a string"))
        })
        .collect();

    let mut seen = 0usize;
    // Per-request seq monotonicity over a bounded window (requests are
    // dense ids; a sparse map would drag in a hash table for no benefit).
    let mut last_seq: Vec<i64> = Vec::new();
    for (i, line) in lines.enumerate() {
        let ctx = format!("trace line {}", i + 2);
        let ev = parse(line).unwrap_or_else(|e| fail(&format!("{ctx}: {e}")));
        let kind = require_str(&ev, "event", &ctx);
        if !KNOWN_EVENTS.contains(&kind) {
            fail(&format!("{ctx}: unknown event kind {kind:?}"));
        }
        let tier = require_str(&ev, "tier", &ctx);
        if !tiers.contains(&tier) && tier != "unknown" {
            fail(&format!("{ctx}: tier {tier:?} not in header table"));
        }
        let seq = require_num(&ev, "seq", &ctx) as i64;
        let req = require_num(&ev, "req", &ctx) as usize;
        require_num(&ev, "t_ms", &ctx);
        require_num(&ev, "server", &ctx);
        require_num(&ev, "value", &ctx);
        if req >= last_seq.len() {
            last_seq.resize(req + 1, -1);
        }
        if seq <= last_seq[req] {
            fail(&format!("{ctx}: request {req} seq went backwards"));
        }
        last_seq[req] = seq;
        seen += 1;
    }
    if seen as f64 != events {
        fail(&format!(
            "header claims {events} events, found {seen} lines"
        ));
    }
    println!(
        "obs_check: TRACE.jsonl ok — {seen} events over {} tiers",
        tiers.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet = args.iter().any(|a| a == "--fleet");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let metrics_path = paths
        .first()
        .unwrap_or_else(|| fail("usage: obs_check METRICS.json [TRACE.jsonl] [--fleet]"));
    let metrics = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| fail(&format!("reading {metrics_path}: {e}")));
    check_metrics(&metrics, fleet);
    if let Some(trace_path) = paths.get(1) {
        let trace = std::fs::read_to_string(trace_path)
            .unwrap_or_else(|e| fail(&format!("reading {trace_path}: {e}")));
        check_trace(&trace);
    }
}
