//! # bench — harness binaries and Criterion benches
//!
//! One binary per table/figure of the paper (`cargo run -p bench --release
//! --bin <name>`):
//!
//! | binary       | regenerates                                        |
//! |--------------|----------------------------------------------------|
//! | `table1`     | Table I — converting-AE architectures              |
//! | `table2`     | Table II — latency / energy / accuracy             |
//! | `fig3`       | Fig. 3 — BranchyNet speedup vs hard fraction       |
//! | `fig5`       | Fig. 5 — five-model comparison (MNIST, RPi 4)      |
//! | `fig6`       | Fig. 6 — scalability, MNIST × 3 devices            |
//! | `fig7`       | Fig. 7 — scalability, FMNIST × 3 devices           |
//! | `fig8`       | Fig. 8 — scalability, KMNIST × 3 devices           |
//! | `exit_rates` | §IV-D — exit rates + AE latency share              |
//! | `ablations`  | DESIGN.md §4 — design-choice ablations             |
//! | `serving`    | extension — queueing simulation under load         |
//! | `fleet`      | extension — tiered edge–cloud offload sweep        |
//!
//! Scale control: set `CBNET_SCALE=small` for a fast smoke run (seconds) or
//! leave unset for the full-scale run the committed EXPERIMENTS.md numbers
//! come from.

#![forbid(unsafe_code)]

use cbnet::experiments::ExperimentScale;
use nn::{Activation, ActivationKind, Dense, Network};
use tensor::random::rng_from_seed;

/// Batch sizes the forward-pass perf surfaces sweep (`benches/forward_plan`
/// and `bin/forward_perf` share this list so their trajectories stay
/// comparable).
pub const FORWARD_BATCHES: [usize; 4] = [1, 8, 32, 128];

/// A Table-I-style dense MLP (the converting-autoencoder shape): the
/// dense-GEMM-dominated counterpoint to LeNet's conv-dominated stack, shared
/// by the forward-pass perf surfaces.
pub fn dense_mlp(seed: u64) -> Network {
    let mut rng = rng_from_seed(seed);
    Network::new()
        .push(Dense::new(784, 784, &mut rng))
        .push(Activation::new(ActivationKind::Relu, 784))
        .push(Dense::new(784, 384, &mut rng))
        .push(Activation::new(ActivationKind::Relu, 384))
        .push(Dense::new(384, 32, &mut rng))
        .push(Dense::new(32, 784, &mut rng))
        .push(Activation::new(ActivationKind::Sigmoid, 784))
}

/// Resolve the experiment scale from the `CBNET_SCALE` environment variable.
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("CBNET_SCALE").as_deref() {
        Ok("small") => ExperimentScale::small(),
        _ => ExperimentScale::full(),
    }
}

/// Print a standard experiment banner.
pub fn banner(name: &str, what: &str) {
    println!("=== {name} — {what} ===");
    let s = scale_from_env();
    println!(
        "scale: {} train / {} test samples, {} epochs (CBNET_SCALE={})\n",
        s.n_train,
        s.n_test,
        s.epochs,
        std::env::var("CBNET_SCALE").unwrap_or_else(|_| "full".into())
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Only valid when the var is unset in the test environment; guard.
        if std::env::var("CBNET_SCALE").is_err() {
            let s = scale_from_env();
            assert_eq!(s.n_train, ExperimentScale::full().n_train);
        }
    }
}
