//! Offline stand-in for the `crossbeam` crate's scoped threads.
//!
//! Only [`scope`] is provided, backed by `std::thread::scope` (which did not
//! exist when crossbeam's API was designed — today the standard library
//! covers this workspace's needs). Two behavioural notes:
//!
//! * crossbeam's `spawn` passes the scope to the child closure so it can
//!   spawn grandchildren; this shim passes it too.
//! * crossbeam's `scope` returns `Err` when a child panicked and was not
//!   joined; `std::thread::scope` instead resumes the panic after joining.
//!   Since every call site here treats a panicked child as fatal
//!   (`.expect(...)`), the observable behaviour — abort the test/process
//!   with the panic payload — is the same.

#![forbid(unsafe_code)]

use std::any::Any;
use std::thread;

/// A scope handle that can spawn threads borrowing from the caller's stack.
pub struct Scope<'scope, 'env> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam
    /// parity), letting workers spawn nested workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload if it panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run `f` with a scope whose threads may borrow local data; all threads are
/// joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = [0u64; 4];
        scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = i as u64 + 1;
                    i
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), i);
            }
        })
        .unwrap();
        assert_eq!(data, [1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let v = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
