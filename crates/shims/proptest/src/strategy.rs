//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from pre-boxed options.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Box one option (helper for the `prop_oneof!` macro).
    pub fn option<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (1usize..5, -1.0f32..1.0).prop_map(|(n, v)| vec![v; n]);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn union_samples_every_option() {
        let mut rng = TestRng::seed_from_u64(2);
        let u = Union::new(vec![
            Union::option((0usize..1).prop_map(|_| 10usize)),
            Union::option((0usize..1).prop_map(|_| 20usize)),
        ]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            match u.generate(&mut rng) {
                10 => seen[0] = true,
                20 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::seed_from_u64(3);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
