//! Case-count configuration and per-case outcomes.

use rand::SeedableRng;

use crate::strategy::TestRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — try another.
    Reject(String),
    /// An assertion failed — the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG: seeded from a hash of the test name so runs
/// reproduce bit-for-bit everywhere.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_stable_per_name() {
        use rand::Rng;
        let mut a = rng_for_test("foo");
        let mut b = rng_for_test("foo");
        let mut c = rng_for_test("bar");
        let va: u64 = a.gen::<u64>();
        assert_eq!(va, b.gen::<u64>());
        assert_ne!(va, c.gen::<u64>());
    }
}
