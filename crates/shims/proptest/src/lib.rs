//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / mapped / union strategies,
//! [`collection::vec`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the assertion
//!   message) but is not minimised.
//! * **Deterministic seeding** — each test's RNG is seeded from a hash of the
//!   test's name, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Size specifications accepted by [`collection::vec`].
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Things usable as a collection-size specification.
    pub trait IntoSizeRange {
        /// Draw a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            assert!(self.start < self.end, "empty size range");
            rng.gen_range(self.start..self.end)
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports: strategies, config, and assertion macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run the body once per generated case.
///
/// Supports the `#![proptest_config(...)]` inner attribute and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $crate::__proptest_args!{ ($cfg) ($(#[$meta])*) $name () $body; $($params)* }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // Done: all parameters munched into ($arg $strat) pairs.
    ( ($cfg:expr) ($(#[$meta:meta])*) $name:ident ($(($arg:ident $strat:tt))*) $body:block; ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases.saturating_mul(64).max(1024),
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", accepted, stringify!($name), msg);
                    }
                }
            }
        }
    };
    // Munch the final `arg in strategy` (no trailing comma).
    ( ($cfg:expr) ($(#[$meta:meta])*) $name:ident ($($acc:tt)*) $body:block; $arg:ident in $strat:expr ) => {
        $crate::__proptest_args!{ ($cfg) ($(#[$meta])*) $name ($($acc)* ($arg $strat)) $body; }
    };
    // Munch one `arg in strategy,` then recurse.
    ( ($cfg:expr) ($(#[$meta:meta])*) $name:ident ($($acc:tt)*) $body:block; $arg:ident in $strat:expr, $($rest:tt)* ) => {
        $crate::__proptest_args!{ ($cfg) ($(#[$meta])*) $name ($($acc)* ($arg $strat)) $body; $($rest)* }
    };
}

/// Assert inside a proptest body; failure fails the case with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                );
            }
        }
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)+), l);
            }
        }
    };
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::option($strat)),+
        ])
    };
}
