//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with exactly the
//! semantics the workspace's checkpoint serialisation relies on: little-endian
//! primitive reads/writes, length-prefixed sub-buffers via
//! [`Buf::copy_to_bytes`], and cheap clones of frozen buffers.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (a view into shared storage).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Number of remaining bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

/// A growable byte buffer for building [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential reader over a byte source (all multi-byte reads little-endian).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Fill `dst` from the front of the buffer and advance past it.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read the next `len` bytes as an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics when fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        (**self).copy_to_bytes(len)
    }
}

/// Sequential writer into a byte sink (all multi-byte writes little-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_views_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&b.slice(..2)[..], &[0, 1]);
        assert_eq!(s.slice(1..).len(), 2);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 7);
    }

    #[test]
    fn slice_buf_reader() {
        let data = [1u8, 0, 0, 0, 2];
        let mut r: &[u8] = &data;
        assert_eq!(r.get_u32_le(), 1);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.get_u8(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
