//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of `rand` 0.8's API the workspace actually uses:
//! [`Rng`] with `gen` / `gen_range`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`distributions::Distribution`].
//!
//! `StdRng` here is SplitMix64 — a tiny, fast, statistically solid 64-bit
//! generator (it seeds xoshiro in the real ecosystem). It is **not**
//! cryptographic and its stream differs from the real `rand::rngs::StdRng`;
//! everything in this workspace only needs determinism-given-seed and
//! reasonable equidistribution, which SplitMix64 provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type
    /// (`f32`/`f64` in `[0, 1)`, integers over their full range, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution.
pub trait Standard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from half-open / inclusive ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// One uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_from<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_from(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_from(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against FP rounding landing exactly on `hi` in the
                // half-open case (harmless for inclusive ranges).
                if v >= hi && lo < hi { lo } else { v }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna). Full 2^64 period, passes BigCrush when
            // used as here.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the raw seed so nearby seeds give unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Distribution sampling (the `Distribution` trait only).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let u: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 should appear");
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..=3);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
