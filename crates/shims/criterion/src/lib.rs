//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks keep their exact source form (`criterion_group!` /
//! `criterion_main!`, groups, throughput, `bench_with_input`); the harness
//! behind them is a simple median-of-samples wall-clock timer printing one
//! line per benchmark. No statistics, plots, or baselines — but `cargo bench`
//! runs and produces usable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for reporting benchmark throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter (used as the full id).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly and records timing.
pub struct Bencher {
    samples: usize,
    /// Smoke mode (`cargo bench -- --test`): run each body once, untimed.
    smoke: bool,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    fn new(samples: usize, smoke: bool) -> Self {
        Bencher {
            samples,
            smoke,
            last_ns_per_iter: f64::NAN,
        }
    }

    /// Time a closure: warm up, then take `samples` timed batches and keep
    /// the median per-iteration time. In smoke mode (like real criterion's
    /// `--test` flag) the body runs exactly once as a correctness check and
    /// no timing is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.last_ns_per_iter = 0.0;
            return;
        }
        // Warm-up and batch sizing: aim for ~2 ms per batch.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let batch = ((2e6 / once_ns).ceil() as usize).clamp(1, 100_000);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Report throughput alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}

    fn report(&mut self, bench_name: &str, b: &Bencher) {
        let ns = b.last_ns_per_iter;
        if b.smoke {
            self.criterion
                .emit(&format!("{}/{:<32} ok (smoke)", self.name, bench_name));
            return;
        }
        let mut line = format!("{}/{:<32} {:>12.1} ns/iter", self.name, bench_name, ns);
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (ns * 1e-9);
            line.push_str(&format!("   {:>12.3e} {unit}/s", rate));
        }
        self.criterion.emit(&line);
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    /// `--test` on the command line: run bodies once, report no timings.
    smoke: bool,
}

impl Criterion {
    /// Read the benchmark-name filter from the command line, like real
    /// criterion (`cargo bench -- <filter>`).
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().skip(1).any(|a| a == "--test");
        let args: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self.filter = args.into_iter().next();
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    fn emit(&self, line: &str) {
        if let Some(f) = &self.filter {
            if !line.contains(f.as_str()) {
                return;
            }
        }
        println!("{line}");
    }
}

/// Declare a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($bench(&mut c);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(5, false);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.last_ns_per_iter.is_finite() && b.last_ns_per_iter > 0.0);

        // Smoke mode runs the body but records no timing.
        let mut b = Bencher::new(5, true);
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.last_ns_per_iter, 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| x + 1);
        });
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
