//! Fixture-driven tests for every lint rule.
//!
//! Each fixture under `tests/fixtures/` is a small Rust source exercising
//! one rule's detections, exemptions, and the `lint:allow` escape hatch.
//! The directory is in the analyzer's skip list, so the deliberate
//! violations never leak into a real workspace scan; here the sources are
//! fed through [`analyzer::analyze_source`] under synthetic workspace
//! paths that put them in each rule's scope.

use analyzer::report::{Report, Violation};
use analyzer::resolve;

const HOT_PATH: &str = include_str!("fixtures/hot_path.rs");
const HOT_ENGINE: &str = include_str!("fixtures/hot_engine.rs");
const PANICS: &str = include_str!("fixtures/panics.rs");
const SHIM_USER: &str = include_str!("fixtures/shim_user.rs");
const SHIM_RAND: &str = include_str!("fixtures/shim_rand.rs");
const KERNELS: &str = include_str!("fixtures/kernels.rs");
const CONFORMANCE: &str = include_str!("fixtures/conformance.rs");
const BAD_ALLOWS: &str = include_str!("fixtures/bad_allows.rs");
const UNSAFE_AUDIT: &str = include_str!("fixtures/unsafe_audit.rs");
const OBS_DOC: &str = include_str!("fixtures/obs_doc.rs");

/// All fixtures mapped to paths that put them in their rule's scope.
const ALL_FIXTURES: [(&str, &str); 10] = [
    ("crates/nn/src/fixture_hot.rs", HOT_PATH),
    ("crates/edgesim/src/fixture_engine.rs", HOT_ENGINE),
    ("crates/demo/src/lib.rs", PANICS),
    ("crates/demo/src/shim_user.rs", SHIM_USER),
    ("crates/shims/rand/src/lib.rs", SHIM_RAND),
    ("crates/tensor/src/fixture_kernels.rs", KERNELS),
    ("tests/plan_conformance.rs", CONFORMANCE),
    ("crates/demo/src/allows.rs", BAD_ALLOWS),
    ("crates/testkit/src/lib.rs", UNSAFE_AUDIT),
    ("crates/obs/src/fixture_sink.rs", OBS_DOC),
];

fn report_for(files: &[(&str, &str)]) -> Report {
    resolve(
        files
            .iter()
            .map(|(rel, src)| analyzer::analyze_source(rel, src))
            .collect(),
    )
}

fn by_rule<'r>(report: &'r Report, rule: &str) -> Vec<&'r Violation> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .collect()
}

fn open_lines(violations: &[&Violation]) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.suppressed.is_none())
        .map(|v| v.line)
        .collect()
}

#[test]
fn hot_path_alloc_flags_kernels_and_plan_methods() {
    let report = report_for(&[("crates/nn/src/fixture_hot.rs", HOT_PATH)]);
    let hot = by_rule(&report, "hot-path-alloc");

    // `.clone()` + `.to_vec()` in ForwardPlan::run, `vec!` in relu_into,
    // `.collect()` in plan_scratch_floats, `format!` building a metric
    // label in labelled_into. Handle-based obs recording in observed_into
    // is sanctioned — hot-path instrumentation must go through the
    // alloc-free record API, and then it lints clean.
    assert_eq!(open_lines(&hot), vec![17, 18, 26, 41, 68]);
    assert!(hot[0].message.contains("`run`"));
    assert!(hot[2].message.contains("vec!"));
    assert!(hot.last().unwrap().message.contains("format!"));
    assert!(!hot.iter().any(|v| v.message.contains("observed_into")));

    // The annotated `.to_vec()` in scaled_into is suppressed with its reason.
    let suppressed: Vec<_> = hot.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 35);
    assert!(suppressed[0]
        .suppressed
        .as_deref()
        .is_some_and(|r| r.contains("fused kernel")));

    // The allocating constructor (`ForwardPlan::new`) and the cold helper
    // are out of scope.
    assert!(!hot.iter().any(|v| v.line == 11 || v.line == 47));
}

#[test]
fn hot_path_alloc_covers_engine_impls() {
    let report = report_for(&[("crates/edgesim/src/fixture_engine.rs", HOT_ENGINE)]);
    let hot = by_rule(&report, "hot-path-alloc");

    // `.to_vec()` in EventHeap::push, `format!` in EngineSim::run,
    // `.collect()` in FleetSim::dispatch_tier and in the swap-version
    // lookup FleetSim::profile_at (it runs per arrival).
    assert_eq!(open_lines(&hot), vec![16, 31, 50, 75]);
    assert!(hot.iter().any(|v| v.message.contains("`push`")));
    assert!(hot.iter().any(|v| v.message.contains("format!")));
    assert!(hot.iter().any(|v| v.message.contains("`dispatch_tier`")));
    assert!(hot.iter().any(|v| v.message.contains("`profile_at`")));

    // Applying a swap is `mem::swap` of preallocated slots — lints clean.
    assert!(!hot.iter().any(|v| v.message.contains("apply_swap")));

    // `reset` is hot (run-to-run reuse must stay allocation-free); its
    // annotated `.clone()` is suppressed with the recorded reason, as is
    // the cold `format!` diagnostic in `schedule_swap`.
    let suppressed: Vec<_> = hot.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 2);
    assert_eq!(suppressed[0].line, 37);
    assert_eq!(suppressed[1].line, 71);

    // Constructors (`with_capacity`), kind resolution (`from_kind`) and
    // report assembly allocate freely — out of scope.
    assert!(!hot
        .iter()
        .any(|v| v.line == 11 || v.line == 27 || v.line == 42));
}

#[test]
fn hot_path_alloc_only_applies_to_library_sources() {
    let report = report_for(&[("crates/nn/benches/fixture_hot.rs", HOT_PATH)]);
    assert!(by_rule(&report, "hot-path-alloc").is_empty());
}

#[test]
fn panic_in_lib_flags_library_code_but_not_tests() {
    let report = report_for(&[("crates/demo/src/lib.rs", PANICS)]);
    let panics = by_rule(&report, "panic-in-lib");

    // `.unwrap()` in risky, `panic!` in hard_stop.
    assert_eq!(open_lines(&panics), vec![5, 16]);
    assert!(panics[0].message.contains(".unwrap()"));

    // The annotated `.expect()` is suppressed; `assert!` (line 21) and the
    // unwrap inside `#[cfg(test)] mod tests` (line 31) are never flagged.
    let suppressed: Vec<_> = panics.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 11);
    assert!(!panics.iter().any(|v| v.line == 21 || v.line == 31));
}

#[test]
fn panic_in_lib_exempts_test_and_bin_sources() {
    for rel in [
        "crates/demo/tests/panics.rs",
        "crates/demo/src/bin/tool.rs",
        "crates/demo/src/main.rs",
        "crates/shims/rand/src/panics.rs",
    ] {
        let report = report_for(&[(rel, PANICS)]);
        assert!(
            by_rule(&report, "panic-in-lib").is_empty(),
            "{rel} should be exempt"
        );
    }
}

#[test]
fn shim_drift_flags_imports_missing_from_the_shim() {
    let report = report_for(&[
        ("crates/shims/rand/src/lib.rs", SHIM_RAND),
        ("crates/demo/src/shim_user.rs", SHIM_USER),
    ]);
    let drift = by_rule(&report, "shim-drift");

    // `rand::missing_item` does not exist in the shim; `rngs`, `StdRng`
    // and `Rng` do.
    assert_eq!(open_lines(&drift), vec![4]);
    assert!(drift[0].message.contains("missing_item"));
}

#[test]
fn shim_drift_needs_the_shim_sources_to_vouch() {
    // Without the shim crate's sources, nothing vouches for any segment.
    let report = report_for(&[("crates/demo/src/shim_user.rs", SHIM_USER)]);
    let drift = by_rule(&report, "shim-drift");
    assert!(drift.len() > 1, "expected several unvouched imports");
}

#[test]
fn conformance_coverage_requires_suite_references() {
    let report = report_for(&[
        ("crates/tensor/src/fixture_kernels.rs", KERNELS),
        ("tests/plan_conformance.rs", CONFORMANCE),
    ]);
    let coverage = by_rule(&report, "conformance-coverage");

    // The suite references covered_into but not undocumented_into; the
    // private helper_into is not part of the contract.
    assert_eq!(open_lines(&coverage), vec![12]);
    assert!(coverage[0].message.contains("undocumented_into"));

    // Without the suite file, both public kernels are unpinned.
    let report = report_for(&[("crates/tensor/src/fixture_kernels.rs", KERNELS)]);
    assert_eq!(by_rule(&report, "conformance-coverage").len(), 2);
}

#[test]
fn into_doc_contract_requires_ownership_wording() {
    let report = report_for(&[
        ("crates/tensor/src/fixture_kernels.rs", KERNELS),
        ("tests/plan_conformance.rs", CONFORMANCE),
    ]);
    let docs = by_rule(&report, "into-doc-contract");

    // covered_into documents its output buffer; undocumented_into has a
    // rustdoc that never states ownership.
    assert_eq!(open_lines(&docs), vec![12]);
    assert!(docs[0].message.contains("does not state"));

    // A pub `_into` fn with no rustdoc at all gets the stronger message.
    let report = report_for(&[("crates/nn/src/fixture_hot.rs", HOT_PATH)]);
    let docs = by_rule(&report, "into-doc-contract");
    assert_eq!(open_lines(&docs), vec![24, 32]);
    assert!(docs[0].message.contains("no rustdoc"));
}

#[test]
fn unsafe_audit_requires_safety_comments_in_sanctioned_files() {
    // Under a sanctioned path, `unsafe` itself is allowed but every use
    // must carry a SAFETY justification.
    let report = report_for(&[("crates/testkit/src/lib.rs", UNSAFE_AUDIT)]);
    let audit = by_rule(&report, "unsafe-audit");

    // Only `bare` lacks a justification: the `// SAFETY:` block, the
    // `# Safety` rustdoc on `doc_contract` and its inner block all pass,
    // and the unsafe inside `#[cfg(test)]` is ignored.
    assert_eq!(open_lines(&audit), vec![12]);
    assert!(audit.iter().any(|v| v.message.contains("SAFETY")));

    // The lint:allow escape hatch works and carries its reason.
    let suppressed: Vec<_> = audit.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 26);
}

#[test]
fn unsafe_audit_flags_any_unsafe_outside_sanctioned_files() {
    let report = report_for(&[("crates/demo/src/lib.rs", UNSAFE_AUDIT)]);
    let audit = by_rule(&report, "unsafe-audit");

    // Every unsafe use is out of bounds (even the justified ones), and the
    // `#[allow(unsafe_code)]` gate re-opening is its own violation.
    assert_eq!(open_lines(&audit), vec![8, 12, 19, 21, 29]);
    assert!(audit
        .iter()
        .any(|v| v.message.contains("allow(unsafe_code)")));
}

#[test]
fn unsafe_audit_skips_test_and_bin_sources() {
    for rel in ["crates/demo/tests/x.rs", "crates/demo/src/main.rs"] {
        let report = report_for(&[(rel, UNSAFE_AUDIT)]);
        assert!(
            by_rule(&report, "unsafe-audit").is_empty(),
            "{rel} should be exempt"
        );
    }
}

#[test]
fn obs_doc_requires_allocation_wording_on_recording_fns() {
    let report = report_for(&[("crates/obs/src/fixture_sink.rs", OBS_DOC)]);
    let docs = by_rule(&report, "obs-doc");

    // `inc`'s rustdoc never mentions allocation; `observe` has none at all.
    // `record`, `gauge_set` and both `on_layer`s state their contract, and
    // the allocating `export` is not a recording fn.
    assert_eq!(open_lines(&docs), vec![10, 12]);
    assert!(docs[0].message.contains("does not state"));
    assert!(docs[1].message.contains("no rustdoc"));

    // The trait's default method is suppressed with a reason.
    let suppressed: Vec<_> = docs.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 30);
}

#[test]
fn obs_doc_only_applies_to_the_observability_sources() {
    // The same source outside crates/obs (or edgesim's observe module) is
    // out of scope: the rule pins the obs recording API, not every fn that
    // happens to be named `record`.
    for rel in ["crates/demo/src/lib.rs", "crates/obs/tests/sink.rs"] {
        let report = report_for(&[(rel, OBS_DOC)]);
        assert!(
            by_rule(&report, "obs-doc").is_empty(),
            "{rel} should be exempt"
        );
    }
}

#[test]
fn bad_allow_reports_malformed_directives_and_cannot_be_silenced() {
    let report = report_for(&[("crates/demo/src/allows.rs", BAD_ALLOWS)]);
    let bad = by_rule(&report, "bad-allow");

    // Missing reason (line 5), unknown rule name (line 8), and a malformed
    // directive whose `lint:allow(bad-allow, ...)` annotation on the line
    // above must NOT suppress it (line 12).
    assert_eq!(open_lines(&bad), vec![5, 8, 12]);
    assert!(bad.iter().all(|v| v.suppressed.is_none()));
    assert!(bad[0].message.contains("reason"));
    assert!(bad[1].message.contains("no-such-rule"));
}

#[test]
fn allow_on_same_line_suppresses() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() } \
               // lint:allow(panic-in-lib, reason = \"fixture same-line\")\n";
    let report = report_for(&[("crates/demo/src/inline.rs", src)]);
    let panics = by_rule(&report, "panic-in-lib");
    assert_eq!(panics.len(), 1);
    assert_eq!(panics[0].suppressed.as_deref(), Some("fixture same-line"));
}

#[test]
fn allow_must_name_the_matching_rule_and_be_adjacent() {
    // Wrong rule name: no suppression.
    let wrong_rule = "// lint:allow(hot-path-alloc, reason = \"wrong rule\")\n\
                      pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let report = report_for(&[("crates/demo/src/inline.rs", wrong_rule)]);
    assert_eq!(open_lines(&by_rule(&report, "panic-in-lib")), vec![2]);

    // Two lines above the violation: out of range, no suppression.
    let too_far = "// lint:allow(panic-in-lib, reason = \"too far away\")\n\n\
                   pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let report = report_for(&[("crates/demo/src/inline.rs", too_far)]);
    assert_eq!(open_lines(&by_rule(&report, "panic-in-lib")), vec![3]);
}

#[test]
fn json_report_shape_is_stable() {
    let report = report_for(&ALL_FIXTURES);
    assert_eq!(report.files_scanned, ALL_FIXTURES.len());

    let json = report.to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"schema\": 1"));
    assert!(json.contains(&format!("\"files_scanned\": {}", ALL_FIXTURES.len())));
    for rule in analyzer::rules::RULES {
        assert!(json.contains(&format!("\"{rule}\"")), "missing rule {rule}");
    }
    // Suppressed entries carry their justification.
    assert!(json.contains("\"reason\": \"fixture same-line\"") || json.contains("\"reason\":"));
    assert!(json.contains("\"violations\": ["));
    assert!(json.contains("\"suppressed\": ["));

    // Counts match the report's own tallies.
    let counts = report.counts();
    for (rule, (open, supp)) in counts {
        assert!(json.contains(&format!(
            "\"{rule}\": {{\"violations\": {open}, \"suppressed\": {supp}}}"
        )));
    }
}

#[test]
fn workspace_is_lint_clean() {
    let cwd = std::env::current_dir().expect("cwd");
    let root = analyzer::find_workspace_root(&cwd).expect("workspace root");
    let report = analyzer::analyze_workspace(&root).expect("workspace scan");
    let open: Vec<String> = report
        .unsuppressed()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        open.is_empty(),
        "unsuppressed lint violations:\n{}",
        open.join("\n")
    );
}
