//! Fixture: tensor kernels with varying doc and conformance coverage.

/// `out = max(input, 0)` elementwise. The caller-owned `out` is fully
/// overwritten; no scratch is needed.
pub fn covered_into(input: &[f32], out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(input) {
        *o = x.max(0.0);
    }
}

/// Doubles every element. (No ownership contract stated.)
pub fn undocumented_into(input: &[f32], y: &mut [f32]) {
    for (o, &x) in y.iter_mut().zip(input) {
        *o = 2.0 * x;
    }
}

// Private helpers are not part of the doc/coverage contract.
fn helper_into(x: &mut [f32]) {
    x.fill(0.0);
}

pub fn use_helper(x: &mut [f32]) {
    helper_into(x);
}
