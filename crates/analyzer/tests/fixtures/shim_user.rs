//! Fixture: imports from shimmed crates, one of which does not exist.

use rand::rngs::StdRng;
use rand::{missing_item, Rng};

pub fn draw(rng: &mut StdRng) -> f64 {
    let _ = missing_item;
    Rng::gen_range(rng, 0.0..1.0)
}
