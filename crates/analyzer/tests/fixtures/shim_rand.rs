//! Fixture: a minimal shim crate surface (stands in for crates/shims/rand).

pub mod rngs {
    pub struct StdRng;
}

pub trait Rng {
    fn gen_range(&mut self, _range: std::ops::Range<f64>) -> f64 {
        0.5
    }
}

pub trait SeedableRng {
    fn from_seed(seed: u64) -> Self;
}
