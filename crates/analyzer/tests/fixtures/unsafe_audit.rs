//! Fixture: the `unsafe-audit` rule. Scanned under a sanctioned path
//! (SAFETY-comment enforcement) and an unsanctioned one (any `unsafe`
//! and any `allow(unsafe_code)` are violations there).

/// A justified block: clean in a sanctioned file.
pub fn justified(p: *const u8) -> u8 {
    // SAFETY: fixture — `p` points to a live byte by contract.
    unsafe { *p }
}

pub fn bare(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Reads the byte behind `p`.
///
/// # Safety
/// `p` must point to a live, initialized byte.
pub unsafe fn doc_contract(p: *const u8) -> u8 {
    // SAFETY: caller upholds the `# Safety` contract above.
    unsafe { *p }
}

pub fn waved_through(p: *const u8) -> u8 {
    // lint:allow(unsafe-audit, reason = "fixture escape hatch")
    unsafe { *p }
}

#[allow(unsafe_code)]
pub fn gate_reopened() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_ignored() {
        let b = 7u8;
        let v = unsafe { *(&b as *const u8) };
        assert_eq!(v, 7);
    }
}
