//! Engine hot-impl fixture: methods of `EventHeap`/`EngineSim`/`FleetSim`
//! (and the other flat-index impls) are hot by default; constructors,
//! `from_kind` and `report` are exempt, and `reset` is deliberately not.

pub struct EventHeap {
    entries: Vec<u64>,
}

impl EventHeap {
    pub fn with_capacity(n: usize) -> EventHeap {
        let entries = Vec::with_capacity(n); // exempt: constructor
        EventHeap { entries }
    }

    pub fn push(&mut self, v: u64) {
        let spill = self.entries.to_vec(); // flagged
        self.entries.push(v + spill.len() as u64);
    }
}

pub struct EngineSim {
    ids: Vec<u64>,
}

impl EngineSim {
    pub fn from_kind(n: usize) -> EngineSim {
        EngineSim { ids: vec![0; n] } // exempt: kind resolution
    }

    pub fn run(&mut self) {
        let label = format!("run-{}", self.ids.len()); // flagged
        self.ids[0] = label.len() as u64;
    }

    pub fn reset(&mut self) {
        // lint:allow(hot-path-alloc, reason = "fixture: reset is hot, the annotation is the escape hatch")
        let fresh = self.ids.clone();
        self.ids.copy_from_slice(&fresh);
    }

    pub fn report(&self) -> Vec<u64> {
        self.ids.clone() // exempt: report assembly
    }
}

pub struct FleetSim;

impl FleetSim {
    pub fn dispatch_tier(&mut self) -> u64 {
        let chain: Vec<u64> = (0..4).collect(); // flagged
        chain.iter().sum()
    }
}
