//! Engine hot-impl fixture: methods of `EventHeap`/`EngineSim`/`FleetSim`
//! (and the other flat-index impls) are hot by default; constructors,
//! `from_kind` and `report` are exempt, and `reset` is deliberately not.

pub struct EventHeap {
    entries: Vec<u64>,
}

impl EventHeap {
    pub fn with_capacity(n: usize) -> EventHeap {
        let entries = Vec::with_capacity(n); // exempt: constructor
        EventHeap { entries }
    }

    pub fn push(&mut self, v: u64) {
        let spill = self.entries.to_vec(); // flagged
        self.entries.push(v + spill.len() as u64);
    }
}

pub struct EngineSim {
    ids: Vec<u64>,
}

impl EngineSim {
    pub fn from_kind(n: usize) -> EngineSim {
        EngineSim { ids: vec![0; n] } // exempt: kind resolution
    }

    pub fn run(&mut self) {
        let label = format!("run-{}", self.ids.len()); // flagged
        self.ids[0] = label.len() as u64;
    }

    pub fn reset(&mut self) {
        // lint:allow(hot-path-alloc, reason = "fixture: reset is hot, the annotation is the escape hatch")
        let fresh = self.ids.clone();
        self.ids.copy_from_slice(&fresh);
    }

    pub fn report(&self) -> Vec<u64> {
        self.ids.clone() // exempt: report assembly
    }
}

pub struct FleetSim;

impl FleetSim {
    pub fn dispatch_tier(&mut self) -> u64 {
        let chain: Vec<u64> = (0..4).collect(); // flagged
        chain.iter().sum()
    }
}

/// Swap-dispatch fixture: applying a scheduled hot-swap mid-run is as hot
/// as the rest of the event loop (a `mem::swap` of preallocated slots
/// lints clean); scheduling is the cold control plane and its `format!`
/// diagnostics carry annotations.
pub struct TierSwap {
    pub version: u64,
    pub label: String,
}

impl FleetSim {
    pub fn apply_swap(&mut self, swap: &mut TierSwap, active: &mut u64) {
        std::mem::swap(active, &mut swap.version); // clean: no allocation
    }

    pub fn schedule_swap(&mut self, swap: TierSwap) -> Result<(), String> {
        // lint:allow(hot-path-alloc, reason = "fixture: cold scheduling path builds its rejection message")
        Err(format!("swap {} rejected", swap.label))
    }

    pub fn profile_at(&self, swaps: &[TierSwap]) -> u64 {
        let versions: Vec<u64> = swaps.iter().map(|s| s.version).collect(); // flagged
        versions.iter().sum()
    }
}
