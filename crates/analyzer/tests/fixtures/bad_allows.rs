//! Fixture: malformed escape hatches that `bad-allow` reports.

pub fn placeholder() {}

// lint:allow(hot-path-alloc)
pub fn missing_reason() {}

// lint:allow(no-such-rule, reason = "typo in the rule name")
pub fn unknown_rule() {}

// lint:allow(bad-allow, reason = "the guard rule itself cannot be silenced")
// lint:allow(panic-in-lib)
pub fn unsuppressable() {}
