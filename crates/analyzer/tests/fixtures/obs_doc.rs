//! Fixture: recording fns must document their allocation behaviour.

pub struct Sink;

impl Sink {
    /// Record one event. Allocation-free: assigns a preallocated slot.
    pub fn record(&mut self, _v: f64) {}

    /// Bump a counter. (Silent on the heap contract: violation.)
    pub fn inc(&self, _by: u64) {}

    pub fn observe(&self, _v: f64) {} // violation: no rustdoc at all

    /// Gauge write; does not allocate.
    pub fn gauge_set(&self, _v: f64) {}

    /// Encode everything as JSON. Not a recording fn: out of scope even
    /// though this one allocates freely.
    pub fn export(&self) -> String {
        String::new()
    }
}

pub trait Probe {
    /// Called on the hot path — implementations must not allocate.
    fn on_layer(&self, _i: usize);

    /// Default: ignore the event. (Suppressed violation below.)
    // lint:allow(obs-doc, reason = "fixture: contract documented on the trait")
    fn on_compaction(&self) {}
}

impl Probe for Sink {
    /// Atomic add into a fixed cell — allocation-free.
    fn on_layer(&self, _i: usize) {}
}
