//! Fixture: panicking constructs in library code, with the exemptions.

pub fn risky(v: Option<u32>) -> u32 {
    // Violation: unwrap in library code.
    v.unwrap()
}

pub fn risky_expect(v: Option<u32>) -> u32 {
    // Suppressed: annotated with a reason.
    // lint:allow(panic-in-lib, reason = "caller checked Some above")
    v.expect("checked")
}

pub fn hard_stop() {
    // Violation: panic! macro.
    panic!("boom");
}

pub fn guarded(n: usize) -> usize {
    // Asserts are contract checks, not flagged.
    assert!(n > 0, "n must be positive");
    n - 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        // unwrap/panic in test code never flags.
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
