//! Fixture: allocating constructs inside hot-path functions.

pub struct ForwardPlan {
    buf: Vec<f32>,
}

impl ForwardPlan {
    pub fn new(capacity: usize) -> Self {
        // Constructors may allocate: `new` is exempt from the hot-path rule.
        ForwardPlan {
            buf: Vec::with_capacity(capacity),
        }
    }

    pub fn run(&mut self, input: &[f32]) -> Vec<f32> {
        // Violations: clone + to_vec in a ForwardPlan method.
        let copy = self.buf.clone();
        let out = input.to_vec();
        drop(copy);
        out
    }
}

pub fn relu_into(input: &[f32], out: &mut [f32]) {
    // Violation: vec! in a *_into kernel.
    let tmp = vec![0.0f32; input.len()];
    for ((o, &x), _) in out.iter_mut().zip(input).zip(&tmp) {
        *o = x.max(0.0);
    }
}

pub fn scaled_into(input: &[f32], out: &mut [f32]) {
    // Suppressed violation: annotated fallback copy.
    // lint:allow(hot-path-alloc, reason = "documented fallback pending a fused kernel")
    let tmp = input.to_vec();
    out.copy_from_slice(&tmp);
}

pub fn plan_scratch_floats(n: usize) -> usize {
    // Violation: collect() in a scratch-sizing helper.
    let sizes: Vec<usize> = (0..n).collect();
    sizes.iter().sum()
}

pub fn cold_helper(input: &[f32]) -> Vec<f32> {
    // Not a hot-path fn: allocation is fine here.
    input.to_vec()
}

pub struct Registry;

impl Registry {
    pub fn inc(&self, _id: usize, _by: u64) {}
}

/// Copies `input` into `out`, recording through a preallocated handle.
pub fn observed_into(input: &[f32], out: &mut [f32], reg: &Registry) {
    // Sanctioned: handle-based, allocation-free obs recording in a hot
    // kernel does not trip the rule.
    reg.inc(0, input.len() as u64);
    out.copy_from_slice(input);
}

/// Copies `input` into `out` and returns a label for it.
pub fn labelled_into(input: &[f32], out: &mut [f32]) -> String {
    // Violation: building a metric label allocates on the hot path —
    // names belong in registration, not in recording.
    let label = format!("kernel.{}", input.len());
    out.copy_from_slice(input);
    label
}
