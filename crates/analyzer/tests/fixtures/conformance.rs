//! Fixture: a conformance suite referencing one of the two kernels.

#[test]
fn covered_kernel_is_pinned() {
    let input = [1.0f32, -2.0];
    let mut out = [0.0f32; 2];
    crate::covered_into(&input, &mut out);
    assert_eq!(out, [1.0, 0.0]);
}
