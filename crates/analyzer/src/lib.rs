//! `cbnet-lint` — a dependency-free static analyzer for this workspace's
//! project-specific invariants.
//!
//! The repo's credibility rests on discipline claims that ordinary tests
//! can't see: hot paths are allocation-free, every fast path is pinned by a
//! conformance suite, the offline dependency shims match what the code
//! imports, and library code never panics without a documented decision.
//! This crate turns those claims into CI-failing rules (see
//! [`rules`] for the catalog) over a hand-rolled Rust [`lexer`] — the
//! container has no crates.io access, so there is no syn/proc-macro here,
//! just comment/string stripping, a token stream, and brace-depth
//! structure tracking, which is exactly enough for every rule.
//!
//! Run it with `cargo run -p analyzer` from anywhere in the workspace; it
//! writes `LINT_REPORT.json` at the workspace root and exits non-zero on
//! any unsuppressed violation. Suppress a violation where the code is
//! right and the rule is wrong with
//! `// lint:allow(<rule>, reason = "...")` on the offending line or the
//! line directly above it.
#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod structure;

use std::path::{Path, PathBuf};

use report::{from_raw, Report};
use rules::FileCtx;

/// Directories never scanned (build output, VCS, lint-rule test inputs).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Recursively collect every `.rs` file under `root`, sorted by relative
/// path for deterministic reports.
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze one source string as if it were at workspace-relative path
/// `rel` — the unit the fixture tests drive directly.
pub fn analyze_source(rel: &str, src: &str) -> FileCtx {
    let clean = lexer::clean_source(src);
    let toks = lexer::tokenize(&clean.clean);
    let structure = structure::analyze_structure(&toks);
    FileCtx {
        rel: rel.to_string(),
        clean,
        toks,
        structure,
    }
}

/// Analyze every `.rs` file under `root` and resolve suppressions.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = collect_rs_files(root)?;
    let mut ctxs = Vec::with_capacity(files.len());
    for path in &files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        ctxs.push(analyze_source(&rel, &src));
    }
    Ok(resolve(ctxs))
}

/// Run the rules over pre-analyzed files and resolve suppressions — shared
/// by [`analyze_workspace`] and the fixture tests.
pub fn resolve(ctxs: Vec<FileCtx>) -> Report {
    let raw = rules::run_rules(&ctxs);
    let violations = raw
        .into_iter()
        .map(|v| {
            let reason = (v.rule != "bad-allow")
                .then(|| {
                    ctxs.iter()
                        .find(|c| c.rel == v.file)
                        .and_then(|c| {
                            c.clean.allows.iter().find(|a| {
                                a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line)
                            })
                        })
                        .map(|a| a.reason.clone())
                })
                .flatten();
            from_raw(v, reason)
        })
        .collect();
    Report::new(ctxs.len(), violations)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
