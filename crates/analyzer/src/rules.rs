//! The project-specific rule set `cbnet-lint` enforces.
//!
//! | rule | contract it pins |
//! |------|------------------|
//! | `hot-path-alloc` | `*_into` kernels, `*_scratch_floats` sizers and `ForwardPlan` methods stay allocation-free |
//! | `panic-in-lib` | no `unwrap`/`expect`/`panic!`-family in library crates (tests/bins/shims exempt) |
//! | `shim-drift` | every path imported from a shimmed crate exists in `crates/shims/*` |
//! | `conformance-coverage` | every public `*_into` kernel in `crates/tensor` is pinned by the conformance suites |
//! | `into-doc-contract` | every `pub fn *_into` documents its output/scratch ownership |
//! | `unsafe-audit` | `unsafe` stays inside the sanctioned modules, and every use carries a `// SAFETY:` comment (or `# Safety` rustdoc) |
//! | `obs-doc` | every recording fn of the observability layer documents its allocation behaviour |
//! | `bad-allow` | `lint:allow` escape hatches are well-formed (rule exists, reason given) |
//!
//! Any violation can be suppressed per line with
//! `// lint:allow(<rule>, reason = "...")` on the offending line or the
//! line directly above it. `bad-allow` itself cannot be suppressed.

use std::collections::{HashMap, HashSet};

use crate::lexer::{CleanSource, Tok, TokKind};
use crate::structure::{FileStructure, FnSpan, SHIMMED_CRATES};

/// Rule names, in report order. `bad-allow` guards the escape hatch itself.
pub const RULES: [&str; 8] = [
    "hot-path-alloc",
    "panic-in-lib",
    "shim-drift",
    "conformance-coverage",
    "into-doc-contract",
    "unsafe-audit",
    "obs-doc",
    "bad-allow",
];

/// One rule violation (suppression is resolved by the caller).
#[derive(Debug, Clone)]
pub struct RawViolation {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// One analyzed file, ready for rule passes.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Cleaned source, allow directives, docs.
    pub clean: CleanSource,
    /// Token stream of the cleaned source.
    pub toks: Vec<Tok>,
    /// Structural analysis of the token stream.
    pub structure: FileStructure,
}

impl FileCtx {
    /// Library source of a workspace crate (not a test, bench, example or
    /// binary entry point).
    fn is_lib_src(&self) -> bool {
        let r = &self.rel;
        let in_src = r.starts_with("src/") || (r.starts_with("crates/") && r.contains("/src/"));
        in_src && !r.contains("/src/bin/") && !r.ends_with("/main.rs")
    }

    /// Inside the offline dependency shims.
    fn is_shim(&self) -> bool {
        self.rel.starts_with("crates/shims/")
    }
}

/// Run every rule over the analyzed files.
pub fn run_rules(files: &[FileCtx]) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for f in files {
        hot_path_alloc(f, &mut out);
        panic_in_lib(f, &mut out);
        into_doc_contract(f, &mut out);
        unsafe_audit(f, &mut out);
        obs_doc(f, &mut out);
        bad_allow(f, &mut out);
    }
    shim_drift(files, &mut out);
    conformance_coverage(files, &mut out);
    out
}

/// Impl blocks whose methods run on a steady-state hot path: the planned
/// inference loop (`ForwardPlan`) and the flat-index event engines — the
/// heap sift/push/pop, the intrusive queue swizzles, the arena accessors,
/// monomorphized discipline dispatch, and the engine/fleet event loops
/// themselves.
const HOT_IMPLS: [&str; 8] = [
    "ForwardPlan",
    "EventHeap",
    "RequestArena",
    "IndexQueue",
    "Chain",
    "Discipline",
    "EngineSim",
    "FleetSim",
];

/// Methods of hot impls that are *allowed* to allocate: constructors and
/// kind-resolvers (cold, once per simulation/plan) and report assembly
/// (cold, after the loop drains).
const HOT_EXEMPT_FNS: [&str; 6] = [
    "new",
    "with_capacity",
    "with_backend",
    "with_probe",
    "from_kind",
    "report",
];

/// Functions on a steady-state hot path: `*_into` kernels, the scratch
/// sizers they rely on, and every method of a [`HOT_IMPLS`] impl except the
/// allocating constructors/finalizers in [`HOT_EXEMPT_FNS`]. Note `reset`
/// is *not* exempt — run-to-run reuse must stay allocation-free.
fn is_hot_fn(f: &FnSpan) -> bool {
    f.name.ends_with("_into")
        || f.name.ends_with("_scratch_floats")
        || (f
            .parent_impl
            .as_deref()
            .is_some_and(|p| HOT_IMPLS.contains(&p))
            && !HOT_EXEMPT_FNS.contains(&f.name.as_str()))
}

const ALLOC_METHODS: [&str; 5] = ["clone", "collect", "to_vec", "to_string", "to_owned"];

fn hot_path_alloc(f: &FileCtx, out: &mut Vec<RawViolation>) {
    if !f.is_lib_src() {
        return;
    }
    let toks = &f.toks;
    for span in f.structure.fns.iter().filter(|s| is_hot_fn(s)) {
        let Some((open, close)) = span.body else {
            continue;
        };
        let mut report = |line: usize, what: &str| {
            out.push(RawViolation {
                rule: "hot-path-alloc",
                file: f.rel.clone(),
                line,
                message: format!(
                    "`{what}` allocates inside hot-path fn `{}` — use the plan's buffers/scratch",
                    span.name
                ),
            });
        };
        let mut i = open;
        while i <= close {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                let next = toks.get(i + 1);
                let is_macro = next.is_some_and(|n| n.is_punct('!'));
                let is_path = next.is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
                let path_target = if is_path {
                    toks.get(i + 3).map(|n| n.text.as_str())
                } else {
                    None
                };
                match t.text.as_str() {
                    "vec" | "format" if is_macro => report(t.line, &format!("{}!", t.text)),
                    "Vec" | "String" | "Box" if matches!(path_target, Some("new" | "from")) => {
                        report(t.line, &format!("{}::{}", t.text, toks[i + 3].text));
                    }
                    // Any `T::with_capacity(...)` call, caught at the method
                    // name so every collection type is covered.
                    "with_capacity" if next.is_some_and(|n| n.is_punct('(')) => {
                        report(t.line, "with_capacity");
                    }
                    m if ALLOC_METHODS.contains(&m)
                        && i > open
                        && toks[i - 1].is_punct('.')
                        && next.is_some_and(|n| n.is_punct('(') || n.is_punct(':')) =>
                    {
                        report(t.line, &format!(".{m}()"));
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_in_lib(f: &FileCtx, out: &mut Vec<RawViolation>) {
    if !f.is_lib_src() || f.is_shim() {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || f.structure.in_test_code(i) {
            continue;
        }
        let next = toks.get(i + 1);
        let what = match t.text.as_str() {
            m if PANIC_MACROS.contains(&m) && next.is_some_and(|n| n.is_punct('!')) => {
                format!("{m}!")
            }
            "unwrap" | "expect"
                if i > 0 && toks[i - 1].is_punct('.') && next.is_some_and(|n| n.is_punct('(')) =>
            {
                format!(".{}()", t.text)
            }
            _ => continue,
        };
        out.push(RawViolation {
            rule: "panic-in-lib",
            file: f.rel.clone(),
            line: t.line,
            message: format!(
                "`{what}` in library code — return a Result, or document the invariant with lint:allow"
            ),
        });
    }
}

/// Keywords whose presence in a `*_into` doc block indicates the
/// output/scratch ownership contract is stated.
const DOC_KEYWORDS: [&str; 8] = [
    "out", "output", "scratch", "written", "overwrit", "in place", "in-place", "dst",
];

/// The contiguous rustdoc block above the item at `fn_line`, skipping
/// attributes and blank lines between the docs and the signature.
fn doc_block_above(f: &FileCtx, clean_lines: &[&str], fn_line: usize) -> String {
    let mut doc = String::new();
    let mut l = fn_line;
    while l > 1 {
        l -= 1;
        if let Some(text) = f.clean.docs.get(&l) {
            doc.push_str(text);
            doc.push(' ');
            continue;
        }
        let content = clean_lines.get(l - 1).map_or("", |s| s.trim());
        let attr_like = content.is_empty()
            || content.starts_with('#')
            || content.ends_with(']')
            || content.ends_with('(');
        if !attr_like {
            break;
        }
    }
    doc
}

fn into_doc_contract(f: &FileCtx, out: &mut Vec<RawViolation>) {
    if !f.is_lib_src() || f.is_shim() {
        return;
    }
    let clean_lines: Vec<&str> = f.clean.clean.lines().collect();
    for span in &f.structure.fns {
        if !span.is_pub || !span.name.ends_with("_into") {
            continue;
        }
        let doc = doc_block_above(f, &clean_lines, span.line);
        let doc_lower = doc.to_lowercase();
        let message = if doc.trim().is_empty() {
            format!(
                "`pub fn {}` has no rustdoc — document who owns the output and scratch buffers",
                span.name
            )
        } else if !DOC_KEYWORDS.iter().any(|k| doc_lower.contains(k)) {
            format!(
                "rustdoc for `pub fn {}` does not state its output/scratch ownership",
                span.name
            )
        } else {
            continue;
        };
        out.push(RawViolation {
            rule: "into-doc-contract",
            file: f.rel.clone(),
            line: span.line,
            message,
        });
    }
}

/// The only library sources allowed to contain `unsafe` at all: the
/// explicit-SIMD kernel island in `crates/tensor` (gated by a module-scoped
/// `#![allow(unsafe_code)]` under the crate's `#![deny(unsafe_code)]`), the
/// counting global allocator in `testkit` (forwarding the `GlobalAlloc`
/// contract to `System`), and the zero-copy byte↔f32 reinterpretation
/// island in `tensorstore` (alignment-checked slice casts behind the same
/// module-scoped gate). Growing this list is a deliberate, reviewed act.
const UNSAFE_SANCTIONED: [&str; 3] = [
    "crates/tensor/src/backend/simd.rs",
    "crates/tensorstore/src/view.rs",
    "crates/testkit/src/lib.rs",
];

/// True when line `line` carries a `SAFETY:` justification — on the line
/// itself or walking up through blank lines, attributes and rustdoc (a doc
/// line mentioning "safety", e.g. a `# Safety` section, also counts).
fn has_safety_justification(f: &FileCtx, clean_lines: &[&str], line: usize) -> bool {
    if f.clean.safety_lines.contains(&line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if f.clean.safety_lines.contains(&l) {
            return true;
        }
        if let Some(doc) = f.clean.docs.get(&l) {
            if doc.to_lowercase().contains("safety") {
                return true;
            }
            continue; // doc line without the section header: keep walking
        }
        let content = clean_lines.get(l - 1).map_or("", |s| s.trim());
        let attr_like = content.is_empty()
            || content.starts_with('#')
            || content.ends_with(']')
            || content.ends_with('(');
        if !attr_like {
            return false;
        }
    }
    false
}

fn unsafe_audit(f: &FileCtx, out: &mut Vec<RawViolation>) {
    if !f.is_lib_src() {
        return;
    }
    let sanctioned = UNSAFE_SANCTIONED.contains(&f.rel.as_str());
    let clean_lines: Vec<&str> = f.clean.clean.lines().collect();
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || f.structure.in_test_code(i) {
            continue;
        }
        // `#[allow(unsafe_code)]` / `#![allow(unsafe_code)]` re-opens the
        // gate the workspace closes with `deny`/`forbid` — only the
        // sanctioned modules may do that.
        if t.text == "allow"
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("unsafe_code"))
            && !sanctioned
        {
            out.push(RawViolation {
                rule: "unsafe-audit",
                file: f.rel.clone(),
                line: t.line,
                message: "`allow(unsafe_code)` outside the sanctioned unsafe modules — \
                          keep the crate safe or extend the sanctioned list deliberately"
                    .into(),
            });
        }
        if t.text != "unsafe" {
            continue;
        }
        if !sanctioned {
            out.push(RawViolation {
                rule: "unsafe-audit",
                file: f.rel.clone(),
                line: t.line,
                message: "`unsafe` outside the sanctioned modules \
                          (crates/tensor/src/backend/simd.rs, \
                          crates/tensorstore/src/view.rs, crates/testkit/src/lib.rs)"
                    .into(),
            });
        } else if !has_safety_justification(f, &clean_lines, t.line) {
            out.push(RawViolation {
                rule: "unsafe-audit",
                file: f.rel.clone(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` rustdoc) \
                          on the same line or directly above"
                    .into(),
            });
        }
    }
}

/// The observability recording surface: ring/metric writers by name
/// (`record`, `observe`, `inc`, `gauge_set`) plus the `on_*` callback
/// convention (`SimObserver`, `PlanProbe`).
fn is_recording_fn(f: &FnSpan) -> bool {
    matches!(f.name.as_str(), "record" | "observe" | "inc" | "gauge_set")
        || f.name.starts_with("on_")
}

/// The sources that make up the observability layer's recording API.
fn is_obs_source(rel: &str) -> bool {
    rel.starts_with("crates/obs/src/") || rel == "crates/edgesim/src/observe.rs"
}

/// Recording functions sit on simulator/inference hot paths, so callers
/// must be able to read their allocation contract off the signature: every
/// recording fn in the observability layer needs rustdoc that mentions
/// allocation behaviour ("allocation-free", "does not allocate",
/// "allocates the ...", ...). Trait declarations count too — that is where
/// implementors read the contract.
fn obs_doc(f: &FileCtx, out: &mut Vec<RawViolation>) {
    if !is_obs_source(&f.rel) || !f.is_lib_src() {
        return;
    }
    let clean_lines: Vec<&str> = f.clean.clean.lines().collect();
    for span in f.structure.fns.iter().filter(|s| is_recording_fn(s)) {
        let doc = doc_block_above(f, &clean_lines, span.line);
        let message = if doc.trim().is_empty() {
            format!(
                "recording fn `{}` has no rustdoc — state its allocation behaviour \
                 (it is called from hot paths)",
                span.name
            )
        } else if !doc.to_lowercase().contains("alloc") {
            format!(
                "rustdoc for recording fn `{}` does not state its allocation behaviour",
                span.name
            )
        } else {
            continue;
        };
        out.push(RawViolation {
            rule: "obs-doc",
            file: f.rel.clone(),
            line: span.line,
            message,
        });
    }
}

fn bad_allow(f: &FileCtx, out: &mut Vec<RawViolation>) {
    for (line, problem) in &f.clean.bad_allows {
        out.push(RawViolation {
            rule: "bad-allow",
            file: f.rel.clone(),
            line: *line,
            message: format!("malformed lint:allow: {problem}"),
        });
    }
    for allow in &f.clean.allows {
        if !RULES.contains(&allow.rule.as_str()) {
            out.push(RawViolation {
                rule: "bad-allow",
                file: f.rel.clone(),
                line: allow.line,
                message: format!("lint:allow names unknown rule `{}`", allow.rule),
            });
        }
    }
}

/// Names defined by one shim crate: public items, all `fn`s (trait impls
/// aren't `pub` but are addressable through their trait), `macro_rules`
/// macros, re-export leaves and `as` aliases.
fn shim_index(files: &[FileCtx]) -> HashMap<&'static str, HashSet<String>> {
    let mut index: HashMap<&'static str, HashSet<String>> = HashMap::new();
    for name in SHIMMED_CRATES {
        index.insert(name, HashSet::new());
    }
    for f in files {
        let Some(rest) = f.rel.strip_prefix("crates/shims/") else {
            continue;
        };
        let Some(crate_name) = SHIMMED_CRATES
            .iter()
            .find(|c| rest.starts_with(&format!("{c}/")))
        else {
            continue;
        };
        let Some(names) = index.get_mut(*crate_name) else {
            continue;
        };
        let toks = &f.toks;
        const ITEM_KINDS: [&str; 9] = [
            "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
        ];
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                // `pub <kind> Name` (visibility qualifiers like `pub(crate)`
                // sit between, as do `unsafe`/`const` markers).
                "pub" => {
                    let mut j = i + 1;
                    while toks.get(j).is_some_and(|n| {
                        n.is_punct('(')
                            || n.is_punct(')')
                            || n.is_ident("crate")
                            || n.is_ident("super")
                            || n.is_ident("in")
                            || n.is_ident("unsafe")
                            || n.is_ident("const")
                            || n.is_ident("async")
                            || n.is_ident("extern")
                    }) {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|n| {
                        n.kind == TokKind::Ident && ITEM_KINDS.contains(&n.text.as_str())
                    }) {
                        if let Some(name_tok) = toks.get(j + 1) {
                            if name_tok.kind == TokKind::Ident {
                                names.insert(name_tok.text.clone());
                            }
                        }
                    }
                }
                // Any fn (trait methods, trait impls).
                "fn" => {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokKind::Ident {
                            names.insert(name_tok.text.clone());
                        }
                    }
                }
                "macro_rules" if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                    if let Some(name_tok) = toks.get(i + 2) {
                        names.insert(name_tok.text.clone());
                    }
                }
                // `X as Y` aliases.
                "as" => {
                    if let Some(name_tok) = toks.get(i + 1) {
                        if name_tok.kind == TokKind::Ident {
                            names.insert(name_tok.text.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        // Re-export leaves (`pub use self::strategy::Strategy;`).
        for path in &f.structure.use_paths {
            if let Some(leaf) = path.segments.last() {
                if leaf != "*" {
                    names.insert(leaf.clone());
                }
            }
        }
    }
    index
}

/// Path segments that aren't item names.
const PATH_KEYWORDS: [&str; 4] = ["self", "crate", "super", "*"];

fn shim_drift(files: &[FileCtx], out: &mut Vec<RawViolation>) {
    let index = shim_index(files);
    let mut seen: HashSet<(String, usize, String)> = HashSet::new();
    for f in files {
        if f.is_shim() {
            continue;
        }
        for path in &f.structure.use_paths {
            let Some(first) = path.segments.first() else {
                continue;
            };
            let Some(names) = index.get(first.as_str()) else {
                continue;
            };
            // Check each segment after the crate name. Once a type-like
            // (capitalized) segment is found, later segments are associated
            // items resolved through traits — skip them.
            let mut saw_type = false;
            for seg in &path.segments[1..] {
                if saw_type || PATH_KEYWORDS.contains(&seg.as_str()) {
                    continue;
                }
                if seg.chars().next().is_some_and(char::is_uppercase) {
                    saw_type = true;
                }
                if !names.contains(seg) && seen.insert((f.rel.clone(), path.line, seg.clone())) {
                    out.push(RawViolation {
                        rule: "shim-drift",
                        file: f.rel.clone(),
                        line: path.line,
                        message: format!(
                            "`{}::{seg}` is not defined by the `{first}` shim (crates/shims/{first}) — \
                             the shim API has drifted",
                            path.segments[..path.segments.len() - 1].join("::"),
                        ),
                    });
                }
            }
        }
    }
}

/// The files that pin `_into` kernels to their references: bit-identical to
/// the allocating path (plan + proptest suites) and scalar-vs-SIMD to the
/// documented tolerance (backend suite).
const CONFORMANCE_SUITES: [&str; 3] = [
    "tests/plan_conformance.rs",
    "crates/tensor/tests/proptest_into_kernels.rs",
    "crates/tensor/tests/backend_conformance.rs",
];

fn conformance_coverage(files: &[FileCtx], out: &mut Vec<RawViolation>) {
    let mut referenced: HashSet<&str> = HashSet::new();
    for f in files {
        if CONFORMANCE_SUITES.contains(&f.rel.as_str()) {
            for t in &f.toks {
                if t.kind == TokKind::Ident {
                    referenced.insert(t.text.as_str());
                }
            }
        }
    }
    for f in files {
        if !f.rel.starts_with("crates/tensor/src/") {
            continue;
        }
        for span in &f.structure.fns {
            if span.is_pub
                && span.name.ends_with("_into")
                && !referenced.contains(span.name.as_str())
            {
                out.push(RawViolation {
                    rule: "conformance-coverage",
                    file: f.rel.clone(),
                    line: span.line,
                    message: format!(
                        "public kernel `{}` is not referenced by any conformance suite ({}) — new kernels must land pinned",
                        span.name,
                        CONFORMANCE_SUITES.join(", ")
                    ),
                });
            }
        }
    }
}
