//! A minimal, dependency-free Rust lexer: comment/string stripping plus a
//! line-numbered token stream.
//!
//! The analyzer never needs a real parse tree — every rule works on (a) a
//! *cleaned* view of the source where comment and literal contents are
//! blanked out (so braces inside strings can't derail scope tracking), and
//! (b) a flat token stream with line numbers. Cleaning preserves byte
//! offsets and newlines exactly, so token lines always match the original
//! file.
//!
//! Cleaning also harvests the two kinds of comments the analyzer *does*
//! care about: rustdoc lines (`///`, `//!` — consumed by the
//! `into-doc-contract` rule) and `// lint:allow(rule, reason = "...")`
//! suppression directives.

use std::collections::{BTreeMap, BTreeSet};

/// One `lint:allow` suppression directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment sits on. A directive suppresses matching
    /// violations on its own line and on the line directly below it.
    pub line: usize,
    /// Rule name, e.g. `panic-in-lib`.
    pub rule: String,
    /// Mandatory human justification.
    pub reason: String,
}

/// Result of cleaning one source file.
#[derive(Debug, Default)]
pub struct CleanSource {
    /// The source with comment and literal contents replaced by spaces
    /// (newlines preserved). Same byte length as the input.
    pub clean: String,
    /// Valid suppression directives, in file order.
    pub allows: Vec<AllowDirective>,
    /// Malformed `lint:allow` comments: `(line, problem)`.
    pub bad_allows: Vec<(usize, String)>,
    /// Rustdoc comment text by 1-based line (`///` and `//!` lines).
    pub docs: BTreeMap<usize, String>,
    /// Lines of plain comments containing a `SAFETY:` marker (block comments
    /// are recorded at their closing line — the one adjacent to the code
    /// below). Consumed by the `unsafe-audit` rule.
    pub safety_lines: BTreeSet<usize>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank `out[range]` with spaces, preserving newlines.
fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in &mut out[from..to] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Parse every `lint:allow(...)` directive inside one comment's text.
fn parse_allows(text: &str, line: usize, out: &mut CleanSource) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow") {
        rest = &rest[pos + "lint:allow".len()..];
        let Some(body) = rest.strip_prefix('(') else {
            out.bad_allows
                .push((line, "expected `(` after `lint:allow`".into()));
            continue;
        };
        let rule_len = body
            .find(|c: char| !(c.is_ascii_lowercase() || c == '-'))
            .unwrap_or(body.len());
        let rule = &body[..rule_len];
        if rule.is_empty() {
            out.bad_allows
                .push((line, "missing rule name in `lint:allow(...)`".into()));
            continue;
        }
        let after_rule = body[rule_len..].trim_start();
        let Some(args) = after_rule.strip_prefix(',') else {
            out.bad_allows.push((
                line,
                format!("`lint:allow({rule}, ...)` requires `reason = \"...\"`"),
            ));
            continue;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix("reason") else {
            out.bad_allows
                .push((line, format!("expected `reason = \"...\"` for `{rule}`")));
            continue;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('=') else {
            out.bad_allows
                .push((line, format!("expected `=` after `reason` for `{rule}`")));
            continue;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('"') else {
            out.bad_allows
                .push((line, format!("reason for `{rule}` must be a quoted string")));
            continue;
        };
        let Some(end) = args.find('"') else {
            out.bad_allows
                .push((line, format!("unterminated reason string for `{rule}`")));
            continue;
        };
        let reason = &args[..end];
        if reason.trim().is_empty() {
            out.bad_allows
                .push((line, format!("empty reason for `{rule}`")));
            continue;
        }
        out.allows.push(AllowDirective {
            line,
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
        rest = &args[end + 1..];
    }
}

/// Detect a string-literal prefix (`"`, `r"`, `r#"`, `b"`, `br#"`, …) at
/// byte `i`. Returns `(quote_index, hashes, raw)`.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let mut j = i;
    let mut raw = false;
    if j < b.len() && b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    // Only a prefix if we actually consumed a marker or start at the quote.
    let mut hashes = 0;
    if raw {
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    if j < b.len() && b[j] == b'"' && (raw || j > i || j == i) {
        // `b` / `r` markers must begin at an identifier boundary; the caller
        // checks the preceding byte.
        if !raw && j > i && b[i] != b'b' {
            return None;
        }
        Some((j, hashes, raw))
    } else {
        None
    }
}

/// Strip comments and literal contents from `src`.
pub fn clean_source(src: &str) -> CleanSource {
    let b = src.as_bytes();
    let mut out_bytes = b.to_vec();
    let mut res = CleanSource::default();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                let mut is_doc = false;
                if let Some(doc) = text.strip_prefix("///") {
                    if !doc.starts_with('/') {
                        res.docs.insert(line, doc.trim().to_string());
                        is_doc = true;
                    }
                } else if let Some(doc) = text.strip_prefix("//!") {
                    res.docs.insert(line, doc.trim().to_string());
                    is_doc = true;
                }
                // Directives must *lead* a plain comment: prose that merely
                // mentions `lint:allow` (docs, rule help text) is not one.
                if !is_doc
                    && text
                        .trim_start_matches('/')
                        .trim_start()
                        .starts_with("lint:allow")
                {
                    parse_allows(text, line, &mut res);
                }
                if !is_doc && text.contains("SAFETY:") {
                    res.safety_lines.insert(line);
                }
                blank(&mut out_bytes, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let body = src[start..i].trim_start_matches("/*").trim_start();
                if body.starts_with("lint:allow") {
                    parse_allows(&src[start..i], line, &mut res);
                }
                if src[start..i].contains("SAFETY:") {
                    // `line` is now the comment's closing line — the one the
                    // annotated code sits directly below.
                    res.safety_lines.insert(line);
                }
                blank(&mut out_bytes, start, i);
            }
            b'"' | b'b' | b'r' => {
                let at_boundary = i == 0 || !is_ident_byte(b[i - 1]);
                let prefix = if c == b'"' {
                    Some((i, 0, false))
                } else if at_boundary {
                    string_prefix(b, i)
                } else {
                    None
                };
                let Some((quote, hashes, raw)) = prefix else {
                    i += 1;
                    while i < b.len() && is_ident_byte(b[i]) {
                        i += 1;
                    }
                    continue;
                };
                let start = i;
                i = quote + 1;
                if raw {
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < b.len() {
                        if b[i] == b'\n' {
                            line += 1;
                            i += 1;
                        } else if b[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                } else {
                    while i < b.len() {
                        match b[i] {
                            // An escape consumes two bytes; when it is a
                            // string line-continuation (`\` at end of
                            // line), the skipped byte is a newline and the
                            // line counter must still advance, or every
                            // directive below the literal shifts.
                            b'\\' => {
                                if b.get(i + 1) == Some(&b'\n') {
                                    line += 1;
                                }
                                i += 2;
                            }
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
                blank(&mut out_bytes, start, i.min(b.len()));
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'é'`).
                let next = b.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(n) if is_ident_byte(n) => b.get(i + 2) == Some(&b'\''),
                    Some(n) if n >= 0x80 => true,
                    Some(b'\'') => false, // `''` — malformed, skip one
                    Some(_) => b.get(i + 2) == Some(&b'\''),
                    None => false,
                };
                if is_char {
                    let start = i;
                    i += 1;
                    if b.get(i) == Some(&b'\\') {
                        i += 2;
                    }
                    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    blank(&mut out_bytes, start, i);
                } else {
                    i += 1;
                }
            }
            _ => {
                if is_ident_byte(c) {
                    while i < b.len() && is_ident_byte(b[i]) {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    res.clean = String::from_utf8_lossy(&out_bytes).into_owned();
    res
}

/// Token kinds the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (opaque).
    Num,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (a single char for punctuation).
    pub text: String,
    /// 1-based line in the original source.
    pub line: usize,
}

impl Tok {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// Tokenize a cleaned source (see [`clean_source`]).
pub fn tokenize(clean: &str) -> Vec<Tok> {
    let b = clean.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: clean[start..i].to_string(),
                line,
            });
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: clean[start..i].to_string(),
                line,
            });
        } else if c.is_ascii() {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: (c as char).to_string(),
                line,
            });
            i += 1;
        } else {
            // Non-ASCII outside comments/strings: skip the byte.
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_preserving_lines() {
        let src = "let a = \"hi { } \"; // brace }\nlet b = 2; /* {\n} */ let c = 'x';\n";
        let cleaned = clean_source(src);
        assert_eq!(cleaned.clean.len(), src.len());
        assert!(!cleaned.clean.contains("hi"));
        assert!(!cleaned.clean.contains("brace"));
        assert_eq!(cleaned.clean.matches('{').count(), 0);
        assert_eq!(
            cleaned.clean.matches('\n').count(),
            src.matches('\n').count()
        );
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "let s = r#\"a \" b\"#; fn f<'a>(x: &'a str) -> char { '}' }";
        let cleaned = clean_source(src);
        assert!(cleaned.clean.contains("'a"), "{}", cleaned.clean);
        assert_eq!(cleaned.clean.matches('}').count(), 1);
        let toks = tokenize(&cleaned.clean);
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "x.unwrap(); // lint:allow(panic-in-lib, reason = \"checked above\")\n";
        let cleaned = clean_source(src);
        assert_eq!(cleaned.allows.len(), 1);
        assert_eq!(cleaned.allows[0].rule, "panic-in-lib");
        assert_eq!(cleaned.allows[0].reason, "checked above");
        assert!(cleaned.bad_allows.is_empty());
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_aligned() {
        // A `\` at the end of a string-literal line consumes the newline as
        // part of the escape; the directive two lines below must still be
        // recorded on its own line (4), not drift up.
        let src = "let s = \"a \\\n   b\";\nlet t = 1;\n// lint:allow(panic-in-lib, reason = \"aligned\")\nx.unwrap();\n";
        let cleaned = clean_source(src);
        assert_eq!(cleaned.allows.len(), 1);
        assert_eq!(cleaned.allows[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// lint:allow(panic-in-lib)\nx.unwrap();\n";
        let cleaned = clean_source(src);
        assert!(cleaned.allows.is_empty());
        assert_eq!(cleaned.bad_allows.len(), 1);
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let src = "\
//! Suppress with `lint:allow(rule, reason = \"...\")` on the line.
/// The `lint:allow` escape hatch is documented here.
// This comment mentions lint:allow mid-sentence, not as a directive.
fn f() {}
";
        let cleaned = clean_source(src);
        assert!(cleaned.allows.is_empty());
        assert!(cleaned.bad_allows.is_empty(), "{:?}", cleaned.bad_allows);
    }

    #[test]
    fn doc_comments_are_collected() {
        let src = "/// Writes into `out`.\npub fn relu_into() {}\n//! module\n";
        let cleaned = clean_source(src);
        assert_eq!(
            cleaned.docs.get(&1).map(String::as_str),
            Some("Writes into `out`.")
        );
        assert_eq!(cleaned.docs.get(&3).map(String::as_str), Some("module"));
    }

    #[test]
    fn safety_comment_lines_are_harvested() {
        let src = "\
// SAFETY: p is valid by contract.
unsafe { *p }
/* SAFETY: spans
   two lines */
unsafe { *q }
// plain comment, no marker
/// SAFETY: in rustdoc does not count
";
        let cleaned = clean_source(src);
        let lines: Vec<usize> = cleaned.safety_lines.iter().copied().collect();
        // The block comment is recorded at its closing line (4).
        assert_eq!(lines, vec![1, 4]);
    }

    #[test]
    fn char_literal_with_brace_does_not_confuse_depth() {
        let src = "fn f() { let c = '{'; }";
        let cleaned = clean_source(src);
        assert_eq!(cleaned.clean.matches('{').count(), 1);
        assert_eq!(cleaned.clean.matches('}').count(), 1);
    }
}
