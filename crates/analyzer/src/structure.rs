//! Structural analysis over the token stream: function spans with their
//! enclosing `impl` type, `#[cfg(test)]` ranges, and `use` paths.
//!
//! This is deliberately *approximate* — it tracks brace depth and a few
//! token patterns rather than parsing real Rust — but because it runs on
//! the cleaned source (no braces hiding in strings or comments), the
//! approximation is exact for the constructs the rules care about.

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Token-index range `(open, close)` of the body braces, if the fn has
    /// a body (trait method declarations don't).
    pub body: Option<(usize, usize)>,
    /// Self type of the enclosing `impl` block, if any (last path segment,
    /// generics stripped) — `impl Layer for Dense` yields `Dense`.
    pub parent_impl: Option<String>,
}

/// Everything the rules need to know about one file's shape.
#[derive(Debug, Default)]
pub struct FileStructure {
    /// Every `fn` item, in file order.
    pub fns: Vec<FnSpan>,
    /// Token-index ranges (inclusive braces) of `#[cfg(test)]` / `#[test]`
    /// items.
    pub test_ranges: Vec<(usize, usize)>,
    /// `use` paths: each is the full segment list (`["rand", "rngs",
    /// "StdRng"]`); glob imports end with `"*"`.
    pub use_paths: Vec<UsePath>,
}

/// One imported path (from a `use` tree or an inline qualified path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, root first. A trailing `"*"` marks a glob import.
    pub segments: Vec<String>,
    /// 1-based line of the import/usage.
    pub line: usize,
}

impl FileStructure {
    /// Is token index `i` inside a `#[cfg(test)]`-gated item?
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }
}

/// Map every `{` token index to its matching `}` index.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

/// Find the `{` (or `;`) ending the item header that starts at `from`.
/// Returns `Some(index_of_open_brace)` or `None` for a body-less item.
fn find_item_body(toks: &[Tok], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => {
                    // `<` is a generic opener in headers unless it follows a
                    // closing token (no comparisons appear in item headers).
                    angle += 1;
                }
                ">" => {
                    // Skip the `->` arrow; otherwise close a generic list.
                    let is_arrow = i > 0 && toks[i - 1].is_punct('-');
                    if !is_arrow && angle > 0 {
                        angle -= 1;
                    }
                }
                "{" if paren == 0 && bracket == 0 && angle <= 0 => return Some(i),
                ";" if paren == 0 && bracket == 0 && angle <= 0 => return None,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Extract the self-type name from the header tokens of an `impl` block
/// (`from` points just past the `impl` keyword, `until` at the `{`).
fn impl_self_type(toks: &[Tok], from: usize, until: usize) -> Option<String> {
    let mut i = from;
    // Skip the generic parameter list directly after `impl`.
    if i < until && toks[i].is_punct('<') {
        let mut depth = 1;
        i += 1;
        while i < until && depth > 0 {
            if toks[i].is_punct('<') {
                depth += 1;
            } else if toks[i].is_punct('>') && !toks[i - 1].is_punct('-') {
                depth -= 1;
            }
            i += 1;
        }
    }
    // If a `for` appears at angle-depth 0, the self type follows it.
    let mut start = i;
    let mut depth = 0i32;
    let mut j = i;
    while j < until {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && j > 0 && !toks[j - 1].is_punct('-') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            start = j + 1;
        } else if depth == 0 && t.is_ident("where") {
            break;
        }
        j += 1;
    }
    // The self type's name: the last identifier of the leading path, before
    // any `<` generics.
    let mut name = None;
    let mut k = start;
    let mut dep = 0i32;
    while k < until {
        let t = &toks[k];
        if t.is_punct('<') {
            dep += 1;
        } else if t.is_punct('>') && !toks[k - 1].is_punct('-') {
            dep -= 1;
        } else if dep == 0 {
            if t.kind == TokKind::Ident && !t.is_ident("where") {
                name = Some(t.text.clone());
            } else if !t.is_punct(':') && !t.is_punct('&') {
                // Stop at anything that isn't part of a simple path.
                if name.is_some() {
                    break;
                }
            }
        }
        k += 1;
    }
    name
}

/// Does the attribute token range `[open_bracket, close_bracket]` spell a
/// test gate (`#[cfg(test)]`, `#[test]`, or `#[cfg(any(test, ...))]`)?
fn attr_is_test_gate(toks: &[Tok], open: usize, close: usize) -> bool {
    let idents: Vec<&str> = toks[open..=close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    idents == ["test"]
        || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"))
}

/// Parse a `use`-tree starting at `i` (just past `use` or a `::{` opener),
/// appending completed paths to `out`. Returns the index one past the tree.
fn parse_use_tree(toks: &[Tok], mut i: usize, prefix: &[String], out: &mut Vec<UsePath>) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    let line = toks.get(i).map_or(0, |t| t.line);
    while let Some(t) = toks.get(i) {
        if t.kind == TokKind::Ident && t.text != "as" {
            segs.push(t.text.clone());
            i += 1;
        } else if t.is_punct('*') {
            segs.push("*".into());
            i += 1;
        } else if t.is_punct(':') && toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
            i += 2;
            if toks.get(i).is_some_and(|n| n.is_punct('{')) {
                // Nested group: recurse per comma-separated subtree.
                i += 1;
                loop {
                    match toks.get(i) {
                        Some(t) if t.is_punct('}') => {
                            i += 1;
                            break;
                        }
                        Some(t) if t.is_punct(',') => i += 1,
                        Some(_) => i = parse_use_tree(toks, i, &segs, out),
                        None => break,
                    }
                }
                return i;
            }
        } else if t.is_ident("as") {
            // `X as Y`: the existence check is on X; skip the alias.
            i += 2;
            break;
        } else {
            break;
        }
    }
    // `self` inside a group refers to the prefix itself (already checked
    // via its own segments), so drop it.
    if segs.last().is_some_and(|s| s == "self") {
        segs.pop();
    }
    if segs.len() > prefix.len() {
        out.push(UsePath {
            segments: segs,
            line,
        });
    }
    i
}

/// The crates shimmed offline in `crates/shims/*`.
pub const SHIMMED_CRATES: [&str; 5] = ["rand", "bytes", "crossbeam", "proptest", "criterion"];

/// Analyze one file's token stream.
pub fn analyze_structure(toks: &[Tok]) -> FileStructure {
    let braces = match_braces(toks);
    let mut fs = FileStructure::default();

    // Impl ranges: (open brace idx, close idx, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some(open) = find_item_body(toks, i + 1) {
                if let Some(close) = braces[open] {
                    if let Some(name) = impl_self_type(toks, i + 1, open) {
                        impls.push((open, close, name));
                    }
                }
            }
        } else if t.is_ident("fn") {
            // Visibility: scan back over `pub`, `(crate)`, `const`,
            // `unsafe`, `extern "C"` tokens until an item boundary.
            let mut is_pub = false;
            let mut k = i;
            while k > 0 {
                k -= 1;
                let p = &toks[k];
                if p.is_ident("pub") {
                    is_pub = true;
                    break;
                }
                let part_of_header = p.is_ident("const")
                    || p.is_ident("unsafe")
                    || p.is_ident("extern")
                    || p.is_ident("async")
                    || p.is_ident("crate")
                    || p.is_ident("super")
                    || p.is_ident("in")
                    || p.is_punct('(')
                    || p.is_punct(')');
                if !part_of_header {
                    break;
                }
            }
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let body = find_item_body(toks, i + 2)
                        .and_then(|open| braces[open].map(|close| (open, close)));
                    let parent_impl = impls
                        .iter()
                        .rev()
                        .find(|&&(open, close, _)| open <= i && i <= close)
                        .map(|(_, _, n)| n.clone());
                    fs.fns.push(FnSpan {
                        name: name_tok.text.clone(),
                        line: t.line,
                        is_pub,
                        body,
                        parent_impl,
                    });
                }
            }
        } else if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute: find its closing `]`, check for a test gate, and if
            // so mark the next item's body as test code.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut close_attr = None;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        close_attr = Some(j);
                        break;
                    }
                }
                j += 1;
            }
            if let Some(ca) = close_attr {
                if attr_is_test_gate(toks, i + 1, ca) {
                    if let Some(open) = find_item_body(toks, ca + 1) {
                        if let Some(close) = braces[open] {
                            fs.test_ranges.push((i, close));
                        }
                    }
                }
                i = ca + 1;
                continue;
            }
        } else if t.is_ident("use") {
            i = parse_use_tree(toks, i + 1, &[], &mut fs.use_paths);
            continue;
        } else if t.kind == TokKind::Ident
            && SHIMMED_CRATES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            // Inline qualified path (`crossbeam::scope(...)`): collect the
            // segment chain.
            let mut segs = vec![t.text.clone()];
            let line = t.line;
            let mut j = i + 1;
            while toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
            {
                segs.push(toks[j + 2].text.clone());
                j += 3;
            }
            if segs.len() > 1 {
                fs.use_paths.push(UsePath {
                    segments: segs,
                    line,
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, tokenize};

    fn structure(src: &str) -> FileStructure {
        analyze_structure(&tokenize(&clean_source(src).clean))
    }

    #[test]
    fn finds_fns_and_impl_parents() {
        let src = r#"
            pub fn relu_into(x: &mut [f32]) { x[0] = 0.0; }
            struct ForwardPlan;
            impl ForwardPlan {
                pub fn run<'p>(&'p mut self) -> &'p [f32] { &[] }
                fn helper() {}
            }
            impl Clone for ForwardPlan { fn clone(&self) -> Self { ForwardPlan } }
        "#;
        let fs = structure(src);
        let names: Vec<(&str, Option<&str>)> = fs
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.parent_impl.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("relu_into", None),
                ("run", Some("ForwardPlan")),
                ("helper", Some("ForwardPlan")),
                ("clone", Some("ForwardPlan")),
            ]
        );
        assert!(fs.fns[0].is_pub);
        assert!(!fs.fns[2].is_pub);
    }

    #[test]
    fn marks_cfg_test_ranges() {
        let src = r#"
            pub fn lib_code() { maybe(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
        "#;
        let fs = structure(src);
        let toks = tokenize(&clean_source(src).clean);
        let unwrap_idx = toks.iter().position(|t| t.is_ident("unwrap"));
        let lib_idx = toks.iter().position(|t| t.is_ident("maybe"));
        assert!(fs.in_test_code(unwrap_idx.expect("has unwrap")));
        assert!(!fs.in_test_code(lib_idx.expect("has maybe")));
    }

    #[test]
    fn parses_use_trees() {
        let src = "use rand::{rngs::StdRng, Rng as R, prelude::*};\nfn f() { crossbeam::scope(|s| {}); }\n";
        let fs = structure(src);
        let paths: Vec<Vec<&str>> = fs
            .use_paths
            .iter()
            .map(|p| p.segments.iter().map(String::as_str).collect())
            .collect();
        assert!(paths.contains(&vec!["rand", "rngs", "StdRng"]));
        assert!(paths.contains(&vec!["rand", "Rng"]));
        assert!(paths.contains(&vec!["rand", "prelude", "*"]));
        assert!(paths.contains(&vec!["crossbeam", "scope"]));
    }

    #[test]
    fn fn_with_generics_and_where_clause() {
        let src = "pub fn gen<T: Into<Vec<u8>>>(t: T) -> Option<T> where T: Clone { Some(t) }";
        let fs = structure(src);
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].name, "gen");
        assert!(fs.fns[0].body.is_some());
    }
}
