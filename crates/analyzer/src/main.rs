//! `cbnet-lint` CLI: scan the workspace, print violations, write
//! `LINT_REPORT.json`, exit non-zero on any unsuppressed violation.
//!
//! ```text
//! cbnet-lint [--root DIR] [--report PATH] [--quiet] [--list-rules]
//! ```
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::rules::RULES;

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    quiet: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        report: None,
        quiet: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: cbnet-lint [--root DIR] [--report PATH] [--quiet] [--list-rules]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| analyzer::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("cbnet-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match analyzer::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cbnet-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report_path = args.report.unwrap_or_else(|| root.join("LINT_REPORT.json"));
    if let Err(e) = std::fs::write(&report_path, report.to_json()) {
        eprintln!("cbnet-lint: write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    let open: Vec<_> = report.unsuppressed().collect();
    if !args.quiet {
        for v in &open {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let suppressed = report.suppressed().count();
        println!(
            "cbnet-lint: {} file(s), {} violation(s), {} suppressed — report at {}",
            report.files_scanned,
            open.len(),
            suppressed,
            report_path.display()
        );
    }
    if open.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
