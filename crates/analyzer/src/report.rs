//! Violation aggregation and the machine-readable `LINT_REPORT.json`.
//!
//! The JSON encoder is hand-rolled (the container has no crates.io access,
//! so no serde); the schema is deliberately flat so CI scripts can consume
//! it with `jq` or a five-line parser.

use std::collections::BTreeMap;

use crate::rules::{RawViolation, RULES};

/// A violation with its suppression state resolved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` directive suppresses this
    /// violation.
    pub suppressed: Option<String>,
}

/// The result of analyzing a workspace.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every violation, sorted by `(file, line, rule)`.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Build a report from raw violations, sorted deterministically.
    pub fn new(files_scanned: usize, mut violations: Vec<Violation>) -> Report {
        violations.sort_by(|a, b| {
            (&a.file, a.line, a.rule)
                .cmp(&(&b.file, b.line, b.rule))
                .then_with(|| a.message.cmp(&b.message))
        });
        Report {
            files_scanned,
            violations,
        }
    }

    /// Violations not silenced by a `lint:allow` directive.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    /// Violations silenced by a `lint:allow` directive.
    pub fn suppressed(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_some())
    }

    /// Per-rule `(unsuppressed, suppressed)` counts, for every known rule.
    pub fn counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> =
            RULES.iter().map(|&r| (r, (0, 0))).collect();
        for v in &self.violations {
            let entry = counts.entry(v.rule).or_insert((0, 0));
            if v.suppressed.is_some() {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        counts
    }

    /// Encode as `LINT_REPORT.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_string(r));
        }
        s.push_str("],\n");
        s.push_str("  \"counts\": {\n");
        let counts = self.counts();
        for (i, (rule, (open, supp))) in counts.iter().enumerate() {
            s.push_str(&format!(
                "    {}: {{\"violations\": {open}, \"suppressed\": {supp}}}{}\n",
                json_string(rule),
                if i + 1 < counts.len() { "," } else { "" }
            ));
        }
        s.push_str("  },\n");
        encode_violation_array(&mut s, "violations", self.unsuppressed());
        s.push_str(",\n");
        encode_violation_array(&mut s, "suppressed", self.suppressed());
        s.push_str("\n}\n");
        s
    }
}

fn encode_violation_array<'a>(
    s: &mut String,
    key: &str,
    items: impl Iterator<Item = &'a Violation>,
) {
    s.push_str(&format!("  {}: [", json_string(key)));
    let mut first = true;
    for v in items {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": {}, ", json_string(v.rule)));
        s.push_str(&format!("\"file\": {}, ", json_string(&v.file)));
        s.push_str(&format!("\"line\": {}, ", v.line));
        s.push_str(&format!("\"message\": {}", json_string(&v.message)));
        if let Some(reason) = &v.suppressed {
            s.push_str(&format!(", \"reason\": {}", json_string(reason)));
        }
        s.push('}');
    }
    if first {
        s.push(']');
    } else {
        s.push_str("\n  ]");
    }
}

/// Minimal JSON string encoder.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Apply RawViolation → RawViolation ordering used by display paths.
pub fn from_raw(raw: RawViolation, suppressed: Option<String>) -> Violation {
    Violation {
        rule: raw.rule,
        file: raw.file,
        line: raw.line,
        message: raw.message,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_sorts_and_counts() {
        let mk = |rule, file: &str, line| RawViolation {
            rule,
            file: file.into(),
            line,
            message: "m".into(),
        };
        let report = Report::new(
            3,
            vec![
                from_raw(mk("panic-in-lib", "b.rs", 2), None),
                from_raw(mk("hot-path-alloc", "a.rs", 9), Some("ok".into())),
                from_raw(mk("panic-in-lib", "a.rs", 1), None),
            ],
        );
        assert_eq!(report.violations[0].file, "a.rs");
        assert_eq!(report.unsuppressed().count(), 2);
        assert_eq!(report.suppressed().count(), 1);
        let counts = report.counts();
        assert_eq!(counts["panic-in-lib"], (2, 0));
        assert_eq!(counts["hot-path-alloc"], (0, 1));
        assert_eq!(counts["shim-drift"], (0, 0));
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"reason\": \"ok\""));
    }
}
